"""Ablation: the Section 5.5 inverted-list buckets vs a naive recount.

DESIGN.md calls out the bucketed pillar maintenance as a key implementation
choice; this benchmark quantifies it by running TP with both group-state
implementations on the same census projection and checking that the outputs
coincide (the data structure is an optimization, not a behaviour change).
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG
from repro.core import three_phase
from repro.core.groups import GroupState, NaiveGroupState
from repro.dataset.synthetic import CensusConfig, make_sal

_L = 6


def _table():
    config = CensusConfig.scaled(BENCH_CONFIG.domain_scale)
    base = make_sal(BENCH_CONFIG.n, seed=BENCH_CONFIG.seed, config=config)
    return base.project(base.schema.qi_names[: BENCH_CONFIG.base_dimension])


@pytest.mark.parametrize(
    "factory", [GroupState, NaiveGroupState], ids=["inverted-lists", "naive-recount"]
)
def test_tp_group_state_ablation(benchmark, factory):
    table = _table()
    result = benchmark.pedantic(
        lambda: three_phase.anonymize(table, _L, state_factory=factory),
        rounds=1,
        iterations=1,
    )
    assert result.generalized.is_l_diverse(_L)


def test_both_implementations_agree():
    table = _table()
    fast = three_phase.anonymize(table, _L, state_factory=GroupState)
    slow = three_phase.anonymize(table, _L, state_factory=NaiveGroupState)
    assert fast.star_count == slow.star_count
    assert fast.stats.removed_tuples == slow.stats.removed_tuples
    assert fast.stats.phase_reached == slow.stats.phase_reached
