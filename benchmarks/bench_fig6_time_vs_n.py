"""Figure 6: computation time vs dataset cardinality n at l = 6.

Paper's shape: every algorithm scales (near-)linearly in n; all runs stay in
the sub-second range at bench scale.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG, series_values
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_figure6_time_vs_n(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.figure6(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    for algorithm in ("Hilbert", "TP", "TP+"):
        values = series_values(result, algorithm)
        assert len(values) == len(BENCH_CONFIG.sample_sizes)
        # Costs grow with n but stay modest: no worse than ~quadratic blowup
        # across a 3x increase in cardinality at this scale.
        assert values[-1] >= 0
        if values[0] > 0:
            assert values[-1] / values[0] < 40
