"""Hardness gadget benchmark: build and verify the Section 4 reduction.

Not a figure of the paper, but it exercises the full hardness pipeline
(3DM solving, table construction, Lemma 3 verification) at growing sizes so
regressions in the gadget code are caught by the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.core import three_phase
from repro.hardness import reduce_to_l_diversity, solve_3dm, verify_lemma3
from repro.hardness.three_dm import random_instance
from repro.hardness.verify import matching_to_generalization


@pytest.mark.parametrize("n", [4, 8, 12])
def test_reduction_and_verification(benchmark, n):
    def build_and_verify():
        instance = random_instance(n, extra_points=n // 2, seed=n, solvable=True)
        reduced = reduce_to_l_diversity(instance, m=min(8, 3 * n))
        matching = solve_3dm(instance)
        generalized = matching_to_generalization(reduced, matching)
        return reduced, generalized

    reduced, generalized = benchmark.pedantic(build_and_verify, rounds=1, iterations=1)
    assert generalized.star_count() == reduced.star_threshold
    assert generalized.is_l_diverse(3)


def test_tp_on_gadget_table(benchmark):
    instance = random_instance(6, extra_points=3, seed=1, solvable=True)
    reduced = reduce_to_l_diversity(instance, m=8)
    result = benchmark.pedantic(
        lambda: three_phase.anonymize(reduced.table, 3), rounds=1, iterations=1
    )
    assert result.generalized.is_l_diverse(3)
    assert result.star_count >= reduced.star_threshold


def test_lemma3_verification_small(benchmark):
    instance = random_instance(3, extra_points=2, seed=3, solvable=True)
    reduced = reduce_to_l_diversity(instance, m=4)
    report = benchmark.pedantic(lambda: verify_lemma3(reduced), rounds=1, iterations=1)
    assert report.consistent
