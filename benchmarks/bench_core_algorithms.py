"""Micro-benchmarks of the individual algorithms on a fixed census projection.

Useful for tracking absolute per-algorithm cost (complement to the figure
benchmarks, which time whole sweeps).
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG
from repro.baselines import hilbert, mondrian, tds
from repro.core import hybrid, three_phase
from repro.dataset.synthetic import CensusConfig, make_sal
from repro.metrics.kl import kl_divergence

_L = 6


def _table():
    config = CensusConfig.scaled(BENCH_CONFIG.domain_scale)
    base = make_sal(BENCH_CONFIG.n, seed=BENCH_CONFIG.seed, config=config)
    return base.project(base.schema.qi_names[: BENCH_CONFIG.base_dimension])


_RUNNERS = {
    "TP": lambda table: three_phase.anonymize(table, _L).generalized,
    "TP+": lambda table: hybrid.anonymize(table, _L).generalized,
    "Hilbert": lambda table: hilbert.anonymize(table, _L).generalized,
    "TDS": lambda table: tds.anonymize(table, _L).generalized,
    "Mondrian": lambda table: mondrian.anonymize(table, _L).generalized,
}


@pytest.mark.parametrize("name", list(_RUNNERS), ids=list(_RUNNERS))
def test_algorithm_micro_benchmark(benchmark, name):
    table = _table()
    generalized = benchmark.pedantic(lambda: _RUNNERS[name](table), rounds=1, iterations=1)
    assert generalized.is_l_diverse(_L)


def test_kl_metric_benchmark(benchmark):
    table = _table()
    generalized = hybrid.anonymize(table, _L).generalized
    value = benchmark.pedantic(lambda: kl_divergence(table, generalized), rounds=1, iterations=1)
    assert value >= 0.0
