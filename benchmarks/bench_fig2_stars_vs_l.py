"""Figure 2: average number of stars vs l (SAL-4 and OCC-4).

Paper's shape: stars grow with l; TP and TP+ beat Hilbert; TP+ <= TP.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG, series_values
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_figure2_stars_vs_l(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.figure2(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    hilbert = series_values(result, "Hilbert")
    tp = series_values(result, "TP")
    tp_plus = series_values(result, "TP+")
    # Stars grow with l for every algorithm.
    for values in (hilbert, tp, tp_plus):
        assert values[0] <= values[-1]
    # TP+ never exceeds TP, and beats Hilbert on the 4-QI workload.
    assert all(plus <= tp_value + 1e-9 for plus, tp_value in zip(tp_plus, tp))
    assert sum(tp_plus) < sum(hilbert)
