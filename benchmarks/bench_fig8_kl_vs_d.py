"""Figure 8: KL-divergence vs d at l = 6 — TP+ against TDS.

Paper's shape: both degrade with d (curse of dimensionality); TP+ stays below
TDS throughout.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG, series_values
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_figure8_kl_vs_d(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.figure8(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    tds = series_values(result, "TDS")
    tp_plus = series_values(result, "TP+")
    assert sum(tp_plus) <= sum(tds) + 1e-9
    # Utility degrades as dimensionality grows.
    assert tp_plus[0] <= tp_plus[-1] + 1e-9
