"""Figure 7: KL-divergence vs l — TP+ against the TDS single-dimensional baseline.

Paper's shape: TP+ incurs (much) lower KL-divergence than TDS for every l,
and the divergence of TP+ grows with l.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG, series_values
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_figure7_kl_vs_l(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.figure7(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    tds = series_values(result, "TDS")
    tp_plus = series_values(result, "TP+")
    assert all(plus <= baseline + 1e-9 for plus, baseline in zip(tp_plus, tds))
    assert tp_plus[0] <= tp_plus[-1] + 1e-9
