"""Figure 5: computation time vs d at l = 4.

Paper's shape: TP/TP+ cost grows with d (more residue tuples to move);
Hilbert is largely insensitive to d.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG, series_values
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_figure5_time_vs_d(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.figure5(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    for algorithm in ("Hilbert", "TP", "TP+"):
        values = series_values(result, algorithm)
        assert len(values) == len(BENCH_CONFIG.d_values)
        assert all(value >= 0 for value in values)
