"""Shared configuration for the benchmark suite.

The benchmarks regenerate every figure of the paper at a reduced scale so the
whole suite finishes in a few minutes on a laptop.  ``BENCH_CONFIG`` mirrors
the structure of the paper's experiments (same sweeps, same algorithms); only
``n``, the number of projections averaged, and the QI domain scale are
reduced.  Run the figure drivers with ``ExperimentConfig.default()`` (or
``paper_scale()``) to reproduce the EXPERIMENTS.md numbers at full size.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig

#: Scale used by the pytest-benchmark suite.
BENCH_CONFIG = ExperimentConfig(
    n=2_500,
    seed=7,
    max_tables_per_family=1,
    l_values=(2, 4, 6, 8, 10),
    d_values=(1, 2, 3, 4, 5),
    sample_sizes=(800, 1_600, 2_500),
    domain_scale=0.24,
)


def series_values(result, algorithm):
    """Y-values of one algorithm's series, in ascending x order."""
    return [value for _x, value in sorted(result.series[algorithm])]
