"""Figure 4: computation time vs l (SAL-4 / OCC-4).

Paper's shape: TP and TP+ get slower as l grows (more tuples move to the
residue); Hilbert's cost does not grow with l.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG, series_values
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_figure4_time_vs_l(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.figure4(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    for algorithm in ("Hilbert", "TP", "TP+"):
        values = series_values(result, algorithm)
        assert all(value >= 0 for value in values)
        assert len(values) == len(BENCH_CONFIG.l_values)
    # TP+ always does at least as much work as TP (it post-processes R).
    tp = series_values(result, "TP")
    tp_plus = series_values(result, "TP+")
    assert sum(tp_plus) >= sum(tp) * 0.5
