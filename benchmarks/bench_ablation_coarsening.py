"""Ablation: the Section 5.6 domain-coarsening preprocessor.

Sweeps the coarsening depth before running TP+ on a high-dimensional census
projection, exposing the trade-off the paper describes: shallower taxonomy
frontiers (coarser domains) yield fewer stars but wider non-star cells.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG
from repro.core import three_phase
from repro.core.preprocess import anonymize_with_coarsening
from repro.dataset.synthetic import CensusConfig, make_sal

_L = 6
_DEPTHS = (1, 2, 3)


def _table():
    config = CensusConfig.scaled(BENCH_CONFIG.domain_scale)
    base = make_sal(BENCH_CONFIG.n, seed=BENCH_CONFIG.seed, config=config)
    return base.project(base.schema.qi_names[:5])


@pytest.mark.parametrize("depth", _DEPTHS)
def test_coarsening_depth_ablation(benchmark, depth):
    table = _table()
    result = benchmark.pedantic(
        lambda: anonymize_with_coarsening(table, _L, depth=depth), rounds=1, iterations=1
    )
    assert result.generalized.is_l_diverse(_L)


def test_coarsening_tradeoff_monotone():
    """Coarser preprocessing (smaller depth) never increases the star count."""
    table = _table()
    plain_stars = three_phase.anonymize(table, _L).star_count
    stars_by_depth = {
        depth: anonymize_with_coarsening(table, _L, depth=depth, use_hybrid=False).star_count
        for depth in _DEPTHS
    }
    print(f"\nstars without preprocessing: {plain_stars}; by depth: {stars_by_depth}")
    assert stars_by_depth[1] <= stars_by_depth[2] <= stars_by_depth[3] + 1
    assert stars_by_depth[1] <= plain_stars
