"""Ablation: residue refinement strategies inside TP+ (Section 5.6).

Compares publishing the residue as a single group (plain TP), the
QI-oblivious frequency-greedy refiner, and the Hilbert refiner the paper's
TP+ uses.  The expected ordering in star count is

    Hilbert refiner <= frequency-greedy <= single group,

showing that both *splitting* the residue and doing so *locality-aware* matter.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG
from repro.baselines.hilbert import hilbert_refiner
from repro.core import hybrid
from repro.core.refiners import frequency_greedy_refiner, single_group_refiner
from repro.dataset.synthetic import CensusConfig, make_sal

_L = 6
_REFINERS = {
    "single-group": single_group_refiner,
    "frequency-greedy": frequency_greedy_refiner,
    "hilbert": hilbert_refiner,
}


def _table():
    config = CensusConfig.scaled(BENCH_CONFIG.domain_scale)
    base = make_sal(BENCH_CONFIG.n, seed=BENCH_CONFIG.seed, config=config)
    return base.project(base.schema.qi_names[: BENCH_CONFIG.base_dimension])


@pytest.mark.parametrize("name", list(_REFINERS), ids=list(_REFINERS))
def test_refiner_ablation(benchmark, name):
    table = _table()
    result = benchmark.pedantic(
        lambda: hybrid.anonymize(table, _L, refiner=_REFINERS[name]),
        rounds=1,
        iterations=1,
    )
    assert result.generalized.is_l_diverse(_L)


def test_refiner_quality_ordering():
    table = _table()
    stars = {
        name: hybrid.anonymize(table, _L, refiner=refiner).star_count
        for name, refiner in _REFINERS.items()
    }
    print(f"\nrefiner star counts: {stars}")
    assert stars["hilbert"] <= stars["single-group"]
    assert stars["frequency-greedy"] <= stars["single-group"]
    assert stars["hilbert"] <= stars["frequency-greedy"] * 1.05
