"""Section 6.1 text experiment: how often does TP need its third phase?

Paper's observation: on all 128 census tables and every l in 2..10, TP
terminates before phase three (hence returns an O(d)-approximate solution).
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_phase3_frequency(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.phase3_frequency(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    assert result.runs == len(BENCH_CONFIG.d_values) * len(BENCH_CONFIG.l_values)
    assert (
        result.phase1_terminations + result.phase2_terminations + result.phase3_terminations
        == result.runs
    )
    # The paper's finding: phase three is never (or almost never) reached on
    # census-like workloads.
    assert result.phase3_fraction <= 0.05
