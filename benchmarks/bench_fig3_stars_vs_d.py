"""Figure 3: average number of stars vs d at l = 6.

Paper's shape: stars grow with d (curse of dimensionality); TP beats Hilbert
at low d but loses at high d; TP+ is the best everywhere.
"""

from __future__ import annotations

import pytest

from benchmarks._config import BENCH_CONFIG, series_values
from repro.experiments import figures


@pytest.mark.parametrize("dataset", ["SAL", "OCC"])
def test_figure3_stars_vs_d(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: figures.figure3(dataset, BENCH_CONFIG), rounds=1, iterations=1
    )
    print()
    print(result.format())

    hilbert = series_values(result, "Hilbert")
    tp = series_values(result, "TP")
    tp_plus = series_values(result, "TP+")
    # Curse of dimensionality: more QI attributes -> more stars.
    for values in (hilbert, tp, tp_plus):
        assert values[0] <= values[-1] + 1e-9
    # TP wins at the smallest d; TP+ never exceeds TP and beats Hilbert overall.
    assert tp[0] <= hilbert[0] + 1e-9
    assert all(plus <= tp_value + 1e-9 for plus, tp_value in zip(tp_plus, tp))
    assert sum(tp_plus) <= sum(hilbert) + 1e-9
