"""Quickstart: anonymize the paper's hospital microdata with TP and TP+.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import datasets, hybrid, three_phase
from repro.core.bounds import certificate, theoretical_star_ratio
from repro.metrics import kl_divergence
from repro.privacy import diversity_report


def main() -> None:
    # 1. Load the microdata of Table 1 (10 patients, 3 QI attributes, Disease SA).
    table = datasets.hospital_microdata()
    print(f"microdata: {len(table)} rows, d={table.dimension}, "
          f"distinct sensitive values m={table.distinct_sa_count}, max feasible l={table.max_l}")

    # 2. Run the three-phase algorithm (TP) for l = 2.
    result = three_phase.anonymize(table, l=2)
    print(f"\nTP terminated in phase {result.stats.phase_reached} "
          f"with {result.star_count} stars over {result.suppressed_tuple_count} suppressed tuples")
    print("published table:")
    for row, record in enumerate(result.generalized.decoded_records()):
        name = datasets.hospital_patient_names()[row]
        print(f"  {name:<7} {record}")

    # 3. Verify privacy and report utility.
    report = diversity_report(result.generalized)
    print(f"\nprivacy: {report.group_count} QI-groups, achieved l = {report.achieved_l}, "
          f"worst adversary confidence = {report.max_confidence:.0%}")
    print(f"utility: KL divergence = {kl_divergence(table, result.generalized):.4f}")

    # 4. The hybrid TP+ refines the residue set and never does worse.
    plus = hybrid.anonymize(table, l=2)
    print(f"\nTP+ stars: {plus.star_count} (TP: {result.star_count})")

    # 5. Instance-specific approximation certificate (Corollaries 1 and 2).
    cert = certificate(table, 2, result.stats.removed_tuples, result.star_count)
    print(f"certified star ratio <= {cert.star_ratio_upper_bound:.2f} "
          f"(worst-case guarantee is l*d = {theoretical_star_ratio(2, table.dimension)})")


if __name__ == "__main__":
    main()
