"""Census-scale comparison of TP, TP+, Hilbert, TDS and Mondrian.

This is the workload the paper's evaluation is built around: a census-like
table (synthetic SAL), projected to four QI attributes, anonymized for
several values of l.  The script prints the star counts, KL-divergence and
running times side by side — a miniature of Figures 2, 4 and 7.

Run with::

    python examples/census_anonymization.py [n]
"""

from __future__ import annotations

import sys

from repro.dataset.synthetic import CensusConfig, make_sal
from repro.experiments.harness import format_records, run_suite


def main(n: int = 4000) -> None:
    config = CensusConfig.scaled(0.3)
    base = make_sal(n, seed=7, config=config)
    projected = base.project(("Age", "Gender", "Education", "Race"))
    print(f"synthetic SAL-4: n={len(projected)}, d={projected.dimension}, "
          f"distinct QI vectors={projected.distinct_qi_count}, "
          f"max feasible l={projected.max_l}\n")

    records = []
    for l in (2, 4, 6):
        records.extend(
            run_suite(
                [(f"SAL-4 (l={l})", projected)],
                l,
                ["TP", "TP+", "Hilbert", "TDS", "Mondrian"],
                with_kl=True,
            )
        )
    print(format_records(records))

    tp_plus = [record for record in records if record.algorithm == "TP+"]
    hilbert = [record for record in records if record.algorithm == "Hilbert"]
    print("\nTP+ vs Hilbert star counts by l:")
    for plus, baseline in zip(tp_plus, hilbert):
        print(f"  l={plus.l}: TP+ {plus.stars} stars vs Hilbert {baseline.stars} stars "
              f"({100 * (1 - plus.stars / max(baseline.stars, 1)):.0f}% fewer)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4000)
