"""Approximation guarantees in practice: certified ratios on real runs.

The paper proves TP is an l-approximation for tuple minimization and an
(l*d)-approximation for star minimization, but observes that its practical
behaviour is much better (it usually stops in phase one, a d-approximation).
This example makes that observable: for a sweep of census projections it
prints the phase reached, the instance-specific lower bound of Corollaries 1
and 2, and the certified upper bound on the realised ratio — plus, for tiny
tables, an exact comparison against brute force.

Run with::

    python examples/approximation_certificates.py
"""

from __future__ import annotations

from repro.core import exact, three_phase
from repro.core.bounds import certificate, theoretical_star_ratio, theoretical_tuple_ratio
from repro.dataset.synthetic import CensusConfig, make_sal


def census_sweep() -> None:
    base = make_sal(3000, seed=5, config=CensusConfig.scaled(0.3))
    print("census projections (n=3000):")
    print(f"  {'QI attributes':<40} {'l':>2} {'phase':>5} {'|R|':>6} {'bound':>6} "
          f"{'tuple ratio <=':>14} {'star ratio <=':>13}")
    for names in (("Age", "Gender"), ("Age", "Gender", "Education"),
                  ("Age", "Gender", "Education", "Race")):
        table = base.project(names)
        for l in (3, 6):
            result = three_phase.anonymize(table, l)
            cert = certificate(table, l, result.stats.removed_tuples, result.star_count)
            print(f"  {'+'.join(names):<40} {l:>2} {result.stats.phase_reached:>5} "
                  f"{result.stats.removed_tuples:>6} {cert.tuple_bound:>6} "
                  f"{cert.tuple_ratio_upper_bound:>14.2f} {cert.star_ratio_upper_bound:>13.2f}"
                  f"   (worst case {theoretical_tuple_ratio(l)} / "
                  f"{theoretical_star_ratio(l, table.dimension)})")


def exact_comparison() -> None:
    from repro.dataset.examples import hospital_microdata

    table = hospital_microdata()
    result = three_phase.anonymize(table, 2)
    optimal_tuples = exact.optimal_tuple_count(table, 2)
    optimal_stars = exact.optimal_star_count(table, 2)
    print("\nexact comparison on the 10-row hospital table (l = 2):")
    print(f"  TP suppressed tuples: {result.suppressed_tuple_count} (optimum {optimal_tuples})")
    print(f"  TP stars:             {result.star_count} (optimum {optimal_stars}, "
          f"ratio {result.star_count / optimal_stars:.2f}, guarantee {2 * table.dimension})")


def main() -> None:
    census_sweep()
    exact_comparison()


if __name__ == "__main__":
    main()
