"""Extensions in action: domain coarsening (Section 5.6) and privacy audits.

Part 1 sweeps the coarsening depth of the Section 5.6 preprocessing hybrid on
a high-dimensional census projection, showing the trade-off between the
number of stars and the width of the published non-star cells.

Part 2 audits the published tables against the other SA-aware principles
surveyed in Section 2 (entropy l-diversity, recursive (c,l)-diversity,
(alpha,k)-anonymity, t-closeness), illustrating how much stronger or weaker
they are than frequency l-diversity on the same output.

Run with::

    python examples/preprocessing_and_audits.py
"""

from __future__ import annotations

from repro.core import three_phase
from repro.core.preprocess import anonymize_with_coarsening
from repro.dataset.synthetic import CensusConfig, make_sal
from repro.metrics import gcp, kl_divergence
from repro.privacy.principles import (
    max_t_closeness_distance,
    satisfies_alpha_k_anonymity,
    satisfies_entropy_l_diversity,
    satisfies_recursive_cl_diversity,
)


def preprocessing_tradeoff(table, l: int = 6) -> None:
    from repro.core import hybrid

    print(f"== Section 5.6 coarsening trade-off (l={l}, d={table.dimension}, TP+ throughout) ==")
    plain = hybrid.anonymize(table, l)
    print(f"  no preprocessing : {plain.star_count:>7} stars, "
          f"GCP={gcp(plain.generalized):.3f}, "
          f"KL={kl_divergence(table, plain.generalized):.3f}")
    for depth in (3, 2, 1):
        result = anonymize_with_coarsening(table, l, depth=depth)
        print(f"  coarsen to depth {depth}: {result.star_count:>7} stars, "
              f"{result.subdomain_cell_count:>7} sub-domain cells, "
              f"GCP={gcp(result.generalized):.3f}, "
              f"KL={kl_divergence(table, result.generalized):.3f}")


def privacy_audits(table, l: int = 6) -> None:
    print(f"\n== auditing the TP output against other principles (l={l}) ==")
    generalized = three_phase.anonymize(table, l).generalized
    print(f"  frequency {l}-diverse      : {generalized.is_l_diverse(l)}")
    print(f"  entropy  {l}-diverse       : {satisfies_entropy_l_diversity(generalized, l)}")
    print(f"  entropy  2-diverse        : {satisfies_entropy_l_diversity(generalized, 2)}")
    print(f"  recursive (3, 2)-diverse  : {satisfies_recursive_cl_diversity(generalized, 3.0, 2)}")
    print(f"  (1/{l}, {l})-anonymous       : "
          f"{satisfies_alpha_k_anonymity(generalized, alpha=1 / l, k=l)}")
    print(f"  worst t-closeness distance: {max_t_closeness_distance(generalized):.3f}")


def main() -> None:
    base = make_sal(6000, seed=11, config=CensusConfig.scaled(0.3))
    table = base.project(base.schema.qi_names[:5])
    preprocessing_tradeoff(table)
    privacy_audits(table)


if __name__ == "__main__":
    main()
