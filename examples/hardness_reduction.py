"""The NP-hardness gadget of Section 4, executed end to end.

Builds the Figure 1 example (a 3-dimensional matching instance with four
values per dimension and six points), reduces it to a 3-diversity instance,
prints the constructed microdata table (Figure 1b), and verifies Lemma 3:
the 3DM instance has a perfect matching iff the table admits a 3-diverse
generalization with exactly 3n(d-1) stars.

Run with::

    python examples/hardness_reduction.py
"""

from __future__ import annotations

from repro.core import three_phase
from repro.hardness import (
    matching_to_generalization,
    reduce_to_l_diversity,
    solve_3dm,
    verify_construction_properties,
    verify_lemma3,
)
from repro.hardness.three_dm import paper_example_instance


def main() -> None:
    instance = paper_example_instance()
    print(f"3DM instance: n={instance.n}, points={instance.point_count}")
    for index, point in enumerate(instance.points, start=1):
        print(f"  p{index} = {point}")

    reduced = reduce_to_l_diversity(instance, m=8)
    verify_construction_properties(reduced)
    table = reduced.table
    print(f"\nconstructed table (Figure 1b): {len(table)} rows, d={table.dimension}, "
          f"m={reduced.m}, alphabet size={reduced.m + 1}")
    header = "  ".join(f"A{i + 1}" for i in range(table.dimension)) + "   B"
    print("  " + header)
    for row in range(len(table)):
        qi = "   ".join(str(table.schema.qi[i].decode(table.qi_row(row)[i]))
                        for i in range(table.dimension))
        print(f"  {qi}   {table.schema.sensitive.decode(table.sa_value(row))}")

    matching = solve_3dm(instance)
    print(f"\n3DM solution (point indices): {tuple(i + 1 for i in matching)}")
    generalized = matching_to_generalization(reduced, matching)
    print(f"generalization built from the matching: {generalized.star_count()} stars "
          f"(threshold 3n(d-1) = {reduced.star_threshold}), "
          f"3-diverse: {generalized.is_l_diverse(3)}")

    report = verify_lemma3(reduced)
    print(f"Lemma 3 verified on this instance: {report.consistent}")

    tp = three_phase.anonymize(table, 3)
    print(f"\nTP on the gadget table: {tp.star_count} stars "
          f"(>= {reduced.star_threshold} as required by Property 4), "
          f"phase reached: {tp.stats.phase_reached}")


if __name__ == "__main__":
    main()
