"""The Section 1 story: linking attacks, k-anonymity's homogeneity problem,
and how l-diversity fixes it — replayed on the paper's Tables 1-3.

Run with::

    python examples/hospital_microdata.py
"""

from __future__ import annotations

from repro import datasets, three_phase
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.privacy import diversity_report, simulate_linking_attack


def show(title: str, generalized: GeneralizedTable) -> None:
    names = datasets.hospital_patient_names()
    print(f"\n== {title} ==")
    for row, record in enumerate(generalized.decoded_records()):
        values = "  ".join(f"{value}" for value in record.values())
        print(f"  {names[row]:<7} {values}")


def attack(table, generalized, label: str, l: int | None = None) -> None:
    threshold = None if l is None else 1 / l
    report = simulate_linking_attack(table, generalized, confidence_threshold=threshold)
    print(f"  linking attack on {label}: "
          f"max confidence {report.max_confidence:.0%}, "
          f"correct inferences {report.correct_inference_rate:.0%}"
          + (f", individuals above 1/l: {report.above_threshold_rate:.0%}" if l else ""))


def main() -> None:
    table = datasets.hospital_microdata()

    # The raw microdata: the adversary who knows Calvin's QI values finds his
    # disease immediately (every QI-group published verbatim).
    raw = GeneralizedTable.from_partition(table, Partition.by_qi(table))
    show("Table 1 — raw microdata (no protection)", raw)
    attack(table, raw, "the raw table")

    # Table 2: 2-anonymous, but the first QI-group is SA-homogeneous (HIV),
    # so Adam and Bob are still fully exposed.
    table2 = GeneralizedTable.from_partition(
        table, Partition([[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]], len(table))
    )
    show("Table 2 — 2-anonymous publication", table2)
    print(f"  2-anonymous: {table2.is_k_anonymous(2)}, 2-diverse: {table2.is_l_diverse(2)}")
    attack(table, table2, "the 2-anonymous table", l=2)

    # Table 3: 2-diverse — every group mixes diseases, confidence capped at 50%.
    table3 = GeneralizedTable.from_partition(
        table, Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], len(table))
    )
    show("Table 3 — 2-diverse publication (8 stars)", table3)
    attack(table, table3, "the 2-diverse table", l=2)

    # The TP algorithm reaches the same protection automatically.
    result = three_phase.anonymize(table, l=2)
    show(f"TP output (phase {result.stats.phase_reached}, {result.star_count} stars)",
         result.generalized)
    report = diversity_report(result.generalized)
    print(f"  achieved l = {report.achieved_l}, worst confidence = {report.max_confidence:.0%}")
    attack(table, result.generalized, "the TP output", l=2)


if __name__ == "__main__":
    main()
