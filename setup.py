"""Setup shim for environments without PEP 517 build isolation (offline installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'The Hardness and Approximation Algorithms for "
        "L-Diversity' (EDBT 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={"console_scripts": ["ldiversity = repro.cli:main"]},
)
