"""Setup shim for environments without PEP 517 build isolation (offline installs)."""

from pathlib import Path

from setuptools import find_packages, setup

# Single-sourced with repro.__version__; exec'd rather than imported so the
# build does not require the runtime dependencies (numpy et al.).
_version_globals: dict = {}
exec(
    Path(__file__).parent.joinpath("src", "repro", "_version.py").read_text(),
    _version_globals,
)

setup(
    name="repro",
    version=_version_globals["__version__"],
    description=(
        "Reproduction of 'The Hardness and Approximation Algorithms for "
        "L-Diversity' (EDBT 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={"console_scripts": ["ldiversity = repro.cli:main"]},
)
