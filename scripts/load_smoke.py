"""CI smoke check for the anonymization server under concurrent load.

Boots ``ldiversity serve`` in a subprocess (unless ``--base-url`` points at a
running server), then:

1. **throughput + correctness** — ``--clients`` threads (default 8) submit
   ``--jobs`` jobs (default 200) drawn from a small set of distinct
   workloads, wait for each and fetch its result; every returned table must
   be l-diverse (checked independently, in-process) and the sensitive
   column must survive as a multiset on the inline workloads;
2. **store reuse** — the workload set is much smaller than the job count, so
   repeated identical submissions must be served from the persistent run
   store (``store_hit``) rather than recomputed; the smoke asserts at least
   one cross-request store hit (and reports the observed rate);
3. **backpressure** — a burst of slow jobs from a non-retrying client must
   produce at least one ``429`` with a ``Retry-After`` header once the
   bounded queue fills, and still-queued burst jobs are then cancelled
   through the API (exercising the ``cancelled`` lifecycle state);
4. **privacy specs** — a slice of jobs is submitted with non-default
   ``privacy`` objects (entropy-l, recursive-cl, alpha-k, k-anonymity)
   through the HTTP API; each result is re-verified in-process with the
   matching spec checker at rendered-row granularity, and the record/result
   payloads must echo the resolved spec;
5. **result artifacts** — a 10^5-row job is served end-to-end
   (submit → ``result_csv``) off its zero-copy artifact: the bytes must be
   identical to the legacy render-and-pickle path replayed in-process, the
   round trip must beat that legacy pipeline by ``MIN_ARTIFACT_SPEEDUP``x,
   the fetched table must still satisfy its privacy spec, and a repeat
   fetch must be a render-cache hit (the cache-hit counter moves, the
   render counter does not);
6. **telemetry** — ``GET /v1/telemetry`` is scraped (and parsed as
   Prometheus text) before and after the run: request/submission counters
   must have moved by at least the work performed, the queue-full rejections
   of phase 3 must appear under ``repro_jobs_rejected_total``, and a fixed
   job's trace (``GET /v1/jobs/{id}/trace``) must contain every lifecycle
   span — submit, queue-wait, attempt-1, engine stages, publish — keyed by
   the client-minted request id;
7. **clean shutdown** — the server subprocess must exit with code 0 on
   SIGTERM.

Exit code 0 on success, 1 on any violation::

    PYTHONPATH=src python scripts/load_smoke.py
    PYTHONPATH=src python scripts/load_smoke.py --base-url http://127.0.0.1:8350
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

from repro.client import BackpressureError, Client, ClientError
from repro.dataset.examples import hospital_microdata
from repro.obs.metrics import parse_prometheus_text
from repro.privacy.spec import privacy_from_dict, privacy_registry

QUEUE_CAP = 8
WORKERS = 4
BURST_JOBS = 20
BURST_N = 25_000
ARTIFACT_N = 100_000
ARTIFACT_L = 4
MIN_ARTIFACT_SPEEDUP = 1.5


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def rows_l_diverse(rows: list[list[str]], qi_width: int, l: int) -> bool:
    """Independent eligibility check of a returned table (last column = SA)."""
    histograms: dict[tuple, Counter] = {}
    for row in rows:
        key = tuple(row[:qi_width])
        histograms.setdefault(key, Counter())[row[qi_width]] += 1
    if not histograms:
        return False
    return all(
        max(histogram.values()) * l <= sum(histogram.values())
        for histogram in histograms.values()
    )


def workload_set() -> list[dict]:
    """Distinct submissions; deliberately few so repeats hit the store."""
    table = hospital_microdata()
    rows = [
        {key: str(value) for key, value in table.decoded_record(index).items()}
        for index in range(len(table))
    ]
    qi = list(table.schema.qi_names)
    sa = table.schema.sensitive.name
    workloads: list[dict] = [
        {"rows": rows, "qi": qi, "sa": sa, "l": 2, "algorithm": "TP"},
        {"rows": rows, "qi": qi, "sa": sa, "l": 2, "algorithm": "TP+"},
        {"rows": rows, "qi": qi, "sa": sa, "l": 2, "algorithm": "Hilbert"},
    ]
    for l, n, algorithm in (
        (2, 200, "TP"),
        (3, 300, "TP+"),
        (4, 400, "TP"),
        (4, 400, "TP+"),
        (5, 500, "Hilbert"),
        (2, 250, "Mondrian"),
        (3, 350, "TP+"),
    ):
        workloads.append(
            {
                "source": {"kind": "synthetic", "dataset": "SAL", "n": n,
                           "seed": 11, "dimension": 3},
                "l": l,
                "algorithm": algorithm,
                "metrics": ["stars"],
            }
        )
    return workloads


class ClientWorker(threading.Thread):
    """One synthetic user: submit -> wait -> fetch -> verify, in a loop."""

    def __init__(self, index: int, base_url: str, jobs: int, workloads: list[dict]):
        super().__init__(daemon=True)
        self.index = index
        self.client = Client(
            base_url,
            client_id=f"load-{index}",
            retries=30,
            backoff_seconds=0.05,
            timeout=60.0,
        )
        self.jobs = jobs
        self.workloads = workloads
        self.completed = 0
        self.store_hits = 0
        self.errors: list[str] = []

    def run(self) -> None:
        for round_number in range(self.jobs):
            workload = self.workloads[(self.index + round_number) % len(self.workloads)]
            try:
                record, result = self.client.submit_and_wait(timeout=120.0, **workload)
            except Exception as error:  # noqa: BLE001 - collected, reported below
                self.errors.append(f"{type(error).__name__}: {error}")
                return
            qi_width = len(result["header"]) - 1
            if not result["verified"]:
                self.errors.append(f"{record['id']}: server did not verify the output")
                return
            if not rows_l_diverse(result["rows"], qi_width, workload["l"]):
                self.errors.append(
                    f"{record['id']}: returned table violates {workload['l']}-diversity"
                )
                return
            if "rows" in workload:
                sa_name = workload["sa"]
                want = sorted(row[sa_name] for row in workload["rows"])
                got = sorted(row[qi_width] for row in result["rows"])
                if want != got:
                    self.errors.append(f"{record['id']}: sensitive column was altered")
                    return
            self.completed += 1
            if result["store_hit"]:
                self.store_hits += 1


def rows_satisfy_spec(rows: list[list[str]], qi_width: int, spec) -> bool:
    """Re-check a returned table against a privacy spec at rendered granularity."""
    histograms: dict[tuple, Counter] = {}
    total: Counter = Counter()
    for row in rows:
        histograms.setdefault(tuple(row[:qi_width]), Counter())[row[qi_width]] += 1
        total[row[qi_width]] += 1
    if not histograms:
        return False
    return all(spec.check(histogram, total) for histogram in histograms.values())


#: The non-default spec slice of phase 4 (entropy-l twice so one submission
#: exercises a store hit under a non-frequency spec).
PRIVACY_SPECS = [
    {"kind": "entropy-l", "l": 2.0},
    {"kind": "recursive-cl", "c": 2.0, "l": 2},
    {"kind": "alpha-k", "alpha": 0.5, "k": 4},
    {"kind": "k-anonymity", "k": 4},
    {"kind": "entropy-l", "l": 2.0},
]


def phase_privacy(base_url: str) -> None:
    """Submit a slice of jobs under non-default privacy specs; verify each."""
    client = Client(
        base_url, client_id="privacy", retries=30, backoff_seconds=0.05, timeout=60.0
    )
    models = {entry["name"] for entry in client.privacy_models()}
    expected = set(privacy_registry.names())
    if models != expected:
        fail(f"GET /v1/privacy listed {sorted(models)}, expected {sorted(expected)}")
    source = {"kind": "synthetic", "dataset": "SAL", "n": 600, "seed": 11,
              "dimension": 3}
    verified = 0
    for payload in PRIVACY_SPECS:
        spec = privacy_from_dict(payload)
        record, result = client.submit_and_wait(
            timeout=120.0, source=source, algorithm="TP", privacy=payload
        )
        if record["status"] != "done":
            fail(f"privacy job {record['id']} ended {record['status']}")
        if result["privacy"] != spec.to_dict():
            fail(
                f"{record['id']}: result echoed privacy {result['privacy']!r}, "
                f"expected {spec.to_dict()!r}"
            )
        qi_width = len(result["header"]) - 1
        if not rows_satisfy_spec(result["rows"], qi_width, spec):
            fail(f"{record['id']}: returned table violates {spec.describe()}")
        verified += 1
    # a check-only model must be rejected at submission time
    try:
        client.submit(source=source, privacy={"kind": "t-closeness", "t": 0.2})
    except ClientError as error:
        if error.status != 400:
            fail(f"t-closeness submission got HTTP {error.status}, expected 400")
    else:
        fail("t-closeness submission was accepted; it is check-only")
    print(
        f"privacy: {verified} spec jobs verified with their matching checkers, "
        "check-only t-closeness rejected with 400"
    )


def phase_result_artifacts(base_url: str) -> None:
    """Zero-copy artifact serving: byte-identical, faster, cached on repeat.

    The legacy baseline is replayed in-process: the same job spec through
    :func:`repro.server.pool.execute_job` *without* the ``result_artifact``
    marker renders and pickles every row-string list exactly as the old
    worker did, then the server-side CSV write is repeated on those rows.
    That baseline omits the HTTP/polling overhead the served path pays, so
    the speedup floor is conservative.
    """
    from repro.server.pool import execute_job

    client = Client(
        base_url, client_id="artifact", retries=30, backoff_seconds=0.05, timeout=120.0
    )

    # Best-of-two timing on both sides (distinct seeds, so neither attempt is
    # a run-store replay): a single-shot measurement is too noisy to hold a
    # 1.5x floor when the absolute times are a few hundred milliseconds.
    served_times, legacy_times = [], []
    job_id = None
    served_csv = ""
    for seed in (0, 1):
        source = {"kind": "synthetic", "dataset": "SAL", "n": ARTIFACT_N,
                  "seed": seed, "dimension": 3}
        started = time.perf_counter()
        job_id = client.submit(source=source, l=ARTIFACT_L, algorithm="TP+")
        client.wait(job_id, timeout=240.0)
        served_csv = client.result_csv(job_id)
        served_times.append(time.perf_counter() - started)

        reader = csv.reader(io.StringIO(served_csv))
        header = next(reader)
        rows = list(reader)
        qi_width = len(header) - 1
        if len(rows) != ARTIFACT_N:
            fail(f"artifact CSV carries {len(rows)} rows, expected {ARTIFACT_N}")
        if not rows_l_diverse(rows, qi_width, ARTIFACT_L):
            fail(f"artifact-served table violates {ARTIFACT_L}-diversity")

        spec = {"algorithm": "TP+", "l": ARTIFACT_L, "metrics": [], "shards": None,
                "backend": None, "seed": seed, "chunk_rows": None,
                "include_rows": True, "source": source}
        with tempfile.TemporaryDirectory() as legacy_workspace:
            started = time.perf_counter()
            legacy = execute_job(spec, legacy_workspace, False)
            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow(legacy["header"])
            writer.writerows(legacy["rows"])
            legacy_csv = buffer.getvalue()
            legacy_times.append(time.perf_counter() - started)
        if "result_artifact" in legacy or "rows" not in legacy:
            fail("legacy baseline unexpectedly took the artifact path")
        if legacy_csv != served_csv:
            fail("artifact-served CSV is not byte-identical to the legacy render")

    artifact_seconds = min(served_times)
    legacy_seconds = min(legacy_times)
    speedup = legacy_seconds / artifact_seconds if artifact_seconds else float("inf")
    if speedup < MIN_ARTIFACT_SPEEDUP:
        fail(
            f"submit->result_csv took {artifact_seconds:.3f}s vs legacy "
            f"{legacy_seconds:.3f}s ({speedup:.2f}x), floor is "
            f"{MIN_ARTIFACT_SPEEDUP:g}x"
        )

    before = parse_prometheus_text(client.telemetry_text())
    renders = metric(before, "repro_result_renders_total", format="csv")
    hits = metric(before, "repro_result_cache_hits_total", format="csv")
    if client.result_csv(job_id) != served_csv:
        fail("repeat result_csv fetch returned different bytes")
    after = parse_prometheus_text(client.telemetry_text())
    if metric(after, "repro_result_renders_total", format="csv") != renders:
        fail("repeat result_csv fetch re-rendered instead of hitting the cache")
    if metric(after, "repro_result_cache_hits_total", format="csv") != hits + 1:
        fail("repeat result_csv fetch did not count as a render-cache hit")
    if metric(after, "repro_result_artifact_bytes") <= 0:
        fail("repro_result_artifact_bytes gauge never saw the resident artifact")
    print(
        f"result artifacts: {ARTIFACT_N} rows served in {artifact_seconds:.2f}s "
        f"vs legacy {legacy_seconds:.2f}s ({speedup:.2f}x, bytes identical), "
        "repeat fetch cache-hit with no re-render"
    )


def metric(samples: dict, name: str, **labels) -> float:
    """Value of one exposition sample (0.0 when the series never appeared)."""
    return samples.get((name, tuple(sorted(labels.items()))), 0.0)


def phase_telemetry(probe: Client, before: dict) -> None:
    """Scrape /v1/telemetry after the run: counters moved, trace complete."""
    after = parse_prometheus_text(probe.telemetry_text())

    # Requests: every phase above went through HTTP, so the all-series sum
    # of the request counter must have grown substantially.
    def requests_total(samples: dict) -> float:
        return sum(
            value
            for (name, _), value in samples.items()
            if name == "repro_http_requests_total"
        )

    if requests_total(after) <= requests_total(before):
        fail("repro_http_requests_total did not move across the load run")
    submitted = metric(after, "repro_jobs_submitted_total") - metric(
        before, "repro_jobs_submitted_total"
    )
    if submitted < 1:
        fail("repro_jobs_submitted_total did not move across the load run")
    if metric(after, "repro_jobs_rejected_total", reason="queue_full") < 1:
        fail("phase 3's queue-full rejections never reached the telemetry registry")
    if metric(after, "repro_jobs_terminal_total", state="cancelled") < 1:
        fail("phase 3's cancellations never reached the telemetry registry")

    # Telemetry and /v1/health must tell the same story (one source of truth).
    jobs = probe.health()["jobs"]
    for health_key, name, labels in (
        ("submitted", "repro_jobs_submitted_total", {}),
        ("done", "repro_jobs_terminal_total", {"state": "done"}),
        ("rejected_queue_full", "repro_jobs_rejected_total", {"reason": "queue_full"}),
        ("store_hits", "repro_store_hits_total", {}),
    ):
        if jobs[health_key] != metric(after, name, **labels):
            fail(
                f"health jobs[{health_key!r}]={jobs[health_key]} disagrees with "
                f"telemetry {name}{labels or ''}={metric(after, name, **labels)}"
            )

    # Fixed job: a workload no other phase used (so it cannot be a store
    # hit) must leave a complete span tree behind, keyed by the request id
    # the client minted.
    job_id = probe.submit(
        source={"kind": "synthetic", "dataset": "SAL", "n": 150, "seed": 909,
                "dimension": 2},
        l=2,
        algorithm="TP",
    )
    minted = probe.last_request_id
    probe.wait(job_id, timeout=120.0)
    trace = probe.trace(job_id)
    if trace["request_id"] != minted:
        fail(
            f"trace of {job_id} carries request id {trace['request_id']!r}, "
            f"client minted {minted!r}"
        )
    spans = {span["name"] for span in trace["spans"]}
    expected = {"submit", "queue-wait", "attempt-1", "publish"}
    if not expected <= spans:
        fail(f"trace of {job_id} is missing spans {sorted(expected - spans)}")
    engine_spans = [
        span for span in trace["spans"] if span["name"].startswith("engine:")
    ]
    if not engine_spans:
        fail(f"trace of {job_id} carries no engine stage spans")
    if any(span["parent"] != "attempt-1" for span in engine_spans):
        fail(f"engine spans of {job_id} are not parented to attempt-1")
    print(
        f"telemetry: {requests_total(after):.0f} requests scraped, "
        f"{submitted:.0f} submissions counted, trace of {job_id} complete "
        f"({len(trace['spans'])} spans, request {minted[:8]}…)"
    )


def phase_backpressure(base_url: str) -> None:
    """Burst slow jobs past the queue cap; demand a 429 with Retry-After."""
    burst = Client(base_url, client_id="burst", retries=0)
    accepted: list[str] = []
    saw_429 = False
    saw_retry_after = False
    body = json.dumps(
        {
            "source": {"kind": "synthetic", "dataset": "SAL", "n": BURST_N, "seed": 5},
            "l": 4,
            "algorithm": "TP",
        }
    ).encode()
    for _ in range(BURST_JOBS):
        request = urllib.request.Request(
            f"{base_url}/v1/jobs",
            data=body,
            headers={"Content-Type": "application/json", "X-Client-Id": "burst"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                accepted.append(json.loads(response.read())["id"])
        except urllib.error.HTTPError as error:
            error.read()
            if error.code != 429:
                fail(f"burst submission got HTTP {error.code}, expected 429")
            saw_429 = True
            if error.headers.get("Retry-After"):
                saw_retry_after = True
    if not saw_429:
        fail(f"{BURST_JOBS} burst jobs never hit the {QUEUE_CAP}-deep queue cap (no 429)")
    if not saw_retry_after:
        fail("429 responses did not carry a Retry-After header")
    # Free the queue: cancel everything still queued, let the rest finish.
    cancelled = 0
    for job_id in accepted:
        try:
            burst.cancel(job_id)
            cancelled += 1
        except ClientError:
            pass  # already running or done; cancellation is queued-only
    for job_id in accepted:
        status = burst.status(job_id)["status"]
        if status not in ("done", "failed", "cancelled"):
            try:
                burst.wait(job_id, timeout=180.0, poll_seconds=0.2)
            except Exception:  # noqa: BLE001 - failed burst jobs are fine here
                pass
    print(
        f"backpressure: {len(accepted)} accepted, "
        f"{BURST_JOBS - len(accepted)} rejected with 429 (Retry-After set), "
        f"{cancelled} cancelled"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=200, help="total jobs in phase 1")
    parser.add_argument(
        "--base-url", default=None, help="target an already-running server instead"
    )
    arguments = parser.parse_args()
    if arguments.clients < 1 or arguments.jobs < arguments.clients:
        parser.error("need at least one client and one job per client")

    process: subprocess.Popen | None = None
    workspace = tempfile.mkdtemp(prefix="load-smoke-ws-")
    base_url = arguments.base_url
    started = time.perf_counter()
    try:
        if base_url is None:
            process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "serve",
                    "--port", "0",
                    "--workers", str(WORKERS),
                    "--queue-cap", str(QUEUE_CAP),
                    "--workspace", workspace,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            assert process.stdout is not None
            boot_line = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", boot_line)
            if match is None:
                process.kill()
                fail(f"server did not announce an address: {boot_line!r}")
            base_url = f"http://{match.group(1)}:{match.group(2)}"
        probe = Client(base_url, client_id="probe")
        health = probe.wait_until_ready(timeout=20.0)
        print(f"server ready at {base_url} (version {health['version']})")
        telemetry_before = parse_prometheus_text(probe.telemetry_text())

        per_client = arguments.jobs // arguments.clients
        workloads = workload_set()
        workers = [
            ClientWorker(index, base_url, per_client, workloads)
            for index in range(arguments.clients)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=600)
            if worker.is_alive():
                fail(f"client {worker.index} did not finish within the deadline")
        errors = [error for worker in workers for error in worker.errors]
        if errors:
            fail("; ".join(errors[:5]))
        completed = sum(worker.completed for worker in workers)
        store_hits = sum(worker.store_hits for worker in workers)
        absorbed = sum(worker.client.backpressure_events for worker in workers)
        elapsed = time.perf_counter() - started
        if completed != per_client * arguments.clients:
            fail(f"only {completed} of {per_client * arguments.clients} jobs completed")
        if completed < 200 and arguments.jobs >= 200:
            fail(f"acceptance requires >= 200 completed jobs, got {completed}")
        if store_hits < 1:
            fail("no submission was ever served from the persistent run store")
        print(
            f"throughput: {completed} jobs across {arguments.clients} clients "
            f"in {elapsed:.1f}s ({completed / elapsed:.1f} jobs/s), "
            f"{store_hits} store hits ({100.0 * store_hits / completed:.0f}%), "
            f"{absorbed} backpressure responses absorbed by retries"
        )

        phase_privacy(base_url)

        phase_result_artifacts(base_url)

        phase_backpressure(base_url)

        phase_telemetry(probe, telemetry_before)

        health = probe.health()
        jobs = health["jobs"]
        if jobs["rejected_queue_full"] < 1:
            fail("server health never counted a queue-full rejection")
        if jobs["store_hits"] < 1:
            fail("server health never counted a store hit")
        print(f"health counters: {jobs}")

        if process is not None:
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
            if process.returncode != 0:
                fail(f"server exited {process.returncode} on SIGTERM:\n{output}")
            print("clean shutdown on SIGTERM (exit code 0)")
            process = None
        print("OK: load smoke passed")
    except BackpressureError as error:
        fail(f"client retry budget exhausted: {error}")
    finally:
        if process is not None:
            # SIGTERM first: a SIGKILLed server cannot reap its pool workers,
            # which would outlive the smoke blocked on the inherited call queue.
            process.send_signal(signal.SIGTERM)
            try:
                process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.communicate(timeout=10)


if __name__ == "__main__":
    main()
