"""Run every figure of the paper at a chosen scale and write a report.

Used to produce the numbers recorded in EXPERIMENTS.md::

    python scripts/run_experiments.py [--scale default|smoke|paper|report] \
        [--output results.txt] [--workers N] [--backend numpy|reference] \
        [--workspace DIR]

Figure drivers are taken from ``repro.experiments.figures.FIGURES`` and all
runs go through the engine's result cache, so combinations shared between
figures (e.g. the stars-vs-l and time-vs-l sweeps) are computed once; the
per-tier hit tally is appended to the report.  ``--workers`` defaults to
the cost-based planner's choice; ``--workspace`` backs the cache with a
persistent run store so repeated sweeps reuse results across processes.
"""

from __future__ import annotations

import argparse
import dataclasses
import time

from repro import backend
from repro.engine.cache import default_cache
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import cache_summary


def _config(scale: str) -> ExperimentConfig:
    presets = ExperimentConfig.presets()
    if scale in presets:
        return presets[scale]()
    if scale == "report":
        # The scale used for EXPERIMENTS.md: full l/d sweeps, two projections
        # per family, 12k rows.
        return dataclasses.replace(
            ExperimentConfig.default(),
            n=12_000,
            max_tables_per_family=2,
            sample_sizes=(2_000, 4_000, 6_000, 8_000, 10_000, 12_000),
        )
    raise ValueError(f"unknown scale {scale!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default="report",
        choices=sorted(ExperimentConfig.presets()) + ["report"],
    )
    parser.add_argument("--output", default="experiment_results.txt")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent (table, l, algorithm) runs over N processes "
        "(default: cost-based planner)",
    )
    parser.add_argument(
        "--workspace",
        default=None,
        help="back the run cache with this workspace's persistent store, so "
        "repeated sweeps reuse results across processes",
    )
    parser.add_argument(
        "--backend",
        default="numpy",
        choices=["numpy", "reference"],
        help="data-plane backend: vectorized NumPy or the pure-Python reference",
    )
    arguments = parser.parse_args()
    backend.set_backend(arguments.backend)
    if arguments.workspace:
        from repro.service import Workspace

        default_cache().store = Workspace(arguments.workspace).run_store()
    config = dataclasses.replace(_config(arguments.scale), workers=arguments.workers)

    sections: list[str] = [f"scale={arguments.scale}  config={config}"]
    drivers = sorted(figures.FIGURES.items())
    for dataset in ("SAL", "OCC"):
        for name, driver in drivers:
            started = time.perf_counter()
            result = driver(dataset, config)
            elapsed = time.perf_counter() - started
            sections.append(result.format() + f"\n[{name} {dataset}: {elapsed:.1f}s]")
            print(sections[-1], flush=True)
        started = time.perf_counter()
        frequency = figures.phase3_frequency(dataset, config)
        elapsed = time.perf_counter() - started
        sections.append(f"[{dataset}] " + frequency.format() + f"  [{elapsed:.1f}s]")
        print(sections[-1], flush=True)

    sections.append(cache_summary(default_cache()))
    with open(arguments.output, "w") as handle:
        handle.write("\n\n".join(sections) + "\n")
    print(f"\nreport written to {arguments.output}")


if __name__ == "__main__":
    main()
