"""Record (or check) the figure-6 performance baseline of the two backends.

Runs ``bench_fig6_time_vs_n`` (the Figure 6 driver at ``BENCH_CONFIG`` scale)
once per backend — the vectorized NumPy data plane and the pure-Python
reference path — and writes the per-algorithm time-vs-n trajectories plus the
end-to-end speedup at the largest cardinality to a JSON baseline::

    PYTHONPATH=src python scripts/bench_baseline.py --output BENCH_fig6.json

Future PRs compare against the committed ``BENCH_fig6.json``; the CI smoke
mode re-times only the NumPy backend (fast) and fails when it has regressed
more than ``--tolerance``-fold against the recorded baseline::

    PYTHONPATH=src python scripts/bench_baseline.py --check BENCH_fig6.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone

sys.path.insert(0, "benchmarks")
from _config import BENCH_CONFIG  # noqa: E402

from repro.backend import use_backend  # noqa: E402
from repro.engine.cache import default_cache  # noqa: E402
from repro.experiments import figures  # noqa: E402

ALGORITHMS = ("Hilbert", "TP", "TP+")


def _series(
    dataset: str, repeats: int
) -> tuple[dict[str, dict[str, float]], dict[str, float]]:
    """Per-algorithm {n: seconds} for figure 6, minimum over ``repeats`` runs.

    Also returns the per-stage (anonymize / metrics) second totals of the
    last repeat, so the recorded baseline attributes time to the right
    pipeline stage.  The engine's result cache is cleared before every
    repeat — a cached replay would return the first repeat's measurement and
    defeat the min-over-repeats noise reduction.
    """
    best: dict[str, dict[str, float]] = {name: {} for name in ALGORITHMS}
    stages = {"anonymize_seconds": 0.0, "metrics_seconds": 0.0}
    for _ in range(repeats):
        default_cache().clear()
        result = figures.figure6(dataset, BENCH_CONFIG)
        for name in ALGORITHMS:
            for x, y in result.series[name]:
                key = str(int(x))
                previous = best[name].get(key)
                best[name][key] = y if previous is None else min(previous, y)
        stages = {
            "anonymize_seconds": sum(record.seconds for record in result.records),
            "metrics_seconds": sum(record.metrics_seconds for record in result.records),
        }
    return best, stages


def _total_at_max_n(series: dict[str, dict[str, float]]) -> float:
    key = str(max(BENCH_CONFIG.sample_sizes))
    return sum(series[name][key] for name in ALGORITHMS)


def record(dataset: str, repeats: int, output: str) -> None:
    print(f"timing figure6 [{dataset}] at BENCH_CONFIG scale, {repeats} repeats per backend")
    numpy_series, numpy_stages = _series(dataset, repeats)
    with use_backend("reference"):
        reference_series, reference_stages = _series(dataset, repeats)
    numpy_total = _total_at_max_n(numpy_series)
    reference_total = _total_at_max_n(reference_series)
    baseline = {
        "benchmark": "bench_fig6_time_vs_n",
        "dataset": dataset,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "config": {
            "n": BENCH_CONFIG.n,
            "seed": BENCH_CONFIG.seed,
            "l": BENCH_CONFIG.l_for_cardinality_sweep,
            "sample_sizes": list(BENCH_CONFIG.sample_sizes),
            "domain_scale": BENCH_CONFIG.domain_scale,
            "base_dimension": BENCH_CONFIG.base_dimension,
        },
        "seconds": {"numpy": numpy_series, "reference": reference_series},
        # Per-stage attribution (whole figure-6 sweep, last repeat): a future
        # regression in the BENCH totals can be pinned on the anonymize or
        # the metrics stage without re-profiling.
        "stage_seconds": {"numpy": numpy_stages, "reference": reference_stages},
        "total_seconds_at_max_n": {"numpy": numpy_total, "reference": reference_total},
        "speedup_at_max_n": reference_total / numpy_total,
    }
    with open(output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"numpy backend total at n={max(BENCH_CONFIG.sample_sizes)}: {numpy_total * 1000:.2f} ms")
    print(f"reference backend total:            {reference_total * 1000:.2f} ms")
    print(f"end-to-end speedup:                 {baseline['speedup_at_max_n']:.2f}x")
    print(f"baseline written to {output}")


def check(dataset: str, repeats: int, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    recorded = baseline["total_seconds_at_max_n"]["numpy"]
    series, _stages = _series(dataset, repeats)
    current = _total_at_max_n(series)
    ratio = current / recorded if recorded else float("inf")
    print(
        f"figure6 [{dataset}] numpy backend at n={max(BENCH_CONFIG.sample_sizes)}: "
        f"{current * 1000:.2f} ms (baseline {recorded * 1000:.2f} ms, {ratio:.2f}x)"
    )
    if ratio > tolerance:
        print(f"FAIL: regression above the {tolerance:g}x tolerance")
        return 1
    print("OK: within tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="SAL", choices=["SAL", "OCC"])
    parser.add_argument("--output", default="BENCH_fig6.json")
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per backend; per-point minimum is kept"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="smoke mode: re-time only the NumPy backend and compare against this baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="maximum allowed slowdown factor in --check mode",
    )
    arguments = parser.parse_args()
    if arguments.check:
        return check(arguments.dataset, arguments.repeats, arguments.check, arguments.tolerance)
    record(arguments.dataset, arguments.repeats, arguments.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
