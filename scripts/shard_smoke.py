"""CI smoke check for the sharded execution pipeline.

Runs the engine on a fixed-seed synthetic census table (n = 10k, 4 QI
attributes, l = 4) three ways — unsharded, sharded over 4 QI-prefix shards,
and sharded on a 2-process pool — and asserts:

1. every published table passes the l-diversity verification;
2. the sharded runs are **bit-identical** to the unsharded run (cell for
   cell).  At this seed TP's per-shard decisions coincide with the global
   ones, so the pipeline must reproduce the unsharded output exactly; any
   drift in sharding, merging or worker plumbing shows up here;
3. independently of (2), suppression differences stay within the documented
   merge bound ``2 * (shards - 1) * l * d`` (see repro.engine.sharding) —
   the guarantee the engine documents for *every* seed;
4. a cache replay of the sharded run returns the identical output.

Exit code 0 on success, 1 on any violation::

    PYTHONPATH=src python scripts/shard_smoke.py
"""

from __future__ import annotations

import sys

from repro.dataset.synthetic import CensusConfig
from repro.engine import (
    Engine,
    ResultCache,
    RunPlan,
    SyntheticSource,
    suppression_merge_bound,
)
from repro.privacy.checks import verify_l_diversity

N = 10_000
SHARDS = 4
L = 4
SOURCE = SyntheticSource("SAL", n=N, seed=7, dimension=4, config=CensusConfig.scaled(0.30))


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    engine = Engine(cache=ResultCache())
    print(f"shard smoke: {SOURCE.label}, l={L}, shards={SHARDS}")

    unsharded = engine.run(RunPlan(source=SOURCE, algorithm="TP", l=L, use_cache=False))
    sharded = engine.run(
        RunPlan(source=SOURCE, algorithm="TP", l=L, shards=SHARDS)
    )
    pooled = engine.run(
        RunPlan(source=SOURCE, algorithm="TP", l=L, shards=SHARDS, workers=2, use_cache=False)
    )

    for name, report in (("unsharded", unsharded), ("sharded", sharded), ("pooled", pooled)):
        if not verify_l_diversity(report.generalized, L):
            fail(f"{name} output violates {L}-diversity")
    if len(sharded.shard_sizes) != SHARDS:
        fail(f"expected {SHARDS} shards, got {sharded.shard_sizes}")

    stars = unsharded.generalized.star_count()
    print(
        f"unsharded: {stars} stars, "
        f"{unsharded.generalized.suppressed_tuple_count()} suppressed tuples; "
        f"shard sizes {list(sharded.shard_sizes)}"
    )

    for name, report in (("sharded", sharded), ("pooled", pooled)):
        if report.generalized.cell_rows != unsharded.generalized.cell_rows:
            fail(f"{name} run is not bit-identical to the unsharded run at this seed")

    stars_bound = suppression_merge_bound(SHARDS, L, unsharded.d)
    tuples_bound = suppression_merge_bound(SHARDS, L)
    stars_delta = abs(sharded.generalized.star_count() - stars)
    tuples_delta = abs(
        sharded.generalized.suppressed_tuple_count()
        - unsharded.generalized.suppressed_tuple_count()
    )
    if stars_delta > stars_bound or tuples_delta > tuples_bound:
        fail(
            f"suppression outside merge bound: stars delta {stars_delta} (bound "
            f"{stars_bound}), tuple delta {tuples_delta} (bound {tuples_bound})"
        )

    replay = engine.run(RunPlan(source=SOURCE, algorithm="TP", l=L, shards=SHARDS))
    if not replay.cache_hit:
        fail("second sharded run did not hit the result cache")
    if replay.generalized.cell_rows != sharded.generalized.cell_rows:
        fail("cache replay diverged from the original sharded output")

    print(
        "OK: sharded output bit-identical to unsharded, within merge bound "
        f"(stars delta {stars_delta} <= {stars_bound}), cache replay identical"
    )


if __name__ == "__main__":
    main()
