"""Record the BENCH_scale raw-speed trajectory (10^5..10^7 rows).

For each cardinality, a seeded synthetic table is converted to an on-disk
column store and anonymized through the memory-mapped engine path with stage
profiling enabled, once per backend (the pure-Python reference backend only
up to ``--reference-max-n``).  The per-stage attribution and the end-to-end
numpy-vs-reference speedups are written to a JSON trajectory::

    PYTHONPATH=src python scripts/bench_scale.py --output BENCH_scale.json

The committed ``BENCH_scale.json`` recalibrates the execution planner's cost
model (see ``repro.service.planner.load_scale_rates``).  The 10^7 point
needs ~1 GB of scratch and minutes of wall clock; trim it with
``--sizes 100000,1000000`` for a quick recalibration.

``ldiversity bench`` is the same driver behind the CLI.
"""

from __future__ import annotations

import argparse

from repro.service.benchscale import BenchScaleConfig, write_bench_scale


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_scale.json")
    parser.add_argument(
        "--sizes",
        default="100000,1000000,10000000",
        help="comma-separated row counts to measure",
    )
    parser.add_argument("--dataset", default="SAL", choices=["SAL", "OCC"])
    parser.add_argument("--algorithm", default="TP+")
    parser.add_argument("--l", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--qi-scale", type=float, default=0.24)
    parser.add_argument(
        "--repeats", type=int, default=1, help="runs per point; the minimum is kept"
    )
    parser.add_argument(
        "--reference-max-n",
        type=int,
        default=1_000_000,
        help="skip the reference backend above this n",
    )
    arguments = parser.parse_args()
    sizes = tuple(int(part) for part in arguments.sizes.split(",") if part.strip())
    config = BenchScaleConfig(
        sizes=sizes,
        dataset=arguments.dataset,
        algorithm=arguments.algorithm,
        l=arguments.l,
        seed=arguments.seed,
        qi_scale=arguments.qi_scale,
        repeats=arguments.repeats,
        reference_max_n=arguments.reference_max_n,
    )
    write_bench_scale(arguments.output, config)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
