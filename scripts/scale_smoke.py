"""CI smoke for the raw-speed path: mmap bit-identity + vectorized speedup.

Builds a 10^5-row synthetic table, persists it as an on-disk column store,
and checks the acceptance properties of the zero-copy pipeline:

1. **Bit-identity** — the memory-mapped, chunk-capped engine run publishes
   exactly the same bytes as the unsharded in-memory run (table fingerprints
   and rendered CSV output compared verbatim).
2. **Speedup** — the vectorized backend beats the pure-Python reference
   backend by at least ``MIN_SPEEDUP``x end-to-end on the same store.
3. **Fused metrics** — on a freshly published run, the fused one-pass
   metrics sweep (:func:`repro.metrics.fused_metrics`) emits values equal to
   the historical standalone passes and beats their summed cost by at least
   ``MIN_FUSED_SPEEDUP``x.
4. **Warm start** — a second engine run against the same column store loads
   the persisted ``order.npy`` sort permutation instead of re-sorting: the
   cold run's profile must contain the ``sort`` stage and the warm run's
   must not.
5. **Telemetry overhead** — the serving stack's per-job observability cost
   (stage profiling force-enabled in the worker plus every registry
   mutation a served job implies) is replayed on the benched mmap run and
   must add less than ``TELEMETRY_OVERHEAD_CAP - 1`` (2%) over the bare
   run, best-of-``BENCH_ROUNDS`` timings on both sides.
6. **Encode/publish kernels** — the packed-sort encode
   (:meth:`GroupingContext.build`) and the columnar publish
   (:meth:`GeneralizedTable.from_partition`) are bit-identical to their
   retained serial oracles (including with the chunked pool paths forced)
   and beat them combined by at least ``MIN_SPEEDUP``x.

Run with ``PYTHONPATH=src python scripts/scale_smoke.py`` (wired into
``scripts/ci.sh``).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro import profiling
from repro.engine import (
    ColumnStore,
    ColumnStoreSource,
    CsvSink,
    Engine,
    RunPlan,
    TableSource,
)
from repro.engine.cache import ResultCache
from repro.dataset.synthetic import CensusConfig, make_sal
from repro.metrics import fused_metrics, unfused_metrics

N = 100_000
L = 6
SEED = 7
QI_SCALE = 0.24
CHUNK_ROWS = 20_000
MIN_SPEEDUP = 2.0
MIN_FUSED_SPEEDUP = 1.5
BENCH_ROUNDS = 3
TELEMETRY_OVERHEAD_CAP = 1.02
#: Absolute slack on top of the 2% cap so scheduler jitter on a sub-second
#: benched run cannot fail the guard spuriously.
TELEMETRY_EPSILON_SECONDS = 0.010


def _run(source, backend: str, chunk_rows: int | None = None):
    return Engine(cache=ResultCache()).run(
        RunPlan(
            source=source,
            algorithm="TP+",
            l=L,
            shards=1,
            backend=backend,
            chunk_rows=chunk_rows,
            use_cache=False,
        )
    )


def _rendered(report, path: Path) -> bytes:
    with CsvSink(str(path)) as sink:
        sink.write_table(report.generalized)
    return path.read_bytes()


def _fresh_publish():
    """A freshly anonymized (table, generalized) pair with cold metric caches."""
    from repro.core import hybrid

    table = make_sal(N, seed=SEED, config=CensusConfig.scaled(QI_SCALE))
    return table, hybrid.anonymize(table, L).generalized


def _check_fused_metrics() -> bool:
    """Fused one-pass metrics: equal values, >= MIN_FUSED_SPEEDUP vs unfused.

    Each sweep is timed against its own freshly published run so neither
    benefits from caches the other materialized.
    """
    table, generalized = _fresh_publish()
    started = time.perf_counter()
    fused = fused_metrics(table, generalized)
    fused_seconds = time.perf_counter() - started

    table, generalized = _fresh_publish()
    started = time.perf_counter()
    unfused = unfused_metrics(table, generalized)
    unfused_seconds = time.perf_counter() - started

    if fused != unfused:
        diverging = sorted(
            name for name in fused if fused[name] != unfused[name]
        )
        print(f"FAIL: fused metrics diverge from standalone passes: {diverging}")
        return False
    ratio = unfused_seconds / fused_seconds if fused_seconds else float("inf")
    print(
        f"fused metrics: {fused_seconds:.3f}s vs unfused {unfused_seconds:.3f}s "
        f"-> {ratio:.2f}x (values identical)"
    )
    if ratio < MIN_FUSED_SPEEDUP:
        print(f"FAIL: fused metrics below the {MIN_FUSED_SPEEDUP:g}x floor")
        return False
    return True


def _profiled_run(store_dir: Path) -> dict[str, float]:
    """One engine run against ``store_dir`` with stage profiling captured."""
    profiling.set_enabled(True)
    profiling.reset()
    try:
        _run(ColumnStoreSource(str(store_dir)), "numpy")
    finally:
        profiling.set_enabled(False)
    return profiling.snapshot()


def _check_warm_start(table, tmp: Path) -> bool:
    """order.npy warm start: the second run on the same store skips the sort."""
    store_dir = tmp / "warm-store"
    ColumnStore.from_table(table).save(store_dir)
    cold = _profiled_run(store_dir)
    warm = _profiled_run(store_dir)
    if cold.get("sort", 0.0) <= 0.0:
        print("FAIL: cold run recorded no sort stage (guard cannot bite)")
        return False
    if "sort" in warm:
        print("FAIL: warm run re-sorted despite the persisted order.npy")
        return False
    if not (store_dir / "order.npy").exists():
        print("FAIL: order.npy sidecar missing after the cold run")
        return False
    print(
        f"warm start: cold sort {cold['sort']:.3f}s, warm run served from "
        "order.npy (no sort stage)"
    )
    return True


def _check_telemetry_overhead(mmap_source) -> bool:
    """Telemetry must cost < 2% of the benched run.

    The serving path adds two kinds of per-job observability cost: stage
    profiling is force-enabled inside the pool worker (to bridge engine
    spans back through the result payload) and the server mutates registry
    instruments around the job.  Both are replayed here on top of the
    benched mmap run and compared with the bare run, best of
    ``BENCH_ROUNDS`` timings each so scheduler noise is damped.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    http_requests = registry.counter(
        "repro_http_requests_total", "", ("route", "method", "status")
    )
    http_seconds = registry.histogram(
        "repro_http_request_seconds", "", ("route",)
    )
    submitted = registry.counter("repro_jobs_submitted_total", "")
    terminal = registry.counter("repro_jobs_terminal_total", "", ("state",))
    attempt_seconds = registry.histogram(
        "repro_job_attempt_seconds", "", ("outcome",)
    )
    stage_seconds = registry.histogram(
        "repro_engine_stage_seconds", "", ("stage",)
    )

    def bare() -> None:
        _run(mmap_source, "numpy", chunk_rows=CHUNK_ROWS)

    def instrumented() -> None:
        profiling.set_enabled(True)
        profiling.reset()
        started = time.perf_counter()
        try:
            _run(mmap_source, "numpy", chunk_rows=CHUNK_ROWS)
        finally:
            elapsed = time.perf_counter() - started
            profile = profiling.snapshot()
            profiling.set_enabled(False)
        # The registry mutations one served job implies (submit, one status
        # poll, the result fetch, lifecycle counters, stage histograms).
        for route, method in (
            ("/v1/jobs", "POST"),
            ("/v1/jobs/{id}", "GET"),
            ("/v1/jobs/{id}/result", "GET"),
        ):
            http_requests.inc(route=route, method=method, status="200")
            http_seconds.observe(0.001, route=route)
        submitted.inc()
        terminal.inc(state="done")
        attempt_seconds.observe(elapsed, outcome="done")
        for stage, seconds in profile.items():
            stage_seconds.observe(seconds, stage=stage)

    def best_of(function) -> float:
        best = float("inf")
        for _ in range(BENCH_ROUNDS):
            started = time.perf_counter()
            function()
            best = min(best, time.perf_counter() - started)
        return best

    bare_seconds = best_of(bare)
    instrumented_seconds = best_of(instrumented)
    added = instrumented_seconds - bare_seconds
    allowed = bare_seconds * (TELEMETRY_OVERHEAD_CAP - 1.0) + TELEMETRY_EPSILON_SECONDS
    print(
        f"telemetry overhead: bare {bare_seconds:.3f}s, instrumented "
        f"{instrumented_seconds:.3f}s -> {100.0 * added / bare_seconds:+.2f}% "
        f"(cap {100.0 * (TELEMETRY_OVERHEAD_CAP - 1.0):.0f}% + "
        f"{1000.0 * TELEMETRY_EPSILON_SECONDS:.0f}ms noise floor "
        f"= {allowed:.3f}s allowed)"
    )
    if added > allowed:
        print(
            f"FAIL: telemetry adds {added:.3f}s to the benched run, "
            f"allowed {allowed:.3f}s"
        )
        return False
    return True


def _check_encode_publish(table) -> bool:
    """Parallel encode/publish vs the serial oracles: identical and >= 2x.

    The encode side compares every array of the key-derived
    :class:`GroupingContext` against the wide-scan reference; the publish
    side compares the lazily materialized cells of the columnar
    ``from_partition`` against the row-by-row reference.  Both are re-run
    with the chunked pool paths forced (``PARALLEL_THRESHOLD=1``,
    ``MIN_SORT_CHUNKS=4``) so chunk stitching is covered at this scale too.
    """
    from repro.core import kernels
    from repro.core.grouping import GroupingContext
    from repro.dataset.generalized import GeneralizedTable, Partition

    args = (
        table.qi_columns,
        table.sa_array,
        [attribute.size for attribute in table.schema.qi],
        table.schema.sensitive.size,
    )
    context_arrays = (
        "order",
        "group_keys",
        "group_run_bounds",
        "run_bounds",
        "run_values",
    )

    started = time.perf_counter()
    fast_context = GroupingContext.build(*args)
    encode_seconds = time.perf_counter() - started
    started = time.perf_counter()
    oracle_context = GroupingContext.build_reference(*args)
    encode_reference = time.perf_counter() - started
    for name in context_arrays:
        if getattr(fast_context, name).tolist() != getattr(oracle_context, name).tolist():
            print(f"FAIL: parallel encode diverges from the serial oracle ({name})")
            return False

    partition = Partition.by_qi(table)
    started = time.perf_counter()
    fast = GeneralizedTable.from_partition(table, partition)
    publish_seconds = time.perf_counter() - started
    started = time.perf_counter()
    oracle = GeneralizedTable.from_partition_reference(table, partition)
    publish_reference = time.perf_counter() - started
    if (
        fast.cell_rows != oracle.cell_rows
        or fast.sa_values != oracle.sa_values
        or fast.group_ids != oracle.group_ids
        or fast.star_count() != oracle.star_count()
    ):
        print("FAIL: parallel publish diverges from the serial oracle")
        return False

    saved_threshold = kernels.PARALLEL_THRESHOLD
    saved_chunks = kernels.MIN_SORT_CHUNKS
    kernels.PARALLEL_THRESHOLD = 1
    kernels.MIN_SORT_CHUNKS = 4
    try:
        chunked_context = GroupingContext.build(*args)
        chunked = GeneralizedTable.from_partition(table, partition)
    finally:
        kernels.PARALLEL_THRESHOLD = saved_threshold
        kernels.MIN_SORT_CHUNKS = saved_chunks
    for name in context_arrays:
        if (
            getattr(chunked_context, name).tolist()
            != getattr(oracle_context, name).tolist()
        ):
            print(f"FAIL: forced-chunk encode diverges ({name})")
            return False
    if chunked.cell_rows != oracle.cell_rows:
        print("FAIL: forced-chunk publish diverges from the serial oracle")
        return False

    fast_seconds = encode_seconds + publish_seconds
    reference_seconds = encode_reference + publish_reference
    ratio = reference_seconds / fast_seconds if fast_seconds else float("inf")
    print(
        f"encode+publish: fast {encode_seconds:.3f}s+{publish_seconds:.3f}s, "
        f"reference {encode_reference:.3f}s+{publish_reference:.3f}s "
        f"-> {ratio:.2f}x (outputs identical, chunked paths identical)"
    )
    if ratio < MIN_SPEEDUP:
        print(f"FAIL: encode+publish speedup below the {MIN_SPEEDUP:g}x floor")
        return False
    return True


def main() -> int:
    print(f"scale smoke: n={N}, l={L}, chunk_rows={CHUNK_ROWS}")
    table = make_sal(N, seed=SEED, config=CensusConfig.scaled(QI_SCALE))
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        ColumnStore.from_table(table).save(store_dir)
        mmap_source = ColumnStoreSource(str(store_dir))

        mmap_table = mmap_source.load()
        if mmap_table.fingerprint() != table.fingerprint():
            print("FAIL: mmap table fingerprint differs from in-memory table")
            return 1

        memory = _run(TableSource(table), "numpy")
        mapped = _run(mmap_source, "numpy", chunk_rows=CHUNK_ROWS)
        if _rendered(memory, Path(tmp) / "memory.csv") != _rendered(
            mapped, Path(tmp) / "mapped.csv"
        ):
            print("FAIL: mmap/chunked output differs from the in-memory run")
            return 1
        print(
            f"bit-identity OK: {memory.generalized.star_count()} stars, "
            f"{memory.generalized.suppressed_tuple_count()} suppressed"
        )

        reference = _run(mmap_source, "reference")
        if reference.generalized.star_count() != mapped.generalized.star_count():
            print("FAIL: reference backend output diverges")
            return 1
        numpy_seconds = mapped.timings.anonymize_seconds
        reference_seconds = reference.timings.anonymize_seconds
        speedup = reference_seconds / numpy_seconds if numpy_seconds else float("inf")
        print(
            f"anonymize: numpy {numpy_seconds:.3f}s, reference "
            f"{reference_seconds:.3f}s -> {speedup:.2f}x"
        )
        if speedup < MIN_SPEEDUP:
            print(f"FAIL: speedup below the {MIN_SPEEDUP:g}x floor")
            return 1

        if not _check_encode_publish(table):
            return 1
        if not _check_fused_metrics():
            return 1
        if not _check_warm_start(table, Path(tmp)):
            return 1
        if not _check_telemetry_overhead(mmap_source):
            return 1
    print("OK: scale smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
