"""CI smoke for the raw-speed path: mmap bit-identity + vectorized speedup.

Builds a 10^5-row synthetic table, persists it as an on-disk column store,
and checks the two acceptance properties of the zero-copy pipeline:

1. **Bit-identity** — the memory-mapped, chunk-capped engine run publishes
   exactly the same bytes as the unsharded in-memory run (table fingerprints
   and rendered CSV output compared verbatim).
2. **Speedup** — the vectorized backend beats the pure-Python reference
   backend by at least ``MIN_SPEEDUP``x end-to-end on the same store.

Run with ``PYTHONPATH=src python scripts/scale_smoke.py`` (wired into
``scripts/ci.sh``).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.engine import (
    ColumnStore,
    ColumnStoreSource,
    CsvSink,
    Engine,
    RunPlan,
    TableSource,
)
from repro.engine.cache import ResultCache
from repro.dataset.synthetic import CensusConfig, make_sal

N = 100_000
L = 6
SEED = 7
QI_SCALE = 0.24
CHUNK_ROWS = 20_000
MIN_SPEEDUP = 2.0


def _run(source, backend: str, chunk_rows: int | None = None):
    return Engine(cache=ResultCache()).run(
        RunPlan(
            source=source,
            algorithm="TP+",
            l=L,
            shards=1,
            backend=backend,
            chunk_rows=chunk_rows,
            use_cache=False,
        )
    )


def _rendered(report, path: Path) -> bytes:
    with CsvSink(str(path)) as sink:
        sink.write_table(report.generalized)
    return path.read_bytes()


def main() -> int:
    print(f"scale smoke: n={N}, l={L}, chunk_rows={CHUNK_ROWS}")
    table = make_sal(N, seed=SEED, config=CensusConfig.scaled(QI_SCALE))
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        ColumnStore.from_table(table).save(store_dir)
        mmap_source = ColumnStoreSource(str(store_dir))

        mmap_table = mmap_source.load()
        if mmap_table.fingerprint() != table.fingerprint():
            print("FAIL: mmap table fingerprint differs from in-memory table")
            return 1

        memory = _run(TableSource(table), "numpy")
        mapped = _run(mmap_source, "numpy", chunk_rows=CHUNK_ROWS)
        if _rendered(memory, Path(tmp) / "memory.csv") != _rendered(
            mapped, Path(tmp) / "mapped.csv"
        ):
            print("FAIL: mmap/chunked output differs from the in-memory run")
            return 1
        print(
            f"bit-identity OK: {memory.generalized.star_count()} stars, "
            f"{memory.generalized.suppressed_tuple_count()} suppressed"
        )

        reference = _run(mmap_source, "reference")
        if reference.generalized.star_count() != mapped.generalized.star_count():
            print("FAIL: reference backend output diverges")
            return 1
        numpy_seconds = mapped.timings.anonymize_seconds
        reference_seconds = reference.timings.anonymize_seconds
        speedup = reference_seconds / numpy_seconds if numpy_seconds else float("inf")
        print(
            f"anonymize: numpy {numpy_seconds:.3f}s, reference "
            f"{reference_seconds:.3f}s -> {speedup:.2f}x"
        )
        if speedup < MIN_SPEEDUP:
            print(f"FAIL: speedup below the {MIN_SPEEDUP:g}x floor")
            return 1
    print("OK: scale smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
