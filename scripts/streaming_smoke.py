"""CI smoke check for the streaming pipeline and the persistent run store.

Part 1 — streaming: writes a 50k-row synthetic census CSV, anonymizes it
through the bounded-memory CSV-to-CSV pipeline (``--stream``) with a capped
chunk size, and independently re-verifies the published file:

1. the output CSV holds exactly ``n`` rows;
2. the streaming verifier (which groups the *published file* by generalized
   QI vector) confirms the output l-diverse;
3. the sensitive column survives unchanged as a multiset.

Part 2 — run store: runs ``ldiversity anonymize`` on the same input twice
in **separate subprocesses** sharing one workspace, and asserts the second
process is served from the persistent store instead of recomputing.

Exit code 0 on success, 1 on any violation::

    PYTHONPATH=src python scripts/streaming_smoke.py
"""

from __future__ import annotations

import csv
import os
import subprocess
import sys
import tempfile
from collections import Counter
from pathlib import Path

from repro.cli import main as cli_main
from repro.dataset.synthetic import CensusConfig, make_sal
from repro.service import verify_csv_l_diverse

N = 50_000
L = 4
CHUNK_ROWS = 8_000
SHARDS = 4
QI = ("Age", "Gender", "Race")
SA = "Income"


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        source_path = str(Path(tmp) / "census.csv")
        output_path = str(Path(tmp) / "published.csv")
        workspace = str(Path(tmp) / "workspace")

        table = make_sal(N, seed=7, config=CensusConfig.scaled(0.30)).project(QI)
        table.to_csv(source_path)
        print(f"streaming smoke: n={N}, l={L}, shards={SHARDS}, chunk_rows={CHUNK_ROWS}")

        code = cli_main(
            [
                "anonymize",
                "--input", source_path,
                "--qi", ",".join(QI),
                "--sa", SA,
                "--l", str(L),
                "--algorithm", "TP",
                "--shards", str(SHARDS),
                "--chunk-rows", str(CHUNK_ROWS),
                "--stream",
                "--output", output_path,
            ]
        )
        if code != 0:
            fail(f"streaming anonymize exited with {code}")

        with open(output_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        if len(rows) != N:
            fail(f"published file has {len(rows)} rows, expected {N}")
        if not verify_csv_l_diverse(output_path, QI, SA, L):
            fail(f"published file is not {L}-diverse")
        published_sa = Counter(row[SA] for row in rows)
        source_sa = Counter(str(record[SA]) for record in table.decoded_records())
        if published_sa != source_sa:
            fail("sensitive column multiset changed during streaming")
        print(f"OK: streamed output is {L}-diverse, {len(rows)} rows, SA preserved")

        # ---- part 2: cross-process reuse through the persistent run store
        command = [
            sys.executable, "-m", "repro.cli",
            "anonymize",
            "--input", source_path,
            "--qi", ",".join(QI),
            "--sa", SA,
            "--l", str(L),
            "--algorithm", "TP",
            "--shards", "1",
            "--workspace", workspace,
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        first = subprocess.run(command, capture_output=True, text=True, env=env)
        second = subprocess.run(command, capture_output=True, text=True, env=env)
        for name, completed in (("first", first), ("second", second)):
            if completed.returncode != 0:
                fail(f"{name} store-reuse run failed: {completed.stderr}")
        if "persistent run store" in first.stdout:
            fail("first run claims a store hit; store should have been empty")
        if "persistent run store" not in second.stdout:
            fail("second (fresh-process) run was not served from the run store")
        print("OK: fresh-process rerun served from the persistent run store")


if __name__ == "__main__":
    main()
