"""CI chaos smoke: the serving stack under injected crashes and a hard restart.

Boots ``ldiversity serve`` with a fixed-seed :class:`repro.server.faults.FaultPlan`
exported through ``REPRO_FAULTS`` (workers killed every Nth job, a poison
seed that dies on every attempt, delayed seeds that trip the per-job
timeout), then proves the at-least-once contract end to end:

1. **worker-death recovery** — ~100 jobs stream in from 4 client threads
   while the fault plan keeps killing pool worker processes; the pool must
   rebuild itself (``pool_restarts``) and retry the dead attempts
   (``retries``) with every job still reaching ``done``;
2. **SIGKILL restart replay** — once recovery is observably underway, the
   whole server process group is SIGKILL'd (no shutdown hooks, like an OOM
   kill) and a fresh server boots on the same port and workspace; it must
   compact the ledger, re-enqueue every non-terminal job (``replayed``), and
   the client threads — who only see a connection outage — must still
   complete every job;
3. **quarantine** — a poison job (seed on the plan's kill list, so every
   attempt dies) must land terminally ``failed`` with ``quarantined: true``
   after exactly ``--max-attempts`` attempts, not crash-loop the pool;
4. **timeout-then-succeed** — a delayed job wedges past ``--job-timeout``;
   the attempt is killed (``timeouts``), the clean retry completes;
5. **no job left behind** — at the end, every ledger record is terminal
   (nothing stuck ``queued``/``running``/``retrying``) and each distinct
   ``done`` workload re-verifies against its PrivacySpec from the run store;
6. **telemetry** — ``GET /v1/telemetry`` is scraped before and after the
   fault phases: the retry/quarantine/timeout counters must have moved, the
   final exposition must agree with ``/v1/health`` number for number, and
   the timed-out job's trace must hold every expected span (both attempts,
   the engine stages of the clean retry, publish);
7. **clean shutdown** — the second server exits 0 on SIGTERM.

Exit code 0 on success, 1 on any violation::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path

from repro.client import Client, ClientError, JobFailedError
from repro.obs.metrics import parse_prometheus_text
from repro.privacy.spec import privacy_from_dict
from repro.server.faults import FaultPlan

WORKERS = 2
QUEUE_CAP = 32
MAX_ATTEMPTS = 5
JOB_TIMEOUT = 2.5
RETRY_BACKOFF = 0.1
KILL_EVERY = 15
POISON_SEED = 666
DELAY_SEEDS = (777, 778, 779)
PLAN_SEED = 20260807


def fail(message: str, log_paths: list[Path] | None = None) -> None:
    print(f"FAIL: {message}")
    for path in log_paths or []:
        if path.exists():
            tail = path.read_text().splitlines()[-25:]
            print(f"--- {path.name} (tail) ---")
            print("\n".join(tail))
    sys.exit(1)


def rows_satisfy_spec(rows: list[list[str]], qi_width: int, spec) -> bool:
    """Independent re-check of a returned table (last column = SA)."""
    histograms: dict[tuple, Counter] = {}
    total: Counter = Counter()
    for row in rows:
        histograms.setdefault(tuple(row[:qi_width]), Counter())[row[qi_width]] += 1
        total[row[qi_width]] += 1
    if not histograms:
        return False
    return all(spec.check(histogram, total) for histogram in histograms.values())


def pick_port() -> int:
    """Reserve an ephemeral port both server instances will bind in turn."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def workload_set() -> list[dict]:
    """Distinct synthetic submissions (seeds disjoint from the fault seeds)."""
    workloads = []
    for index, (l, n, algorithm) in enumerate(
        [
            (2, 200, "TP"), (2, 250, "TP+"), (3, 300, "TP"), (3, 240, "TP+"),
            (4, 400, "TP"), (4, 320, "Hilbert"), (2, 280, "Mondrian"),
            (3, 360, "TP+"), (5, 380, "TP"), (2, 220, "TP+"),
            (4, 260, "TP"), (3, 340, "Hilbert"),
        ]
    ):
        workloads.append(
            {
                "source": {"kind": "synthetic", "dataset": "SAL", "n": n,
                           "seed": index + 1, "dimension": 3},
                "l": l,
                "algorithm": algorithm,
                "seed": index + 1,
            }
        )
    return workloads


class ChaosWorker(threading.Thread):
    """One synthetic user who keeps working straight through the chaos."""

    def __init__(self, index: int, base_url: str, jobs: int, workloads: list[dict]):
        super().__init__(daemon=True)
        self.index = index
        # Generous budgets: submissions and polls must survive the dead
        # window between SIGKILL and the replacement server's bind.
        self.client = Client(
            base_url,
            client_id=f"chaos-{index}",
            retries=60,
            backoff_seconds=0.05,
            max_backoff_seconds=0.5,
            timeout=60.0,
            jitter_seed=index,
        )
        self.jobs = jobs
        self.workloads = workloads
        self.completed = 0
        self.retried_jobs = 0
        self.errors: list[str] = []

    def _verify(self, job_id: str, workload: dict) -> bool:
        try:
            result = self.client.result(job_id)
        except ClientError as error:
            if error.status == 404:
                # Done before the restart: the result is no longer resident in
                # server memory.  Resubmitting the identical workload answers
                # from the persistent run store.
                replacement = self.client.submit(**workload)
                self.client.wait(replacement, timeout=120.0)
                result = self.client.result(replacement)
            else:
                raise
        spec = privacy_from_dict(result["privacy"])
        qi_width = len(result["header"]) - 1
        if not rows_satisfy_spec(result["rows"], qi_width, spec):
            self.errors.append(f"{job_id}: output violates {spec.describe()}")
            return False
        return True

    def run(self) -> None:
        for round_number in range(self.jobs):
            workload = self.workloads[(self.index + round_number) % len(self.workloads)]
            try:
                job_id = self.client.submit(**workload)
                record = self.client.wait(job_id, timeout=180.0)
                if int(record.get("attempts", 1)) > 1:
                    self.retried_jobs += 1
                if not self._verify(job_id, workload):
                    return
            except JobFailedError as error:
                # A job can only fail here by exhausting its attempt budget
                # on *collateral* crashes (each injected kill breaks the
                # whole process pool, taking the other in-flight job with
                # it).  Needing MAX_ATTEMPTS collateral hits on one job is
                # pathological, so it is an error, not tolerated noise.
                self.errors.append(f"collateral failure: {error}")
                return
            except Exception as error:  # noqa: BLE001 - collected, reported below
                self.errors.append(f"{type(error).__name__}: {error}")
                return
            self.completed += 1


def boot_server(port: int, workspace: str, env: dict, log_path: Path) -> subprocess.Popen:
    """Launch ``ldiversity serve`` in its own session (killpg reaches workers)."""
    log = open(log_path, "ab")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port),
            "--workers", str(WORKERS),
            "--queue-cap", str(QUEUE_CAP),
            "--workspace", workspace,
            "--job-timeout", str(JOB_TIMEOUT),
            "--max-attempts", str(MAX_ATTEMPTS),
            "--retry-backoff", str(RETRY_BACKOFF),
        ],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
        start_new_session=True,
    )


def metric(samples: dict, name: str, **labels) -> float:
    """Value of one exposition sample (0.0 when the series never appeared)."""
    return samples.get((name, tuple(sorted(labels.items()))), 0.0)


def check_trace_of_timed_out_job(probe: Client, record: dict) -> None:
    """The retried job's span tree must narrate the whole episode."""
    job_id = record["id"]
    attempts = int(record["attempts"])
    trace = probe.trace(job_id)
    if trace["request_id"] != record["request_id"]:
        fail(
            f"trace of {job_id} carries request id {trace['request_id']!r}, "
            f"ledger says {record['request_id']!r}"
        )
    spans = {span["name"]: span for span in trace["spans"]}
    final_attempt = f"attempt-{attempts}"
    for name in ("submit", "queue-wait", "attempt-1", final_attempt, "publish"):
        if name not in spans:
            fail(f"trace of timed-out job {job_id} is missing span {name!r}")
    if spans["attempt-1"]["attributes"]["outcome"] != "retry":
        fail(f"attempt-1 of {job_id} did not record the retry outcome")
    if spans[final_attempt]["attributes"]["outcome"] != "done":
        fail(f"{final_attempt} of {job_id} did not record the done outcome")
    engine_spans = [
        span for span in trace["spans"] if span["name"].startswith("engine:")
    ]
    if not engine_spans:
        fail(f"trace of {job_id} carries no engine stage spans")
    if any(span["parent"] != final_attempt for span in engine_spans):
        fail(f"engine spans of {job_id} are not parented to {final_attempt}")
    print(
        f"trace: {job_id} narrates timeout -> retry -> done in "
        f"{len(trace['spans'])} spans (request {trace['request_id'][:8]}…)"
    )


def check_telemetry_agrees_with_health(probe: Client) -> None:
    """Acceptance: the exposition and /v1/health report the same numbers."""
    samples = parse_prometheus_text(probe.telemetry_text())
    health = probe.health()
    checks = [
        ("jobs.submitted", health["jobs"]["submitted"],
         metric(samples, "repro_jobs_submitted_total")),
        ("jobs.done", health["jobs"]["done"],
         metric(samples, "repro_jobs_terminal_total", state="done")),
        ("jobs.failed", health["jobs"]["failed"],
         metric(samples, "repro_jobs_terminal_total", state="failed")),
        ("jobs.replayed", health["jobs"]["replayed"],
         metric(samples, "repro_jobs_replayed_total")),
        ("pool.retries", health["pool"]["retries"],
         metric(samples, "repro_pool_retries_total")),
        ("pool.quarantined", health["pool"]["quarantined"],
         metric(samples, "repro_pool_quarantined_total")),
        ("pool.timeouts", health["pool"]["timeouts"],
         metric(samples, "repro_pool_timeouts_total")),
        ("pool.pool_restarts", health["pool"]["pool_restarts"],
         metric(samples, "repro_pool_restarts_total")),
        ("callback_errors", health["callback_errors"],
         metric(samples, "repro_pool_callback_errors_total")),
    ]
    for label, from_health, from_telemetry in checks:
        if from_health != from_telemetry:
            fail(
                f"health {label}={from_health} disagrees with the telemetry "
                f"exposition ({from_telemetry})"
            )
    print(
        "telemetry: exposition agrees with /v1/health on "
        f"{len(checks)} counters"
    )


def wait_for_condition(probe: Client, predicate, deadline_seconds: float, what: str):
    """Poll health until ``predicate(health)`` holds; returns the health dict."""
    deadline = time.monotonic() + deadline_seconds
    while True:
        try:
            health = probe.health()
            if predicate(health):
                return health
        except ClientError:
            pass
        if time.monotonic() >= deadline:
            fail(f"timed out waiting for {what}")
        time.sleep(0.25)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=96, help="total streamed jobs")
    arguments = parser.parse_args()

    workspace = tempfile.mkdtemp(prefix="chaos-smoke-ws-")
    scratch = Path(workspace) / "fault-tokens"
    scratch.mkdir(parents=True, exist_ok=True)
    plan = FaultPlan(
        kill_every=KILL_EVERY,
        kill_seeds=(POISON_SEED,),
        delay_seconds=JOB_TIMEOUT + 1.5,
        delay_seeds=DELAY_SEEDS,
        delay_once=True,
        scratch_dir=str(scratch),
        seed=PLAN_SEED,
    )
    env = dict(os.environ, REPRO_FAULTS=plan.to_env())
    port = pick_port()
    base_url = f"http://127.0.0.1:{port}"
    logs = [Path(workspace) / "server-1.log", Path(workspace) / "server-2.log"]
    started = time.perf_counter()
    process: subprocess.Popen | None = boot_server(port, workspace, env, logs[0])
    counters_before_kill: dict = {}
    try:
        probe = Client(base_url, client_id="probe", retries=0, timeout=10.0)
        probe.wait_until_ready(timeout=30.0)
        print(f"server 1 ready at {base_url} (fault plan: {plan.to_env()})")

        per_client = arguments.jobs // arguments.clients
        workers = [
            ChaosWorker(index, base_url, per_client, workload_set())
            for index in range(arguments.clients)
        ]
        for worker in workers:
            worker.start()

        # Let recovery become observable before pulling the plug: at least
        # one worker kill has been healed and a batch of jobs is done.
        kill_floor = max(10, arguments.jobs // 4)
        health = wait_for_condition(
            probe,
            lambda h: h["pool"]["pool_restarts"] >= 1 and h["jobs"]["done"] >= kill_floor,
            deadline_seconds=180.0,
            what=f"{kill_floor} done jobs and a healed worker kill",
        )
        counters_before_kill = dict(health["pool"])
        print(
            f"pre-kill: {health['jobs']['done']} done, pool counters "
            f"{counters_before_kill}"
        )

        os.killpg(process.pid, signal.SIGKILL)  # the whole group: server + workers
        process.wait(timeout=30)
        process = None
        print("server 1 SIGKILL'd mid-stream; booting replacement on the same port")

        process = boot_server(port, workspace, env, logs[1])
        probe.wait_until_ready(timeout=30.0)
        health = probe.health()
        if health["jobs"]["replayed"] < 1:
            fail("restarted server replayed no ledger jobs", logs)
        print(
            f"server 2 ready: replayed {health['jobs']['replayed']} jobs, "
            f"compaction reclaimed {health['jobs']['compaction_reclaimed']} lines"
        )

        for worker in workers:
            worker.join(timeout=420)
            if worker.is_alive():
                fail(f"client {worker.index} did not finish", logs)
        errors = [error for worker in workers for error in worker.errors]
        if errors:
            fail("; ".join(errors[:5]), logs)
        completed = sum(worker.completed for worker in workers)
        retried_jobs = sum(worker.retried_jobs for worker in workers)
        if completed != per_client * arguments.clients:
            fail(f"only {completed} of {per_client * arguments.clients} jobs completed")
        print(
            f"stream: {completed} jobs completed across the restart "
            f"({retried_jobs} visibly retried) in "
            f"{time.perf_counter() - started:.1f}s"
        )

        # Telemetry baseline for the fault phases below (server 2's registry
        # was born at the restart, so the stream already seeded it).
        telemetry_before = parse_prometheus_text(probe.telemetry_text())

        # Quarantine: the poison seed dies on every attempt, so the job must
        # fail terminally after exactly MAX_ATTEMPTS attempts.
        poison_client = Client(
            base_url, client_id="poison", retries=30, backoff_seconds=0.05
        )
        poison_id = poison_client.submit(
            l=2,
            algorithm="TP",
            seed=POISON_SEED,
            source={"kind": "synthetic", "dataset": "SAL", "n": 200,
                    "seed": POISON_SEED, "dimension": 3},
        )
        try:
            poison_client.wait(poison_id, timeout=120.0)
            fail(f"poison job {poison_id} completed; it should be quarantined")
        except JobFailedError as outcome:
            record = outcome.record
            if not record.get("quarantined"):
                fail(f"poison job failed without quarantine: {record.get('error')}")
            if int(record.get("attempts", 0)) != MAX_ATTEMPTS:
                fail(
                    f"poison job used {record.get('attempts')} attempts, "
                    f"expected {MAX_ATTEMPTS}"
                )
        print(
            f"quarantine: {poison_id} failed terminally after {MAX_ATTEMPTS} "
            "attempts (quarantined: true)"
        )

        # Timeout-then-succeed: submitted in a quiet pool so the wedged
        # attempt cannot be collateral-killed before the timeout fires.  The
        # backup seeds cover the (rare) kill_every collision on the first.
        for delay_seed in DELAY_SEEDS:
            record = poison_client.wait(
                poison_client.submit(
                    l=2,
                    algorithm="TP",
                    seed=delay_seed,
                    source={"kind": "synthetic", "dataset": "SAL", "n": 200,
                            "seed": delay_seed, "dimension": 3},
                ),
                timeout=120.0,
            )
            if record["status"] != "done" or int(record["attempts"]) < 2:
                fail(f"delayed job {record['id']} did not retry to done: {record}")
            if probe.health()["pool"]["timeouts"] >= 1:
                break
        else:
            fail("no delayed job ever tripped the per-job timeout", logs)
        print(f"timeout: {record['id']} timed out, retried, completed "
              f"(attempts={record['attempts']})")

        # The fault phases must be visible in the exposition deltas.
        telemetry_after = parse_prometheus_text(probe.telemetry_text())
        for name in (
            "repro_pool_retries_total",
            "repro_pool_quarantined_total",
            "repro_pool_timeouts_total",
        ):
            delta = metric(telemetry_after, name) - metric(telemetry_before, name)
            if delta < 1:
                fail(f"telemetry counter {name} never moved across the fault phases")

        check_trace_of_timed_out_job(poison_client, record)

        # No job left behind: every ledger record terminal.
        deadline = time.monotonic() + 60.0
        while True:
            stuck = [
                (record["id"], record["status"])
                for record in poison_client.jobs()
                if record["status"] not in ("done", "failed", "cancelled")
            ]
            if not stuck:
                break
            if time.monotonic() >= deadline:
                fail(f"jobs stuck non-terminal after the chaos: {stuck}", logs)
            time.sleep(0.25)
        ledger_records = poison_client.jobs()
        done_count = sum(1 for r in ledger_records if r["status"] == "done")
        print(
            f"sweep: {len(ledger_records)} ledger jobs all terminal "
            f"({done_count} done)"
        )

        # Spec verification: one result per distinct workload, re-answered
        # from the run store and independently re-checked.
        verifier = ChaosWorker(0, base_url, 0, [])
        verifier.client = poison_client
        for workload in workload_set():
            job_id = poison_client.submit(**workload)
            poison_client.wait(job_id, timeout=120.0)
            if not verifier._verify(job_id, workload):
                fail("; ".join(verifier.errors), logs)
        print(f"verify: {len(workload_set())} distinct workloads re-checked "
              "against their PrivacySpec")

        final = probe.health()["pool"]
        combined = {
            key: counters_before_kill.get(key, 0) + final.get(key, 0)
            for key in ("retries", "pool_restarts", "timeouts", "quarantined")
        }
        for key, floor in (
            ("retries", 1), ("pool_restarts", 1), ("timeouts", 1), ("quarantined", 1)
        ):
            if combined[key] < floor:
                fail(f"recovery counter {key} never moved: {combined}", logs)
        print(f"health counters across both servers: {combined}")

        check_telemetry_agrees_with_health(probe)

        process.send_signal(signal.SIGTERM)
        process.wait(timeout=60)
        if process.returncode != 0:
            fail(f"server 2 exited {process.returncode} on SIGTERM", logs)
        process = None
        print(f"OK: chaos smoke passed in {time.perf_counter() - started:.1f}s")
    finally:
        if process is not None:
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            process.wait(timeout=10)


if __name__ == "__main__":
    main()
