"""CI smoke check for the PrivacySpec refactor.

Three guarantees, each cheap enough for every CI run:

1. **Bit-identity of the default path** — the frequency-l pipeline must
   produce byte-for-byte the same published CSV as the pre-refactor code at
   a fixed seed.  The expected SHA-256 digests below were captured from the
   seed code *before* the `PrivacySpec` refactor landed; both the unsharded
   and the 4-shard engine paths are pinned, and the explicit
   ``FrequencyLDiversity`` spec must match the bare ``l=`` sugar exactly.

2. **Spec-targeted anonymization** — the synthetic dataset is anonymized
   under ``entropy-l`` and ``recursive-cl`` (in-memory and streaming) and
   each output is verified with the *matching independent checker* from
   :mod:`repro.privacy.principles` — not the spec's own ``check`` — so the
   enforcement pass is audited by code that knows nothing about it.

3. **Cache-key separation** — a frequency-l run followed by an entropy-l
   run of the same workload must never share a cache entry (the PR's
   regression-style key bugfix).

Exit code 0 on success, 1 on any violation::

    PYTHONPATH=src python scripts/privacy_smoke.py
"""

from __future__ import annotations

import hashlib
import sys
import tempfile
from pathlib import Path

from repro.engine import CsvSink, CsvSource, Engine, ResultCache, RunPlan, SyntheticSource
from repro.privacy.principles import (
    satisfies_entropy_l_diversity,
    satisfies_recursive_cl_diversity,
)
from repro.privacy.spec import (
    EntropyLDiversity,
    FrequencyLDiversity,
    RecursiveCLDiversity,
)
from repro.service import stream_anonymize, verify_csv_satisfies

#: The fixed workload every check runs against.
N, SEED, DIMENSION = 2_500, 7, 3

#: SHA-256 of the published CSV produced by the pre-refactor seed code.
GOLDEN_UNSHARDED_TPP_L2 = (
    "7a7435c055c228117ad6c6751b61215a11c0d73a14ed5210c0c9c85c729eeb67"
)
GOLDEN_SHARDED4_TP_L3 = (
    "f47ec48c6beced47e870e3244ce3c13c7d2f879603101152ba7d235c7f5184ad"
)


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def _source() -> SyntheticSource:
    return SyntheticSource("SAL", n=N, seed=SEED, dimension=DIMENSION)


def _run(tmp: Path, name: str, **plan_fields):
    engine = Engine(cache=ResultCache())
    report = engine.run(RunPlan(source=_source(), **plan_fields))
    path = tmp / f"{name}.csv"
    with CsvSink(str(path)) as sink:
        sink.write_table(report.generalized)
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    return report, digest, path


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="privacy-smoke-"))

    # 1. bit-identity of the default frequency path, unsharded + sharded
    _report, digest, _path = _run(tmp, "unsharded", algorithm="TP+", l=2, shards=1)
    if digest != GOLDEN_UNSHARDED_TPP_L2:
        fail(
            "unsharded TP+ l=2 output drifted from the pre-refactor seed "
            f"(got {digest})"
        )
    _report, sharded_digest, _path = _run(
        tmp, "sharded", algorithm="TP", l=3, shards=4, workers=1
    )
    if sharded_digest != GOLDEN_SHARDED4_TP_L3:
        fail(
            "4-shard TP l=3 output drifted from the pre-refactor seed "
            f"(got {sharded_digest})"
        )
    _report, explicit_digest, _path = _run(
        tmp, "explicit", algorithm="TP+", privacy=FrequencyLDiversity(2), shards=1
    )
    if explicit_digest != GOLDEN_UNSHARDED_TPP_L2:
        fail("explicit FrequencyLDiversity(2) differs from the bare l=2 sugar")
    print(f"bit-identity: default path matches the pre-refactor seed ({digest[:12]}…)")

    # 2. spec-targeted runs, each audited by the matching principles checker
    entropy = EntropyLDiversity(2.0)
    report, _digest, entropy_csv = _run(
        tmp, "entropy", algorithm="TP+", privacy=entropy
    )
    if not report.verified or not satisfies_entropy_l_diversity(
        report.generalized, entropy.l
    ):
        fail("entropy-l engine output failed satisfies_entropy_l_diversity")

    recursive = RecursiveCLDiversity(0.5, 2)  # c <= 1: forces the repair pass
    report, _digest, _path = _run(
        tmp, "recursive", algorithm="TP", privacy=recursive
    )
    if not satisfies_recursive_cl_diversity(report.generalized, recursive.c, recursive.l):
        fail("recursive-cl engine output failed satisfies_recursive_cl_diversity")
    if report.enforcement_merges == 0:
        fail("recursive-cl at c=0.5 should have exercised the enforcement pass")
    print(
        f"specs: entropy-l and recursive-cl verified by the principles checkers "
        f"({report.enforcement_merges} repair merges on recursive-cl)"
    )

    # ... and through the streaming CSV->CSV pipeline
    input_csv = tmp / "input.csv"
    table = _source().load()
    qi = table.schema.qi_names
    sa = table.schema.sensitive.name
    table.to_csv(str(input_csv))
    streamed_csv = tmp / "streamed-entropy.csv"
    stream_report = stream_anonymize(
        CsvSource(str(input_csv), qi, sa),
        streamed_csv,
        algorithm="TP",
        privacy=entropy,
        shards=2,
        chunk_rows=500,
    )
    if not verify_csv_satisfies(streamed_csv, qi, sa, entropy):
        fail("streamed entropy-l output failed verify_csv_satisfies")
    if not verify_csv_satisfies(entropy_csv, qi, sa, entropy):
        fail("in-memory entropy-l CSV failed verify_csv_satisfies")
    print(
        f"streaming: {stream_report.n} rows through "
        f"{len(stream_report.shard_sizes)} shard(s) under {stream_report.privacy}, "
        "re-verified from the published file"
    )

    # 3. cache-key separation between specs sharing an l
    engine = Engine(cache=ResultCache())
    engine.run(RunPlan(source=_source(), algorithm="TP", l=2))
    entropy_report = engine.run(
        RunPlan(source=_source(), algorithm="TP", privacy=EntropyLDiversity(2.0))
    )
    if entropy_report.cache_hit:
        fail("entropy-l run replayed the frequency-l cache entry (key collision)")
    replay = engine.run(RunPlan(source=_source(), algorithm="TP", l=2))
    if not replay.cache_hit:
        fail("frequency-l rerun missed its own cache entry")
    print("cache: specs with equal l never share an entry")

    print("OK: privacy smoke passed")


if __name__ == "__main__":
    main()
