#!/usr/bin/env bash
# CI entry point: tier-1 test suite plus a fast performance smoke check.
#
#   scripts/ci.sh
#
# The perf check re-times the figure-6 benchmark on the NumPy backend only
# (well under a minute) and fails when it has regressed more than 2x against
# the committed BENCH_fig6.json baseline.  Regenerate the baseline after an
# intentional performance change with:
#
#   PYTHONPATH=src python scripts/bench_baseline.py --output BENCH_fig6.json
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== perf smoke: bench_fig6 vs committed baseline =="
python scripts/bench_baseline.py --check BENCH_fig6.json --repeats 3 --tolerance 2.0
