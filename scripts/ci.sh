#!/usr/bin/env bash
# CI entry point: lint gate, tier-1 test suite, sharded-engine smoke,
# streaming smoke, server load smoke, chaos smoke and a fast performance
# smoke check.
#
#   scripts/ci.sh
#
# The sharded-engine smoke (scripts/shard_smoke.py) checks that a 4-shard
# engine run is bit-identical to the unsharded run on a fixed seed and stays
# within the documented suppression merge bound.
#
# The streaming smoke (scripts/streaming_smoke.py) anonymizes a 50k-row
# synthetic CSV through the bounded-memory CSV->CSV pipeline under a capped
# chunk size, verifies the published file l-diverse with an independent
# streaming checker, and proves a fresh-process rerun is served from the
# persistent run store.
#
# The privacy smoke (scripts/privacy_smoke.py) anonymizes the synthetic
# dataset under entropy-l and recursive-cl (in-memory and streaming),
# verifies each output with the matching repro.privacy.principles checker,
# proves the default FrequencyLDiversity path is bit-identical to the
# pre-refactor seed output at the fixed seed (pinned SHA-256 digests), and
# asserts cache-key separation between specs sharing an l.
#
# The server smoke (scripts/load_smoke.py) boots `ldiversity serve` in a
# subprocess and hammers it with 8 concurrent clients (200 jobs): every
# returned table must be independently l-diverse, repeated submissions must
# be served from the persistent run store, a slice of jobs submitted under
# non-default privacy specs must verify with the matching checkers, a burst
# past the queue cap must produce 429 + Retry-After, and the server must
# exit 0 on SIGTERM.
#
# The chaos smoke (scripts/chaos_smoke.py) boots the server under a
# fixed-seed fault plan (workers killed every Nth job, a poison seed, delays
# that trip the per-job timeout), streams ~100 jobs through it, SIGKILLs the
# whole server process group mid-stream and restarts it on the same port and
# workspace.  Every job must reach a terminal state (replayed jobs included),
# the poison job must be quarantined, every done output must re-verify
# against its PrivacySpec, and all four recovery counters (retries,
# pool_restarts, timeouts, quarantined) must have moved.  The fault schedule
# is deterministic, so the run is bounded (~10-30s).
#
# The scale smoke (scripts/scale_smoke.py) runs a 10^5-row synthetic table
# through the memory-mapped column-store engine path under capped chunks and
# asserts (a) bit-identical published output vs the unsharded in-memory run,
# (b) a >= 2x end-to-end anonymize speedup of the vectorized backend over
# the pure-Python reference backend, (c) the fused one-pass metrics sweep
# emits values identical to the historical standalone passes at >= 1.5x
# their summed cost, and (d) a repeat run against the same column store
# warm-starts from the persisted order.npy sort permutation (no sort stage
# in its profile).
#
# The perf check re-times the figure-6 benchmark on the NumPy backend only
# (well under a minute) and fails when it has regressed more than 2x against
# the committed BENCH_fig6.json baseline.  Regenerate the baseline after an
# intentional performance change with:
#
#   PYTHONPATH=src python scripts/bench_baseline.py --output BENCH_fig6.json
#
# Regenerate the large-n trajectory (BENCH_scale.json, also consumed by the
# execution planner's cost model) with:
#
#   PYTHONPATH=src python scripts/bench_scale.py --output BENCH_scale.json
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== lint: ruff check =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check src tests scripts
else
    echo "ruff not installed; skipping lint gate"
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== sharded-engine smoke: 4 shards bit-identical to unsharded =="
python scripts/shard_smoke.py

echo "== streaming smoke: 50k-row CSV->CSV under capped chunk size =="
python scripts/streaming_smoke.py

echo "== privacy smoke: spec runs + pre-refactor bit-identity =="
python scripts/privacy_smoke.py

echo "== server smoke: 200 jobs / 8 clients against ldiversity serve =="
python scripts/load_smoke.py --clients 8 --jobs 200

echo "== chaos smoke: injected crashes + SIGKILL restart =="
python scripts/chaos_smoke.py

echo "== scale smoke: mmap bit-identity + vectorized speedup at 10^5 rows =="
python scripts/scale_smoke.py

echo "== perf smoke: bench_fig6 vs committed baseline =="
python scripts/bench_baseline.py --check BENCH_fig6.json --repeats 3 --tolerance 2.0
