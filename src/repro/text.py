"""Tiny text-rendering helpers shared by the CLI and the experiment reports."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_fixed_width"]


def format_fixed_width(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render string cells as an aligned table with a dash separator row."""
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows)) if rows else len(headers[column])
        for column in range(len(headers))
    ]
    lines = ["  ".join(header.ljust(width) for header, width in zip(headers, widths))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
