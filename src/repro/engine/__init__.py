"""Pluggable anonymization engine.

The engine layer sits between the algorithm/metric implementations and their
consumers (CLI, experiment harness, scripts) and consists of:

* :mod:`repro.engine.registry` — decorator-based algorithm and metric
  registries with capability metadata; the single source of truth for what
  can run (``repro.engine.algorithms`` / ``repro.engine.metrics`` register
  the built-ins at import time);
* :mod:`repro.engine.sources` — dataset adapters unifying CSV files,
  synthetic generators and in-memory columnar tables behind one loader with
  schema inference and chunked reads;
* :mod:`repro.engine.columnstore` — zero-copy columnar storage: encoded
  tables persisted as memory-mappable ``.npy`` column buffers
  (:class:`ColumnStore`) plus a :class:`ColumnStoreSource` adapter, the
  physical layout behind ``--mmap`` runs and the scale benchmarks;
* :mod:`repro.engine.sharding` — QI-prefix sharding and shard-output
  merging for out-of-core / large-``n`` runs;
* :mod:`repro.engine.sinks` — incremental CSV export of published tables
  (:class:`CsvSink`), shared by the CLI and the streaming pipeline;
* :mod:`repro.engine.cache` — per-run result caching keyed by
  ``(fingerprint, algorithm, l, shards, backend, seed, privacy)``, optionally
  read-through over the persistent :class:`~repro.service.store.RunStore`;
* :mod:`repro.engine.core` — the :class:`Engine` executor tying it together;
  plan dimensions left unset are resolved by the cost-based
  :class:`~repro.service.planner.ExecutionPlanner`, and every plan targets a
  :class:`~repro.privacy.spec.PrivacySpec` (``l=`` stays sugar for frequency
  l-diversity).

Quickstart::

    from repro.engine import Engine, RunPlan, SyntheticSource

    report = Engine().run(
        RunPlan(
            source=SyntheticSource("SAL", n=10_000, dimension=4),
            algorithm="TP+", l=4, shards=4, metrics=("stars", "kl"),
        )
    )
    assert report.verified
"""

from repro.engine.cache import CachedRun, ResultCache, default_cache
from repro.engine.columnstore import ColumnStore, ColumnStoreSource
from repro.engine.core import Engine, RunPlan, RunReport, StageTimings, run_with_spec
from repro.engine.registry import (
    AlgorithmInfo,
    AlgorithmOutput,
    AlgorithmRegistry,
    Anonymizer,
    MetricInfo,
    MetricRegistry,
    algorithm_registry,
    metric_registry,
)
from repro.engine.sinks import CsvSink, render_cell_value
from repro.engine.sharding import (
    merge_shard_outputs,
    qi_prefix_shards,
    suppression_merge_bound,
)
from repro.engine.sources import (
    CsvSource,
    DataSource,
    SyntheticSource,
    TableSource,
    concat_tables,
    infer_csv_schema,
)

__all__ = [
    "AlgorithmInfo",
    "AlgorithmOutput",
    "AlgorithmRegistry",
    "Anonymizer",
    "CachedRun",
    "ColumnStore",
    "ColumnStoreSource",
    "CsvSink",
    "CsvSource",
    "DataSource",
    "Engine",
    "MetricInfo",
    "MetricRegistry",
    "ResultCache",
    "RunPlan",
    "RunReport",
    "StageTimings",
    "SyntheticSource",
    "TableSource",
    "algorithm_registry",
    "concat_tables",
    "default_cache",
    "infer_csv_schema",
    "merge_shard_outputs",
    "metric_registry",
    "qi_prefix_shards",
    "render_cell_value",
    "run_with_spec",
    "suppression_merge_bound",
]
