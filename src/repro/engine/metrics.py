"""Built-in metric registrations.

Mirrors :mod:`repro.engine.algorithms`: every metric of the evaluation is
registered once here and looked up by name everywhere else (``Engine.run``
plans, the ``ldiversity metrics`` listing, report columns).
"""

from __future__ import annotations

from repro.metrics.kl import kl_divergence
from repro.metrics.loss import average_group_size, discernibility, gcp, ncp
from repro.metrics.stars import (
    star_count,
    suppressed_tuple_count,
    suppression_ratio,
)
from repro.engine.registry import metric_registry

__all__ = ["metric_registry"]

metric_registry.register(
    "stars",
    description="Total suppressed QI cells (Problem 1 objective).",
)(star_count)

metric_registry.register(
    "suppressed",
    description="Rows with at least one star (Problem 2 objective).",
)(suppressed_tuple_count)

metric_registry.register(
    "suppression_ratio",
    description="Fraction of QI cells suppressed.",
)(suppression_ratio)

metric_registry.register(
    "ncp",
    description="Normalized certainty penalty over generalized cells.",
)(ncp)

metric_registry.register(
    "gcp",
    description="Global certainty penalty (NCP normalized to [0, 1]).",
)(gcp)

metric_registry.register(
    "discernibility",
    description="Sum of squared QI-group sizes.",
)(discernibility)

metric_registry.register(
    "average_group_size",
    description="Mean QI-group cardinality of the published table.",
)(average_group_size)

metric_registry.register(
    "kl",
    needs_source=True,
    description="KL-divergence between original and reconstructed distributions (Eq. 2).",
)(kl_divergence)
