"""Dataset adapters: one loading interface over CSV, synthetic and in-memory data.

A :class:`DataSource` is a recipe for obtaining an encoded
:class:`~repro.dataset.table.Table`.  The engine, harness and CLI all accept
sources rather than tables or file paths, so the same run plan works for

* :class:`CsvSource` — a CSV file with a header row; the schema (attribute
  domains) is inferred from the observed values unless supplied, and the file
  can be streamed in bounded-size chunks (two passes: one to infer the
  domains, one to encode) for tables that should not be materialized row-wise;
* :class:`SyntheticSource` — the seeded census-like SAL / OCC generators used
  by the experiments;
* :class:`TableSource` — an already-built (possibly columnar) in-memory table.

Chunked reads yield tables that all share one schema object, so their
columnar arrays can be concatenated without re-encoding
(:func:`concat_tables`).
"""

from __future__ import annotations

import csv
from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.dataset.synthetic import CensusConfig, make_occ, make_sal
from repro.dataset.table import Attribute, Schema, Table
from repro.errors import DataSourceError

__all__ = [
    "CsvSource",
    "DataSource",
    "SyntheticSource",
    "TableSource",
    "concat_tables",
    "infer_csv_schema",
]


class DataSource(ABC):
    """A recipe for loading one encoded microdata table."""

    @property
    @abstractmethod
    def label(self) -> str:
        """Short human-readable name used in run records and reports."""

    @abstractmethod
    def load(self) -> Table:
        """Materialize the full table."""

    def iter_chunks(self, chunk_rows: int) -> Iterator[Table]:
        """Yield the table in chunks of at most ``chunk_rows`` rows.

        All chunks share one schema, so they concatenate without re-encoding.
        The default implementation slices the fully-loaded table; file-backed
        sources override it to stream.
        """
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        table = self.load()
        for start in range(0, len(table), chunk_rows):
            yield table.subset(range(start, min(start + chunk_rows, len(table))))


def concat_tables(chunks: Sequence[Table]) -> Table:
    """Concatenate schema-sharing chunks back into one table."""
    if not chunks:
        raise ValueError("cannot concatenate zero chunks")
    schema = chunks[0].schema
    for chunk in chunks[1:]:
        if chunk.schema != schema:
            raise DataSourceError("chunks do not share a schema")
    if len(chunks) == 1:
        return chunks[0]
    return Table.from_arrays(
        schema,
        np.concatenate([chunk.qi_columns for chunk in chunks], axis=0),
        np.concatenate([chunk.sa_array for chunk in chunks]),
    )


def infer_csv_schema(
    path: str, qi_names: Sequence[str], sa_name: str, delimiter: str = ","
) -> Schema:
    """Infer attribute domains from one streaming pass over a CSV file."""
    observed: dict[str, set] = {name: set() for name in (*qi_names, sa_name)}
    try:
        handle = open(path, newline="")
    except OSError as error:
        raise DataSourceError(f"cannot load {path}: {error}") from error
    with handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise DataSourceError(f"{path}: empty CSV file (no header row)")
        missing = [name for name in observed if name not in reader.fieldnames]
        if missing:
            raise DataSourceError(
                f"{path}: columns {missing} not in header {reader.fieldnames}"
            )
        for row in reader:
            for name, values in observed.items():
                values.add(row[name])
    for name, values in observed.items():
        if not values:
            raise DataSourceError(f"{path}: no rows to infer a domain for {name!r}")
    return Schema(
        qi=tuple(Attribute.from_values(name, observed[name]) for name in qi_names),
        sensitive=Attribute.from_values(sa_name, observed[sa_name]),
    )


#: Chunk size used when ``CsvSource.load`` streams the whole file.
LOAD_CHUNK_ROWS = 262_144


@dataclass(frozen=True)
class CsvSource(DataSource):
    """A CSV file with a header row, encoded against an inferred or given schema.

    The schema is resolved exactly once per source instance (inference is a
    full streaming pass, so repeating it per read would double the I/O) and
    every subsequent read only *validates* values against it: the column
    encoders raise for any value outside the resolved domain.  Chunked reads
    decode through one preallocated ``(chunk_rows, d + 1)`` int32 buffer that
    is reused across chunks — rows never exist as per-row Python dicts, and
    each yielded chunk is a compact copy of the filled prefix.
    """

    path: str
    qi_names: tuple[str, ...]
    sa_name: str
    schema: Schema | None = None
    delimiter: str = ","

    def __post_init__(self) -> None:
        object.__setattr__(self, "qi_names", tuple(self.qi_names))
        # Cache slot for the lazily-resolved schema (not a dataclass field:
        # it is derived state, invisible to __eq__ / repr).
        object.__setattr__(self, "_resolved", self.schema)

    @property
    def label(self) -> str:
        return self.path

    def resolved_schema(self) -> Schema:
        """The supplied schema, or one inferred (once) from the file's values."""
        resolved = self._resolved  # type: ignore[attr-defined]
        if resolved is None:
            resolved = infer_csv_schema(
                self.path, self.qi_names, self.sa_name, self.delimiter
            )
            object.__setattr__(self, "_resolved", resolved)
        return resolved

    def load(self) -> Table:
        """Materialize the full table through the chunked columnar decoder."""
        chunks = list(self.iter_chunks(LOAD_CHUNK_ROWS))
        if not chunks:
            # A header-only file: schema inference rejects it; with a supplied
            # schema the empty table is well-defined, so return it.
            schema = self.resolved_schema()
            return Table.from_arrays(
                schema,
                np.empty((0, schema.dimension), dtype=np.int32),
                np.empty(0, dtype=np.int32),
            )
        return concat_tables(chunks)

    def _column_positions(self, header: list[str]) -> tuple[list[int], int]:
        missing = [
            name for name in (*self.qi_names, self.sa_name) if name not in header
        ]
        if missing:
            raise DataSourceError(
                f"{self.path}: columns {missing} not in header {header}"
            )
        return [header.index(name) for name in self.qi_names], header.index(self.sa_name)

    def iter_chunks(self, chunk_rows: int) -> Iterator[Table]:
        """Stream the file in bounded chunks through one reused decode buffer."""
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        schema = self.resolved_schema()
        encoders = [schema.qi_attribute(name).encode for name in self.qi_names]
        sa_encode = schema.sensitive.encode
        d = schema.dimension
        # One decode buffer for the lifetime of the iteration: d QI columns
        # plus the SA column, filled column-wise per chunk.
        buffer = np.empty((chunk_rows, d + 1), dtype=np.int32)
        try:
            with open(self.path, newline="") as handle:
                reader = csv.reader(handle, delimiter=self.delimiter)
                header = next(reader, None)
                if header is None:
                    raise DataSourceError(f"{self.path}: empty CSV file (no header row)")
                qi_positions, sa_position = self._column_positions(header)
                rows: list[list[str]] = []
                for record in reader:
                    rows.append(record)
                    if len(rows) == chunk_rows:
                        yield self._encode_chunk(
                            schema, rows, buffer, encoders, qi_positions,
                            sa_encode, sa_position, d,
                        )
                        rows.clear()
                if rows:
                    yield self._encode_chunk(
                        schema, rows, buffer, encoders, qi_positions,
                        sa_encode, sa_position, d,
                    )
        except (OSError, KeyError, IndexError) as error:
            raise DataSourceError(f"cannot load {self.path}: {error}") from error

    @staticmethod
    def _encode_chunk(
        schema: Schema,
        rows: list[list[str]],
        buffer: np.ndarray,
        encoders: list,
        qi_positions: list[int],
        sa_encode,
        sa_position: int,
        d: int,
    ) -> Table:
        size = len(rows)
        for column, (encode, position) in enumerate(zip(encoders, qi_positions)):
            buffer[:size, column] = [encode(record[position]) for record in rows]
        buffer[:size, d] = [sa_encode(record[sa_position]) for record in rows]
        # The encoders are the validation: every stored code is in-domain by
        # construction, so the chunk table skips the min/max re-scan.
        return Table.from_arrays(
            schema,
            buffer[:size, :d].copy(),
            buffer[:size, d].copy(),
            validate=False,
        )


@dataclass(frozen=True)
class SyntheticSource(DataSource):
    """A seeded synthetic census table (the SAL / OCC generators)."""

    dataset: str = "SAL"
    n: int = 10_000
    seed: int = 7
    config: CensusConfig | None = None
    #: Optional projection onto the first ``dimension`` QI attributes.
    dimension: int | None = None

    def __post_init__(self) -> None:
        if self.dataset.upper() not in ("SAL", "OCC"):
            raise DataSourceError(f"unknown synthetic dataset {self.dataset!r}")

    @property
    def label(self) -> str:
        suffix = f"-{self.dimension}" if self.dimension is not None else ""
        return f"{self.dataset.upper()}{suffix}@{self.n}"

    def load(self) -> Table:
        maker = make_sal if self.dataset.upper() == "SAL" else make_occ
        table = maker(self.n, seed=self.seed, config=self.config or CensusConfig())
        if self.dimension is not None:
            table = table.project(table.schema.qi_names[: self.dimension])
        return table


@dataclass(frozen=True)
class TableSource(DataSource):
    """An in-memory (row-wise or columnar) table, adapted to the source interface."""

    table: Table
    name: str = "memory"

    @property
    def label(self) -> str:
        return self.name

    def load(self) -> Table:
        return self.table
