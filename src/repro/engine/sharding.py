"""QI-prefix sharding and shard-output merging.

The sharded execution pipeline splits a large table into shards that are
each a union of *complete* QI-groups, contiguous in the lexicographic order
of their QI vectors ("QI-prefix" shards: every shard owns an interval of the
sorted QI keyspace, so rows agreeing on a QI prefix land together).  Each
shard is anonymized independently — sequentially or on the harness's process
pool — and the published shard tables are merged back in original row order.

Correctness: generalization operates per QI-group, a merged table's
QI-groups are exactly the union of the shard outputs' QI-groups, and each
shard output satisfies the (group-local) privacy spec; therefore the merged
table satisfies it by construction (the engine still verifies the merged
table and raises :class:`~repro.errors.ShardMergeError` on violation).

Utility (the documented merge bound): sharding constrains the algorithm to
never build a bucket from QI-groups in different shards, so for the bucket-
building algorithms (TP, TP+, Hilbert) each of the ``shards - 1`` boundaries
can strand at most one under-full residue of fewer than ``floor`` tuples per
side — where ``floor`` is the spec's minimum group size,
:meth:`~repro.privacy.spec.PrivacySpec.group_floor` (``l`` for the default
frequency spec) — each costing at most ``d`` stars per tuple.  The engine
therefore documents

    |stars(sharded) - stars(unsharded)|  <=  2 * (shards - 1) * floor * d
    |suppressed(sharded) - suppressed(unsharded)|  <=  2 * (shards - 1) * floor

as the merge bound; ``scripts/shard_smoke.py`` and the engine tests assert
it on fixed seeds.  Shards whose residents are not eligible under the spec
on their own are merged into their successor before execution, so every
dispatched shard is guaranteed anonymizable (Lemma 1 for the frequency
spec; the spec's :meth:`~repro.privacy.spec.PrivacySpec.eligible` condition
in general).

Every ``privacy`` parameter below accepts a
:class:`~repro.privacy.spec.PrivacySpec` or a bare ``int`` as sugar for
``FrequencyLDiversity(l)`` — existing ``l``-threading callers keep working
unchanged.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence

from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.engine.registry import AlgorithmOutput
from repro.errors import IneligibleTableError, ShardMergeError
from repro.privacy.spec import PrivacySpec, resolve_privacy

__all__ = [
    "merge_shard_outputs",
    "partition_group_keys",
    "qi_prefix_shards",
    "suppression_merge_bound",
]


def suppression_merge_bound(shards: int, privacy: "int | PrivacySpec", d: int = 1) -> int:
    """The documented bound on sharded-vs-unsharded suppression differences.

    ``privacy`` is a spec or an ``l`` integer; the bound scales with the
    spec's :meth:`~repro.privacy.spec.PrivacySpec.group_floor`.
    """
    floor = resolve_privacy(privacy).group_floor()
    return 2 * max(shards - 1, 0) * floor * d


def partition_group_keys(
    ordered_keys: Sequence,
    histograms: Mapping,
    shard_count: int,
    privacy: "int | PrivacySpec",
    n: int,
) -> list[list]:
    """Pack ordered QI-group keys into at most ``shard_count`` spec-eligible shards.

    ``histograms`` maps each key to a ``Counter`` of its sensitive values;
    only the histograms are consulted, so this is shared verbatim by the
    in-memory path (:func:`qi_prefix_shards`) and the streaming pipeline,
    which never materializes the rows.  Keys are walked in the given order
    and packed greedily into contiguous shards of roughly equal cardinality
    (closing a shard once its cumulative row count reaches the quota
    ``i * n / shard_count``), then a repair pass merges any shard that is
    not eligible under the privacy spec on its own into its successor
    (eligibility of the union is not guaranteed by eligibility of the
    parts, so the pass iterates until stable).
    """
    spec = resolve_privacy(privacy)
    if shard_count <= 1 or len(ordered_keys) <= 1:
        return [list(ordered_keys)]

    def shard_size(keys: list) -> int:
        return sum(sum(histograms[key].values()) for key in keys)

    shards: list[list] = []
    current: list = []
    current_rows = 0
    assigned = 0
    for key in ordered_keys:
        current.append(key)
        current_rows += sum(histograms[key].values())
        quota = ((len(shards) + 1) * n + shard_count - 1) // shard_count
        if len(shards) < shard_count - 1 and assigned + current_rows >= quota:
            assigned += current_rows
            shards.append(current)
            current, current_rows = [], 0
    if current:
        shards.append(current)

    def eligible(keys: list) -> bool:
        histogram: Counter = Counter()
        for key in keys:
            histogram.update(histograms[key])
        return spec.eligible(histogram, shard_size(keys))

    while len(shards) > 1:
        merged_any = False
        repaired: list[list] = []
        for shard in shards:
            if repaired and not eligible(repaired[-1]):
                repaired[-1] = repaired[-1] + shard
                merged_any = True
            else:
                repaired.append(shard)
        # The last shard may itself be ineligible: fold it backwards.
        if len(repaired) > 1 and not eligible(repaired[-1]):
            last = repaired.pop()
            repaired[-1] = repaired[-1] + last
            merged_any = True
        shards = repaired
        if not merged_any:
            break
    return shards


def qi_prefix_shards(
    table: Table, shard_count: int, privacy: "int | PrivacySpec"
) -> list[list[int]]:
    """Partition row indices into at most ``shard_count`` spec-eligible shards.

    QI-groups are walked in ascending lexicographic order of their QI vectors
    and packed/repaired by :func:`partition_group_keys`.  The returned shards
    are a disjoint cover of ``range(len(table))``, each a union of complete
    QI-groups, each eligible under the privacy spec; fewer than
    ``shard_count`` shards come back when repair had to merge.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    spec = resolve_privacy(privacy)
    n = len(table)
    if n == 0:
        return []
    if not spec.eligible(table.sa_counts(), n):
        raise IneligibleTableError(
            f"table is not eligible for {spec.describe()}; "
            "no satisfying generalization exists"
        )
    if shard_count == 1:
        return [list(range(n))]

    # group_by_qi is insertion-ordered by backend-dependent traversal; sort
    # keys so shard layout is identical on the numpy and reference backends.
    groups = table.group_by_qi()
    ordered_keys = sorted(groups)
    sa_values = table.sa_values
    histograms = {
        key: Counter(sa_values[index] for index in rows) for key, rows in groups.items()
    }
    key_shards = partition_group_keys(ordered_keys, histograms, shard_count, spec, n)
    return [
        [index for key in keys for index in groups[key]] for keys in key_shards
    ]


def merge_shard_outputs(
    table: Table,
    shard_rows: list[list[int]],
    outputs: list[AlgorithmOutput],
    privacy: "int | PrivacySpec",
    verify: bool = True,
) -> GeneralizedTable:
    """Merge per-shard published tables back into one table in original row order.

    ``outputs[i]`` must be the anonymization of ``table.subset(shard_rows[i])``;
    its rows therefore correspond positionally to ``shard_rows[i]``.  Group
    ids are offset per shard so groups never collide across shards.
    """
    if len(shard_rows) != len(outputs):
        raise ValueError(
            f"{len(shard_rows)} shards but {len(outputs)} outputs to merge"
        )
    n = len(table)
    cells: list = [None] * n
    group_ids = [0] * n
    group_offset = 0
    for rows, output in zip(shard_rows, outputs):
        shard_table = output.generalized
        if len(shard_table) != len(rows):
            raise ShardMergeError(
                f"shard output has {len(shard_table)} rows, expected {len(rows)}"
            )
        shard_cells = shard_table.cell_rows
        shard_groups = shard_table.group_ids
        for local, global_index in enumerate(rows):
            cells[global_index] = shard_cells[local]
            group_ids[global_index] = group_offset + shard_groups[local]
        group_offset += len(shard_table.groups())
    if any(cell is None for cell in cells):
        raise ShardMergeError("shards do not cover every row of the table")
    merged = GeneralizedTable._from_trusted(
        table.schema, cells, table.sa_values, group_ids
    )
    if verify:
        spec = resolve_privacy(privacy)
        if not spec.check_generalized(merged):
            raise ShardMergeError(
                f"merged table violates {spec.describe()}; sharding invariant broken"
            )
    return merged
