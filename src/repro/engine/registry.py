"""Algorithm and metric registries.

The registries are the single source of truth for *what* this package can
run: the harness, the CLI and the sharded execution pipeline all look up
algorithms and metrics here instead of carrying their own hardcoded maps.
Each entry pairs the callable with capability metadata (does the algorithm
tolerate QI-prefix sharding, is it deterministic, what complexity class and
approximation guarantee does it carry), so callers can make placement
decisions — and render help text — without importing the implementation.

New algorithms and metrics plug in with a decorator::

    @algorithm_registry.register(
        "MyAlg", complexity="O(n log n)", approximation="heuristic"
    )
    def _run_my_alg(table: Table, l: int) -> AlgorithmOutput:
        ...

and immediately become available to ``ldiversity anonymize/evaluate``, the
experiment harness, and ``Engine.run`` — including its sharded mode when
``supports_sharding`` is true.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass
from typing import Generic, Protocol, TypeVar, runtime_checkable

from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.errors import DuplicateRegistrationError, UnknownEntryError

__all__ = [
    "AlgorithmInfo",
    "AlgorithmOutput",
    "AlgorithmRegistry",
    "Anonymizer",
    "MetricInfo",
    "MetricRegistry",
    "algorithm_registry",
    "metric_registry",
]


@dataclass(frozen=True)
class AlgorithmOutput:
    """Uniform result of one anonymization run."""

    generalized: GeneralizedTable
    #: Phase in which TP terminated, when applicable.
    phase_reached: int | None = None


@runtime_checkable
class Anonymizer(Protocol):
    """The common callable shape of every registered algorithm."""

    def __call__(self, table: Table, l: int) -> AlgorithmOutput: ...


@dataclass(frozen=True)
class AlgorithmInfo:
    """A registered algorithm plus its capability metadata."""

    name: str
    runner: Anonymizer
    #: Whether per-shard runs merged over a QI-prefix sharding still yield a
    #: valid l-diverse table (true for every partition-based algorithm here).
    supports_sharding: bool = True
    #: Whether repeated runs on the same table produce identical output.
    deterministic: bool = True
    #: Asymptotic running time, as reported in the paper / module docs.
    complexity: str = "?"
    #: Approximation guarantee for Problem 1/2 ("heuristic" when none).
    approximation: str = "heuristic"
    description: str = ""

    def __call__(self, table: Table, l: int) -> AlgorithmOutput:
        return self.runner(table, l)


@dataclass(frozen=True)
class MetricInfo:
    """A registered information-loss / utility metric."""

    name: str
    func: Callable
    #: Whether the metric needs the original microdata table in addition to
    #: the published one (KL-divergence does; the star counts do not).
    needs_source: bool = False
    #: Direction of improvement, for display ("lower" for every loss metric).
    better: str = "lower"
    description: str = ""

    def compute(self, table: Table, generalized: GeneralizedTable) -> float:
        """Evaluate the metric with a uniform ``(table, generalized)`` call."""
        if self.needs_source:
            return self.func(table, generalized)
        return self.func(generalized)


E = TypeVar("E", bound=AlgorithmInfo | MetricInfo)


class _Registry(Generic[E]):
    """Name -> entry mapping with decorator registration and rich errors."""

    #: Human label used in error messages ("algorithm" / "metric").
    kind = "entry"

    def __init__(self) -> None:
        self._entries: dict[str, E] = {}

    def add(self, entry: E) -> E:
        if entry.name in self._entries:
            raise DuplicateRegistrationError(
                f"{self.kind} {entry.name!r} is already registered"
            )
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> E:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entries(self) -> list[E]:
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


class AlgorithmRegistry(_Registry[AlgorithmInfo]):
    """Registry of anonymization algorithms."""

    kind = "algorithm"

    def register(
        self,
        name: str,
        *,
        supports_sharding: bool = True,
        deterministic: bool = True,
        complexity: str = "?",
        approximation: str = "heuristic",
        description: str = "",
    ) -> Callable[[Anonymizer], Anonymizer]:
        """Decorator: register ``runner`` under ``name`` with metadata."""

        def decorate(runner: Anonymizer) -> Anonymizer:
            self.add(
                AlgorithmInfo(
                    name=name,
                    runner=runner,
                    supports_sharding=supports_sharding,
                    deterministic=deterministic,
                    complexity=complexity,
                    approximation=approximation,
                    description=description,
                )
            )
            return runner

        return decorate

    def runners(self) -> "RunnerView":
        """A live ``name -> runner`` mapping view over the registry.

        This is what :data:`repro.experiments.harness.ALGORITHMS` now is: not
        a copy but a window, so algorithms registered later (e.g. by a
        plugin or a test) appear in it immediately and CLI choices can never
        drift from what is actually runnable.
        """
        return RunnerView(self)


class RunnerView(Mapping):
    """Read-only ``name -> runner`` mapping backed by an :class:`AlgorithmRegistry`."""

    def __init__(self, registry: AlgorithmRegistry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> Anonymizer:
        return self._registry.get(name).runner

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry)

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunnerView({list(self._registry)})"


class MetricRegistry(_Registry[MetricInfo]):
    """Registry of information-loss / utility metrics."""

    kind = "metric"

    def register(
        self,
        name: str,
        *,
        needs_source: bool = False,
        better: str = "lower",
        description: str = "",
    ) -> Callable[[Callable], Callable]:
        """Decorator: register a metric function under ``name``."""

        def decorate(func: Callable) -> Callable:
            self.add(
                MetricInfo(
                    name=name,
                    func=func,
                    needs_source=needs_source,
                    better=better,
                    description=description,
                )
            )
            return func

        return decorate

    def compute(self, name: str, table: Table, generalized: GeneralizedTable) -> float:
        """Look up and evaluate one metric."""
        return self.get(name).compute(table, generalized)


#: The default registries; populated by :mod:`repro.engine.algorithms` and
#: :mod:`repro.engine.metrics` at import time.
algorithm_registry = AlgorithmRegistry()
metric_registry = MetricRegistry()
