"""Built-in algorithm registrations.

This module is the *only* place the five algorithms of the evaluation are
wired to their labels; everything else (CLI choices, harness, engine,
figures) derives from :data:`~repro.engine.registry.algorithm_registry`.

Complexity and approximation metadata quote the paper: TP is an ``l``-
approximation for tuple minimization (Problem 2) and an ``l*d``-
approximation for star minimization (Problem 1, Theorem 3); TP+ inherits
both while lowering stars in practice.  The baselines carry no guarantee.
"""

from __future__ import annotations

from repro.baselines import hilbert as hilbert_baseline
from repro.baselines import mondrian as mondrian_baseline
from repro.baselines import tds as tds_baseline
from repro.core import hybrid, three_phase
from repro.dataset.table import Table
from repro.engine.registry import AlgorithmOutput, algorithm_registry

__all__ = ["algorithm_registry"]


@algorithm_registry.register(
    "TP",
    complexity="O(d * n log n)",
    approximation="l (tuples), l*d (stars)",
    description="Three-phase suppression algorithm (Section 5).",
)
def _run_tp(table: Table, l: int) -> AlgorithmOutput:
    result = three_phase.anonymize(table, l)
    return AlgorithmOutput(result.generalized, phase_reached=result.stats.phase_reached)


@algorithm_registry.register(
    "TP+",
    complexity="O(d * n log n)",
    approximation="l (tuples), l*d (stars)",
    description="TP followed by the star-reducing refinement pass (Section 5.6).",
)
def _run_tp_plus(table: Table, l: int) -> AlgorithmOutput:
    result = hybrid.anonymize(table, l)
    return AlgorithmOutput(result.generalized, phase_reached=result.tp_stats.phase_reached)


@algorithm_registry.register(
    "Hilbert",
    complexity="O(d * n log n)",
    description="Hilbert-curve linear scan baseline (multidimensional to 1-d).",
)
def _run_hilbert(table: Table, l: int) -> AlgorithmOutput:
    result = hilbert_baseline.anonymize(table, l)
    return AlgorithmOutput(result.generalized)


@algorithm_registry.register(
    "TDS",
    complexity="O(d * n * iterations)",
    description="Top-down specialization baseline (single-dimensional generalization).",
)
def _run_tds(table: Table, l: int) -> AlgorithmOutput:
    result = tds_baseline.anonymize(table, l)
    return AlgorithmOutput(result.generalized)


@algorithm_registry.register(
    "Mondrian",
    complexity="O(d * n log n)",
    description="Mondrian median-split baseline (multi-dimensional generalization).",
)
def _run_mondrian(table: Table, l: int) -> AlgorithmOutput:
    result = mondrian_baseline.anonymize(table, l)
    return AlgorithmOutput(result.generalized)
