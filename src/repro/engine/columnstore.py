"""Zero-copy columnar storage: memory-mapped int32 column buffers.

A :class:`ColumnStore` is the Arrow-style physical layout of an encoded
:class:`~repro.dataset.table.Table`: one ``(n, d)`` ``int32`` QI code matrix
plus one ``(n,)`` sensitive-code vector and the schema that decodes them.  On
disk a store is a directory::

    store/
      schema.json   attribute names + ordered domains + row count
      qi.npy        (n, d) int32, C-contiguous
      sa.npy        (n,) int32

``.npy`` is the mmap-friendly format: :func:`numpy.lib.format.open_memmap`
writes it incrementally without holding the table, and ``np.load(...,
mmap_mode="r")`` reopens it as a zero-copy view, so a 10^7-row table flows
from CSV to the anonymization kernels without ever round-tripping through
Python row tuples.  :meth:`ColumnStore.table` wraps the buffers in a
``Table`` without validation (the store validated codes when it was built)
and :meth:`ColumnStore.slice` / :meth:`ColumnStore.take` give zero-copy /
fancy-indexed views for chunked pipelines.

:class:`ColumnStoreSource` adapts a store directory to the
:class:`~repro.engine.sources.DataSource` interface, which is what
``ldiversity anonymize --mmap`` and the scale benchmarks run through.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dataset.table import Attribute, Schema, Table
from repro.engine.sources import DataSource, infer_csv_schema
from repro.errors import DataSourceError

__all__ = ["ColumnStore", "ColumnStoreSource", "ResultArtifact", "StoreOrderCache"]

SCHEMA_FILE = "schema.json"
QI_FILE = "qi.npy"
SA_FILE = "sa.npy"
ORDER_FILE = "order.npy"
ORDER_META_FILE = "order.json"
FORMAT_NAME = "repro.columnstore"
FORMAT_VERSION = 1
ORDER_FORMAT_NAME = "repro.columnstore.order"
ORDER_FORMAT_VERSION = 1

#: Default CSV decode chunk during store conversion.
DEFAULT_CHUNK_ROWS = 100_000

RESULT_META_FILE = "meta.json"
RESULT_REPS_FILE = "rep_codes.npy"
RESULT_STAR_FILE = "rep_star.npy"
RESULT_GROUPS_FILE = "group_of.npy"
RESULT_SA_FILE = "sa_codes.npy"
RESULT_FORMAT_NAME = "repro.resultartifact"
RESULT_FORMAT_VERSION = 1

#: Default row chunk when streaming a result artifact as CSV.
RESULT_CSV_CHUNK_ROWS = 50_000


def _attribute_payload(attribute: Attribute) -> dict:
    for value in attribute.values:
        if not isinstance(value, (str, int, float, bool)):
            raise DataSourceError(
                f"attribute {attribute.name!r} has a non-JSON domain value "
                f"{value!r}; only str/int/float/bool domains can be stored"
            )
    return {"name": attribute.name, "values": list(attribute.values)}


def _attribute_from_payload(payload: dict) -> Attribute:
    return Attribute(payload["name"], tuple(payload["values"]))


class ColumnStore:
    """Columnar int32 buffers of one encoded table, in memory or memory-mapped."""

    def __init__(self, schema: Schema, qi: np.ndarray, sa: np.ndarray) -> None:
        # asanyarray keeps np.memmap instances intact (asarray would silently
        # rewrap them as plain ndarray views and lose the mmapped marker).
        qi = np.asanyarray(qi)
        sa = np.asanyarray(sa)
        if qi.dtype != np.int32:
            qi = qi.astype(np.int32)
        if sa.dtype != np.int32:
            sa = sa.astype(np.int32)
        if qi.ndim != 2 or qi.shape[1] != schema.dimension:
            raise ValueError(
                f"qi must have shape (n, {schema.dimension}), got {qi.shape}"
            )
        if sa.ndim != 1 or sa.shape[0] != qi.shape[0]:
            raise ValueError(
                f"sa has {sa.shape} entries but qi has {qi.shape[0]} rows"
            )
        self.schema = schema
        self.qi = qi
        self.sa = sa

    # ------------------------------------------------------------------ basics

    def __len__(self) -> int:
        return self.qi.shape[0]

    @property
    def n(self) -> int:
        return self.qi.shape[0]

    @property
    def d(self) -> int:
        return self.schema.dimension

    @property
    def mmapped(self) -> bool:
        """Whether the buffers are memory-mapped views of on-disk files."""
        return isinstance(self.qi, np.memmap) or isinstance(self.sa, np.memmap)

    @property
    def nbytes(self) -> int:
        return int(self.qi.nbytes + self.sa.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "mmap" if self.mmapped else "memory"
        return f"ColumnStore(n={self.n}, d={self.d}, {kind}, {self.nbytes} bytes)"

    # ------------------------------------------------------------------- views

    def table(self, validate: bool = False) -> Table:
        """The buffers wrapped as a (zero-copy) :class:`Table`.

        ``validate=False`` is the default because every constructor of a
        store bounds-checks codes on the way in; pass ``True`` to re-scan
        buffers of unknown provenance.
        """
        return Table.from_arrays(self.schema, self.qi, self.sa, validate=validate)

    def slice(self, start: int, stop: int) -> "ColumnStore":
        """A zero-copy view of rows ``[start, stop)`` (shares the buffers)."""
        return ColumnStore(self.schema, self.qi[start:stop], self.sa[start:stop])

    def take(self, indices: Sequence[int] | np.ndarray) -> "ColumnStore":
        """A store holding exactly the given rows (fancy indexing copies)."""
        index_array = np.asarray(indices, dtype=np.intp)
        return ColumnStore(self.schema, self.qi[index_array], self.sa[index_array])

    def iter_slices(self, chunk_rows: int) -> Iterator["ColumnStore"]:
        """Yield contiguous zero-copy slices of at most ``chunk_rows`` rows."""
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        for start in range(0, self.n, chunk_rows):
            yield self.slice(start, min(start + chunk_rows, self.n))

    def fingerprint(self) -> str:
        """The wrapped table's content hash (streams mmap buffers once)."""
        return self.table().fingerprint()

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_table(cls, table: Table) -> "ColumnStore":
        """Wrap an already-encoded table's columnar mirror (no copy)."""
        return cls(table.schema, table.qi_columns, table.sa_array)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        qi_names: Sequence[str],
        sa_name: str,
        schema: Schema | None = None,
        delimiter: str = ",",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "ColumnStore":
        """Decode a CSV file straight into in-memory column buffers.

        The file is decoded in bounded chunks through the columnar
        :class:`~repro.engine.sources.CsvSource` reader (one schema
        inference pass, one reused decode buffer) — rows never exist as
        Python tuples.  For tables larger than RAM use :meth:`convert_csv`,
        which writes the buffers out-of-core.
        """
        from repro.engine.sources import CsvSource

        source = CsvSource(
            str(path), tuple(qi_names), sa_name, schema=schema, delimiter=delimiter
        )
        chunks = list(source.iter_chunks(chunk_rows))
        if not chunks:
            raise DataSourceError(f"{path}: no data rows to store")
        resolved = chunks[0].schema
        qi = np.concatenate([chunk.qi_columns for chunk in chunks], axis=0)
        sa = np.concatenate([chunk.sa_array for chunk in chunks])
        return cls(resolved, qi, sa)

    @classmethod
    def convert_csv(
        cls,
        csv_path: str | Path,
        store_dir: str | Path,
        qi_names: Sequence[str],
        sa_name: str,
        schema: Schema | None = None,
        delimiter: str = ",",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "ColumnStore":
        """Convert a CSV file into an on-disk store without holding the table.

        Two streaming passes: the first infers the schema and counts rows
        (skipped when ``schema`` is given — then only the count pass runs),
        the second decodes chunks directly into
        :func:`numpy.lib.format.open_memmap` buffers.  Peak memory is one
        chunk.  Returns the finished store, memory-mapped.
        """
        from repro.engine.sources import CsvSource

        csv_path = str(csv_path)
        if schema is None:
            schema = infer_csv_schema(csv_path, qi_names, sa_name, delimiter)
        with open(csv_path, newline="") as handle:
            row_count = sum(1 for _line in handle) - 1  # header
        if row_count < 1:
            raise DataSourceError(f"{csv_path}: no data rows to store")

        directory = Path(store_dir)
        directory.mkdir(parents=True, exist_ok=True)
        qi = np.lib.format.open_memmap(
            directory / QI_FILE,
            mode="w+",
            dtype=np.int32,
            shape=(row_count, schema.dimension),
        )
        sa = np.lib.format.open_memmap(
            directory / SA_FILE, mode="w+", dtype=np.int32, shape=(row_count,)
        )
        source = CsvSource(
            csv_path, tuple(qi_names), sa_name, schema=schema, delimiter=delimiter
        )
        filled = 0
        for chunk in source.iter_chunks(chunk_rows):
            qi[filled : filled + len(chunk)] = chunk.qi_columns
            sa[filled : filled + len(chunk)] = chunk.sa_array
            filled += len(chunk)
        if filled != row_count:
            raise DataSourceError(
                f"{csv_path}: decoded {filled} rows but counted {row_count}"
            )
        qi.flush()
        sa.flush()
        cls._write_schema(directory, schema, row_count)
        return cls.mmap(directory)

    # ----------------------------------------------------------- persistence

    @staticmethod
    def _write_schema(directory: Path, schema: Schema, n: int) -> None:
        payload = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "n": n,
            "qi": [_attribute_payload(attribute) for attribute in schema.qi],
            "sensitive": _attribute_payload(schema.sensitive),
        }
        (directory / SCHEMA_FILE).write_text(json.dumps(payload, indent=2))

    def save(self, store_dir: str | Path) -> Path:
        """Write the store to a directory (creating it) and return the path."""
        directory = Path(store_dir)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / QI_FILE, np.ascontiguousarray(self.qi, dtype=np.int32))
        np.save(directory / SA_FILE, np.ascontiguousarray(self.sa, dtype=np.int32))
        self._write_schema(directory, self.schema, self.n)
        return directory

    @classmethod
    def _read_schema(cls, directory: Path) -> tuple[Schema, int]:
        path = directory / SCHEMA_FILE
        try:
            payload = json.loads(path.read_text())
        except OSError as error:
            raise DataSourceError(f"cannot load column store {directory}: {error}") from error
        except json.JSONDecodeError as error:
            raise DataSourceError(f"{path}: invalid schema JSON: {error}") from error
        if payload.get("format") != FORMAT_NAME:
            raise DataSourceError(f"{path}: not a {FORMAT_NAME} schema file")
        schema = Schema(
            qi=tuple(_attribute_from_payload(entry) for entry in payload["qi"]),
            sensitive=_attribute_from_payload(payload["sensitive"]),
        )
        return schema, int(payload["n"])

    @classmethod
    def _open(cls, store_dir: str | Path, mmap_mode: str | None) -> "ColumnStore":
        directory = Path(store_dir)
        schema, n = cls._read_schema(directory)
        try:
            qi = np.load(directory / QI_FILE, mmap_mode=mmap_mode)
            sa = np.load(directory / SA_FILE, mmap_mode=mmap_mode)
        except OSError as error:
            raise DataSourceError(f"cannot load column store {directory}: {error}") from error
        if qi.shape[0] != n or sa.shape[0] != n:
            raise DataSourceError(
                f"{directory}: schema says {n} rows but buffers hold "
                f"{qi.shape[0]}/{sa.shape[0]}"
            )
        return cls(schema, qi, sa)

    @classmethod
    def mmap(cls, store_dir: str | Path) -> "ColumnStore":
        """Open an on-disk store as read-only zero-copy memory maps."""
        return cls._open(store_dir, mmap_mode="r")

    @classmethod
    def load(cls, store_dir: str | Path) -> "ColumnStore":
        """Read an on-disk store fully into memory."""
        return cls._open(store_dir, mmap_mode=None)

    @staticmethod
    def is_store_dir(path: str | Path) -> bool:
        """Whether ``path`` looks like a saved column store directory."""
        directory = Path(path)
        return (
            directory.is_dir()
            and (directory / SCHEMA_FILE).is_file()
            and (directory / QI_FILE).is_file()
            and (directory / SA_FILE).is_file()
        )


class ResultArtifact:
    """A published table's columnar result form, in memory or on disk.

    The serving stack's zero-copy bridge out of a pool worker: instead of
    rendering every published row into Python string lists and pickling them
    back through the process pool, the worker saves the *group-level* form —
    per-group surviving QI codes and star flags, the row→group map and the
    SA codes (:meth:`GeneralizedTable.columnar_publish
    <repro.dataset.generalized.GeneralizedTable.columnar_publish>`) — plus
    the pre-rendered per-code string tables needed to decode them.  On disk
    an artifact is a directory::

        result/
          meta.json       header + per-attribute rendered string tables
          rep_codes.npy   (g, d) int32 surviving codes
          rep_star.npy    (g, d) bool star flags
          group_of.npy    (n,) int64 row -> group
          sa_codes.npy    (n,) int32 sensitive codes

    The server reopens it memory-mapped and streams ``?format=csv``
    responses chunk-wise; rendering goes through the same string tables the
    legacy row path used (``str(attribute.decode(code))``, stars as ``"*"``)
    and the same ``csv.writer``, so the bytes are identical by construction.
    Only cell-exact tables qualify (no frozenset sub-domain cells) — exactly
    the tables that carry a columnar publish form.
    """

    STAR_TEXT = "*"

    def __init__(
        self,
        header: Sequence[str],
        qi_tables: Sequence[Sequence[str]],
        sa_table: Sequence[str],
        rep_codes: np.ndarray,
        rep_star: np.ndarray,
        group_of: np.ndarray,
        sa_codes: np.ndarray,
    ) -> None:
        self.header = list(header)
        self.qi_tables = [list(table) for table in qi_tables]
        self.sa_table = list(sa_table)
        self.rep_codes = np.asanyarray(rep_codes)
        self.rep_star = np.asanyarray(rep_star)
        self.group_of = np.asanyarray(group_of)
        self.sa_codes = np.asanyarray(sa_codes)
        if self.rep_codes.ndim != 2 or self.rep_star.shape != self.rep_codes.shape:
            raise ValueError(
                f"rep_codes {self.rep_codes.shape} and rep_star "
                f"{self.rep_star.shape} must be matching (g, d) matrices"
            )
        if len(self.qi_tables) != self.rep_codes.shape[1]:
            raise ValueError(
                f"{len(self.qi_tables)} QI string tables for "
                f"{self.rep_codes.shape[1]} columns"
            )
        if self.group_of.ndim != 1 or self.sa_codes.shape != self.group_of.shape:
            raise ValueError("group_of and sa_codes must be matching (n,) vectors")
        if len(self.header) != len(self.qi_tables) + 1:
            raise ValueError("header must cover every QI column plus the SA column")
        self._group_rows: list[list[str]] | None = None

    # ------------------------------------------------------------------ basics

    @property
    def n(self) -> int:
        return int(self.group_of.shape[0])

    @property
    def g(self) -> int:
        return int(self.rep_codes.shape[0])

    @property
    def d(self) -> int:
        return int(self.rep_codes.shape[1])

    @property
    def nbytes(self) -> int:
        """In-memory bytes of the array payload (the string tables are tiny)."""
        return int(
            self.rep_codes.nbytes
            + self.rep_star.nbytes
            + self.group_of.nbytes
            + self.sa_codes.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultArtifact(n={self.n}, g={self.g}, d={self.d})"

    # --------------------------------------------------------------- rendering

    def group_row_prefixes(self) -> list[list[str]]:
        """Per-group rendered QI cells (``g`` rows of ``d`` strings; cached).

        All rows of a group share one prefix list, so full-table rendering
        is O(g·d) string work plus an O(n) gather.
        """
        if self._group_rows is None:
            codes = self.rep_codes.tolist()
            stars = self.rep_star.tolist()
            self._group_rows = [
                [
                    self.STAR_TEXT if starred else table[code]
                    for table, code, starred in zip(self.qi_tables, values, flags)
                ]
                for values, flags in zip(codes, stars)
            ]
        return self._group_rows

    def rows(self) -> list[list[str]]:
        """Every published row as rendered strings — the legacy payload shape."""
        prefixes = self.group_row_prefixes()
        sa_table = self.sa_table
        return [
            prefixes[group] + [sa_table[sa]]
            for group, sa in zip(self.group_of.tolist(), self.sa_codes.tolist())
        ]

    def iter_csv_chunks(
        self, chunk_rows: int = RESULT_CSV_CHUNK_ROWS
    ) -> Iterator[bytes]:
        """Stream the CSV rendering (header first) in bounded row chunks.

        ``csv.writer`` is stateless across rows, so the concatenation of the
        chunks is byte-identical to one monolithic write of the same rows.
        """
        import csv
        import io

        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        prefixes = self.group_row_prefixes()
        sa_table = self.sa_table
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.header)
        group_of = self.group_of
        sa_codes = self.sa_codes
        for start in range(0, self.n, chunk_rows):
            stop = min(start + chunk_rows, self.n)
            writer.writerows(
                prefixes[group] + [sa_table[sa]]
                for group, sa in zip(
                    group_of[start:stop].tolist(), sa_codes[start:stop].tolist()
                )
            )
            yield buffer.getvalue().encode("utf-8")
            buffer.seek(0)
            buffer.truncate()
        if self.n == 0:
            yield buffer.getvalue().encode("utf-8")

    def csv_bytes(self, chunk_rows: int = RESULT_CSV_CHUNK_ROWS) -> bytes:
        return b"".join(self.iter_csv_chunks(chunk_rows))

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_generalized(cls, generalized) -> "ResultArtifact | None":
        """Build an artifact from a published table, or ``None`` when the
        table has no columnar group form (merged shards, store hits,
        explicit constructors) — callers fall back to the row path."""
        columnar = generalized.columnar_publish()
        if columnar is None:
            return None
        rep_codes, rep_star, group_of, sa_codes = columnar
        schema = generalized.schema
        header = list(schema.qi_names) + [schema.sensitive.name]
        qi_tables = [
            [str(attribute.decode(code)) for code in range(attribute.size)]
            for attribute in schema.qi
        ]
        sa_table = [
            str(schema.sensitive.decode(code))
            for code in range(schema.sensitive.size)
        ]
        return cls(header, qi_tables, sa_table, rep_codes, rep_star, group_of, sa_codes)

    # ----------------------------------------------------------- persistence

    def save(self, directory: str | Path) -> int:
        """Write the artifact to a directory; returns its on-disk byte size."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        np.save(path / RESULT_REPS_FILE, np.ascontiguousarray(self.rep_codes, dtype=np.int32))
        np.save(path / RESULT_STAR_FILE, np.ascontiguousarray(self.rep_star, dtype=bool))
        np.save(path / RESULT_GROUPS_FILE, np.ascontiguousarray(self.group_of, dtype=np.int64))
        np.save(path / RESULT_SA_FILE, np.ascontiguousarray(self.sa_codes, dtype=np.int32))
        payload = {
            "format": RESULT_FORMAT_NAME,
            "version": RESULT_FORMAT_VERSION,
            "n": self.n,
            "g": self.g,
            "d": self.d,
            "header": self.header,
            "star": self.STAR_TEXT,
            "qi_tables": self.qi_tables,
            "sa_table": self.sa_table,
        }
        (path / RESULT_META_FILE).write_text(json.dumps(payload))
        return sum(
            os.stat(path / name).st_size
            for name in (
                RESULT_META_FILE,
                RESULT_REPS_FILE,
                RESULT_STAR_FILE,
                RESULT_GROUPS_FILE,
                RESULT_SA_FILE,
            )
        )

    @classmethod
    def _open(cls, directory: str | Path, mmap_mode: str | None) -> "ResultArtifact":
        path = Path(directory)
        try:
            payload = json.loads((path / RESULT_META_FILE).read_text())
        except OSError as error:
            raise DataSourceError(f"cannot load result artifact {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise DataSourceError(f"{path}: invalid artifact meta JSON: {error}") from error
        if payload.get("format") != RESULT_FORMAT_NAME:
            raise DataSourceError(f"{path}: not a {RESULT_FORMAT_NAME} directory")
        try:
            rep_codes = np.load(path / RESULT_REPS_FILE, mmap_mode=mmap_mode)
            rep_star = np.load(path / RESULT_STAR_FILE, mmap_mode=mmap_mode)
            group_of = np.load(path / RESULT_GROUPS_FILE, mmap_mode=mmap_mode)
            sa_codes = np.load(path / RESULT_SA_FILE, mmap_mode=mmap_mode)
        except OSError as error:
            raise DataSourceError(f"cannot load result artifact {path}: {error}") from error
        artifact = cls(
            payload["header"],
            payload["qi_tables"],
            payload["sa_table"],
            rep_codes,
            rep_star,
            group_of,
            sa_codes,
        )
        if artifact.n != int(payload["n"]) or artifact.g != int(payload["g"]):
            raise DataSourceError(
                f"{path}: meta says n={payload['n']} g={payload['g']} but "
                f"buffers hold n={artifact.n} g={artifact.g}"
            )
        return artifact

    @classmethod
    def mmap(cls, directory: str | Path) -> "ResultArtifact":
        """Open an on-disk artifact as read-only zero-copy memory maps."""
        return cls._open(directory, mmap_mode="r")

    @classmethod
    def load(cls, directory: str | Path) -> "ResultArtifact":
        """Read an on-disk artifact fully into memory."""
        return cls._open(directory, mmap_mode=None)

    @staticmethod
    def is_artifact_dir(path: str | Path) -> bool:
        directory = Path(path)
        return (
            directory.is_dir()
            and (directory / RESULT_META_FILE).is_file()
            and (directory / RESULT_GROUPS_FILE).is_file()
        )


class StoreOrderCache:
    """Persists a table's ``(QI, SA)`` sort permutation beside its store.

    The :meth:`~repro.dataset.table.Table.grouping` context's dominant cost
    is the big stable sort; for a table served from an on-disk store the
    permutation is a pure function of the stored buffers, so it is written
    once as an ``order.npy`` sidecar and repeat runs skip the sort entirely
    (observable as the absence of the ``sort`` profiling sub-stage — the
    warm-start CI guard).

    Validation is two-tier.  ``order.json`` records the sidecar format, the
    row count, the QI/sensitive attribute names, and cheap freshness stamps
    (size + mtime_ns) of ``qi.npy``/``sa.npy`` taken at write time; a load
    re-checks all of them, so rewriting the store invalidates the sidecar.
    The table's content fingerprint is recorded and compared only
    *opportunistically* — when the table object happens to have it cached —
    so the sidecar never forces a full-buffer hash on the hot path.  All
    writes go through a temp file + ``os.replace`` and every filesystem
    error degrades to a miss (read-only store directories simply never warm
    up).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------- internals

    def _stamps(self) -> dict[str, list[int]] | None:
        stamps: dict[str, list[int]] = {}
        for name in (QI_FILE, SA_FILE):
            try:
                stat = os.stat(self.directory / name)
            except OSError:
                return None
            stamps[name] = [int(stat.st_size), int(stat.st_mtime_ns)]
        return stamps

    @staticmethod
    def _cached_fingerprint(table: Table) -> str | None:
        return getattr(table, "_fingerprint", None)

    # ------------------------------------------------------------- hook API

    def load(self, table: Table) -> np.ndarray | None:
        """The persisted permutation for ``table``, or ``None`` on any doubt."""
        try:
            payload = json.loads((self.directory / ORDER_META_FILE).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            payload.get("format") != ORDER_FORMAT_NAME
            or payload.get("version") != ORDER_FORMAT_VERSION
            or payload.get("n") != len(table)
            or payload.get("qi") != list(table.schema.qi_names)
            or payload.get("sensitive") != table.schema.sensitive.name
        ):
            return None
        if payload.get("stamps") != self._stamps():
            return None
        recorded = payload.get("fingerprint")
        cached = self._cached_fingerprint(table)
        if recorded is not None and cached is not None and recorded != cached:
            return None
        try:
            order = np.load(self.directory / ORDER_FILE)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(order, np.ndarray)
            or order.ndim != 1
            or order.shape[0] != len(table)
            or not np.issubdtype(order.dtype, np.integer)
        ):
            return None
        return order.astype(np.intp, copy=False)

    def store(self, table: Table, order: np.ndarray) -> None:
        """Persist a freshly computed permutation (best-effort, atomic)."""
        stamps = self._stamps()
        if stamps is None:
            return
        payload = {
            "format": ORDER_FORMAT_NAME,
            "version": ORDER_FORMAT_VERSION,
            "n": len(table),
            "qi": list(table.schema.qi_names),
            "sensitive": table.schema.sensitive.name,
            "stamps": stamps,
            "fingerprint": self._cached_fingerprint(table),
        }
        order_tmp = self.directory / ("." + ORDER_FILE + ".tmp.npy")
        meta_tmp = self.directory / ("." + ORDER_META_FILE + ".tmp")
        try:
            np.save(order_tmp, np.ascontiguousarray(order, dtype=np.intp))
            os.replace(order_tmp, self.directory / ORDER_FILE)
            meta_tmp.write_text(json.dumps(payload, indent=2))
            os.replace(meta_tmp, self.directory / ORDER_META_FILE)
        except OSError:
            for leftover in (order_tmp, meta_tmp):
                try:
                    leftover.unlink()
                except OSError:
                    pass


@dataclass(frozen=True)
class ColumnStoreSource(DataSource):
    """A saved :class:`ColumnStore` directory as a :class:`DataSource`.

    ``mmap=True`` (the default) opens the buffers as zero-copy memory maps —
    the ``--mmap`` execution path; ``mmap=False`` reads them into memory.
    Chunked iteration yields zero-copy slice views either way.  Full-table
    loads attach a :class:`StoreOrderCache`, so the first run's ``(QI, SA)``
    sort permutation persists beside the store and repeat runs skip the
    sort.
    """

    path: str
    mmap: bool = True

    @property
    def label(self) -> str:
        return self.path

    def store(self) -> ColumnStore:
        if self.mmap:
            return ColumnStore.mmap(self.path)
        return ColumnStore.load(self.path)

    def load(self) -> Table:
        table = self.store().table()
        table.attach_order_cache(StoreOrderCache(self.path))
        return table

    def iter_chunks(self, chunk_rows: int) -> Iterator[Table]:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        for piece in self.store().iter_slices(chunk_rows):
            yield piece.table()
