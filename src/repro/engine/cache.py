"""Per-run result caching keyed by (table fingerprint, algorithm, l).

Figure sweeps re-run identical ``(table, algorithm, l)`` combinations — the
stars-vs-l and time-vs-l drivers share every run, and TP+ re-runs TP
internally at the harness level when both are requested.  The cache stores
the :class:`~repro.engine.registry.AlgorithmOutput` *and* the seconds the
original run took, so a hit reproduces both the published table and a
faithful timing record.

All registered algorithms are deterministic (see their
:class:`~repro.engine.registry.AlgorithmInfo`), which is what makes replaying
a cached output equivalent to re-running; the engine refuses to cache runs of
algorithms declaring ``deterministic=False``.

The default cache is process-global and LRU-bounded; the parallel harness
consults it in the parent before dispatching jobs to the pool and stores the
results that come back.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.registry import AlgorithmOutput

__all__ = ["CachedRun", "ResultCache", "default_cache"]

#: Cache key: (table fingerprint, algorithm name, l, shard count).
CacheKey = tuple[str, str, int, int]


@dataclass(frozen=True)
class CachedRun:
    """One memoized anonymization run."""

    output: AlgorithmOutput
    #: Wall-clock seconds of the anonymization stage of the original run.
    anonymize_seconds: float
    #: Row count of each shard the original run executed (empty when the
    #: caller did not record a breakdown, e.g. harness-level entries).
    shard_sizes: tuple[int, ...] = ()


class ResultCache:
    """A bounded LRU cache of anonymization runs."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: OrderedDict[CacheKey, CachedRun] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(fingerprint: str, algorithm: str, l: int, shards: int = 1) -> CacheKey:
        return (fingerprint, algorithm, l, shards)

    def get(self, key: CacheKey) -> CachedRun | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, run: CachedRun) -> None:
        self._entries[key] = run
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}


_default_cache = ResultCache()


def default_cache() -> ResultCache:
    """The process-global result cache shared by the harness and the engine."""
    return _default_cache
