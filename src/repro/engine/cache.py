"""Per-run result caching: an in-process LRU tier over a persistent store.

Figure sweeps re-run identical ``(table, algorithm, l)`` combinations — the
stars-vs-l and time-vs-l drivers share every run, and TP+ re-runs TP
internally at the harness level when both are requested.  The cache stores
the :class:`~repro.engine.registry.AlgorithmOutput` *and* the seconds the
original run took, so a hit reproduces both the published table and a
faithful timing record.

The cache key is ``(fingerprint, algorithm, l, shards, backend, seed,
privacy)``.  Backend and seed are part of the key because a run's output is
only guaranteed reproducible for a fixed data-plane backend (group traversal
order can differ between the NumPy and reference paths) and a fixed RNG
seed; omitting them allowed a ``repro.backend`` toggle to replay stale runs.
``privacy`` is the canonical :meth:`~repro.privacy.spec.PrivacySpec.token`
of the requested privacy model and is present **even on the default path**
(``"frequency-l(l=...)"``) for the same reason: before it existed, a run
requesting a stricter spec (e.g. entropy l-diversity) at the same ``l``
would replay a frequency-l entry that never went through the enforcement
pass.

:class:`ResultCache` is a bounded in-memory LRU that can optionally sit as a
**read-through tier** over a persistent :class:`~repro.service.store.RunStore`:
misses in memory fall through to the store (when the caller supplies the
source table needed to rehydrate the published output), and puts are written
through, so repeated CLI invocations and figure sweeps reuse results across
processes.

All registered algorithms are deterministic (see their
:class:`~repro.engine.registry.AlgorithmInfo`), which is what makes replaying
a cached output equivalent to re-running; the engine refuses to cache runs of
algorithms declaring ``deterministic=False``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import backend as _backend
from repro.engine.registry import AlgorithmOutput
from repro.privacy.spec import FrequencyLDiversity, PrivacySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> engine)
    from repro.dataset.table import Table
    from repro.service.store import RunStore

__all__ = ["CachedRun", "ResultCache", "default_cache"]

#: Cache key: (table fingerprint, algorithm name, l, shard count, data-plane
#: backend, RNG seed, canonical privacy-spec token).
CacheKey = tuple[str, str, int, int, str, int, str]


@dataclass(frozen=True)
class CachedRun:
    """One memoized anonymization run."""

    output: AlgorithmOutput
    #: Wall-clock seconds of the anonymization stage of the original run.
    anonymize_seconds: float
    #: Row count of each shard the original run executed (empty when the
    #: caller did not record a breakdown, e.g. harness-level entries).
    shard_sizes: tuple[int, ...] = ()
    #: QI-group merges the spec enforcement pass performed on the original
    #: run; replayed so cached hits report the same provenance.
    enforcement_merges: int = 0


class ResultCache:
    """A bounded LRU cache of anonymization runs, optionally store-backed.

    Without a ``store`` this is a plain in-process LRU.  With one, ``get``
    falls through to the persistent tier on a memory miss (promoting hits
    back into memory) and ``put`` writes through, making results durable
    across processes.
    """

    def __init__(self, max_entries: int = 64, store: "RunStore | None" = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: OrderedDict[CacheKey, CachedRun] = OrderedDict()
        self.store = store
        self.memory_hits = 0
        self.store_hits = 0
        self.misses = 0

    @property
    def hits(self) -> int:
        """Total hits across the memory and store tiers."""
        return self.memory_hits + self.store_hits

    @staticmethod
    def key(
        fingerprint: str,
        algorithm: str,
        l: int,
        shards: int = 1,
        backend: str | None = None,
        seed: int = 0,
        privacy: "PrivacySpec | str | None" = None,
    ) -> CacheKey:
        """Build a cache key; ``backend`` defaults to the active backend.

        ``privacy`` may be a spec, its canonical token, or ``None`` — the
        default keeps the ``l``-as-sugar contract and resolves to the
        frequency-l token, so two different specs with equal ``l`` can never
        share an entry.
        """
        if backend is None:
            backend = _backend.current_backend()
        if privacy is None:
            privacy = FrequencyLDiversity(int(l)).token()
        elif isinstance(privacy, PrivacySpec):
            privacy = privacy.token()
        return (fingerprint, algorithm, l, shards, backend, seed, privacy)

    def get(self, key: CacheKey, table: "Table | None" = None) -> CachedRun | None:
        """Look up a run; memory first, then the persistent store.

        The store tier holds only the encoded generalization, so rehydrating
        a hit needs the source ``table`` (schema and SA values); without it
        only the memory tier is consulted.
        """
        entry, _tier = self.lookup(key, table)
        return entry

    def lookup(
        self, key: CacheKey, table: "Table | None" = None
    ) -> tuple[CachedRun | None, str | None]:
        """Like :meth:`get` but also reports which tier answered."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.memory_hits += 1
            return entry, "memory"
        if self.store is not None and table is not None:
            entry = self.store.get(key, table)
            if entry is not None:
                self.store_hits += 1
                self._insert(key, entry)  # promote for subsequent in-process hits
                return entry, "store"
        self.misses += 1
        return None, None

    def put(self, key: CacheKey, run: CachedRun) -> None:
        self._insert(key, run)
        if self.store is not None:
            self.store.put(key, run)

    def _insert(self, key: CacheKey, run: CachedRun) -> None:
        self._entries[key] = run
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.memory_hits = 0
        self.store_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def stats(self) -> dict[str, int]:
        stats = {
            "entries": len(self._entries),
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "misses": self.misses,
        }
        if self.store is not None:
            stats["store_entries"] = len(self.store)
        return stats


_default_cache = ResultCache()


def default_cache() -> ResultCache:
    """The process-global result cache shared by the harness and the engine."""
    return _default_cache
