"""The execution engine: plans, sharded runs, caching, verification.

:class:`Engine` is the one entry point through which the CLI, the experiment
harness and the scripts run anonymization:

* an unsharded :meth:`Engine.run` resolves the algorithm in the registry,
  loads the plan's :class:`~repro.engine.sources.DataSource` (optionally in
  bounded chunks), runs, verifies and computes the requested metrics;
* a sharded run (``plan.shards > 1``) splits the table into l-eligible
  QI-prefix shards (:func:`~repro.engine.sharding.qi_prefix_shards`),
  anonymizes them sequentially or on a process pool, merges the published
  shard tables and verifies that the merged table still satisfies
  l-diversity — this is the out-of-core / large-``n`` execution path;
* results are memoized in a :class:`~repro.engine.cache.ResultCache` keyed
  by ``(table fingerprint, algorithm, l, shards)`` so figure sweeps that
  revisit a combination replay it instead of recomputing.

Every stage is timed separately (load / anonymize / metrics) so regressions
can be attributed to the right layer.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import backend
from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.engine import algorithms as _builtin_algorithms  # noqa: F401 - registers entries
from repro.engine import metrics as _builtin_metrics  # noqa: F401 - registers entries
from repro.engine.cache import CachedRun, ResultCache, default_cache
from repro.engine.registry import (
    AlgorithmOutput,
    AlgorithmRegistry,
    MetricRegistry,
    algorithm_registry,
    metric_registry,
)
from repro.engine.sharding import merge_shard_outputs, qi_prefix_shards
from repro.engine.sources import DataSource, TableSource, concat_tables
from repro.errors import IneligibleTableError, VerificationError

__all__ = ["Engine", "RunPlan", "RunReport", "StageTimings"]


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds of the three pipeline stages."""

    load_seconds: float = 0.0
    anonymize_seconds: float = 0.0
    metrics_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.anonymize_seconds + self.metrics_seconds


@dataclass(frozen=True)
class RunPlan:
    """A declarative description of one anonymization run."""

    source: DataSource
    algorithm: str = "TP+"
    l: int = 2
    #: Number of QI-prefix shards; 1 = unsharded.  The effective count may be
    #: lower when the eligibility repair pass merges shards.
    shards: int = 1
    #: Process-pool width for sharded runs; 1 = sequential.
    workers: int = 1
    #: Metric names (from the metric registry) to evaluate on the output.
    metrics: tuple[str, ...] = ()
    #: Whether to consult/fill the result cache.
    use_cache: bool = True
    #: Whether to verify l-diversity of the published table.
    verify: bool = True
    #: When set, load the source through bounded chunks of this many rows.
    chunk_rows: int | None = None


@dataclass(frozen=True)
class RunReport:
    """Everything one :meth:`Engine.run` produced."""

    plan: RunPlan
    label: str
    n: int
    d: int
    generalized: GeneralizedTable
    timings: StageTimings
    #: Phase in which TP terminated; for sharded runs, the deepest phase any
    #: shard reached.
    phase_reached: int | None = None
    #: Metric name -> value, for the metrics requested by the plan.
    metric_values: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    #: Row count of each executed shard (one entry, ``n``, when unsharded).
    shard_sizes: tuple[int, ...] = ()
    #: Whether the published table was verified l-diverse.
    verified: bool = False


def _run_shard(job: tuple[str, Table, int, str]) -> AlgorithmOutput:
    """Process-pool entry point: anonymize one shard."""
    name, shard, l, backend_name = job
    # Workers started via spawn/forkserver re-import repro.backend and would
    # otherwise fall back to the default; mirror the parent's choice.
    backend.set_backend(backend_name)
    return algorithm_registry.get(name).runner(shard, l)


class Engine:
    """Executes :class:`RunPlan`\\ s against the algorithm/metric registries."""

    def __init__(
        self,
        algorithms: AlgorithmRegistry | None = None,
        metrics: MetricRegistry | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        self.algorithms = algorithms if algorithms is not None else algorithm_registry
        self.metrics = metrics if metrics is not None else metric_registry
        self.cache = cache if cache is not None else default_cache()

    # ------------------------------------------------------------------- runs

    def run(self, plan: RunPlan) -> RunReport:
        """Execute one plan: load, anonymize (possibly sharded), verify, measure."""
        info = self.algorithms.get(plan.algorithm)  # fail before loading anything
        for metric_name in plan.metrics:
            self.metrics.get(metric_name)
        if plan.shards > 1 and not info.supports_sharding:
            raise ValueError(
                f"algorithm {info.name!r} does not support sharded execution"
            )

        started = time.perf_counter()
        table = self._load(plan)
        load_seconds = time.perf_counter() - started

        output, anonymize_seconds, cache_hit, shard_sizes = self._anonymize(
            plan, info.name, table, cacheable=info.deterministic
        )

        started = time.perf_counter()
        verified = False
        if plan.verify:
            from repro.privacy.checks import verify_l_diversity

            if not verify_l_diversity(output.generalized, plan.l):
                raise VerificationError(
                    f"published table violates {plan.l}-diversity"
                )
            verified = True
        metric_values = {
            name: self.metrics.compute(name, table, output.generalized)
            for name in plan.metrics
        }
        metrics_seconds = time.perf_counter() - started

        return RunReport(
            plan=plan,
            label=plan.source.label,
            n=len(table),
            d=table.dimension,
            generalized=output.generalized,
            timings=StageTimings(load_seconds, anonymize_seconds, metrics_seconds),
            phase_reached=output.phase_reached,
            metric_values=metric_values,
            cache_hit=cache_hit,
            shard_sizes=shard_sizes,
            verified=verified,
        )

    def run_table(self, table: Table, algorithm: str, l: int, **plan_fields) -> RunReport:
        """Convenience wrapper: run directly on an in-memory table."""
        plan = RunPlan(source=TableSource(table), algorithm=algorithm, l=l, **plan_fields)
        return self.run(plan)

    # ---------------------------------------------------------------- stages

    @staticmethod
    def _load(plan: RunPlan) -> Table:
        if plan.chunk_rows is not None:
            return concat_tables(list(plan.source.iter_chunks(plan.chunk_rows)))
        return plan.source.load()

    def _anonymize(
        self, plan: RunPlan, name: str, table: Table, cacheable: bool
    ) -> tuple[AlgorithmOutput, float, bool, tuple[int, ...]]:
        use_cache = plan.use_cache and cacheable
        key = None
        if use_cache:
            key = ResultCache.key(table.fingerprint(), name, plan.l, plan.shards)
            cached = self.cache.get(key)
            if cached is not None:
                return cached.output, cached.anonymize_seconds, True, cached.shard_sizes

        started = time.perf_counter()
        if plan.shards > 1:
            output, shard_sizes = self._run_sharded(plan, name, table)
        else:
            if not table.is_l_eligible(plan.l):
                raise IneligibleTableError(
                    f"table is not {plan.l}-eligible; no l-diverse generalization exists"
                )
            output = self.algorithms.get(name).runner(table, plan.l)
            shard_sizes = (len(table),)
        anonymize_seconds = time.perf_counter() - started

        if use_cache and key is not None:
            self.cache.put(
                key,
                CachedRun(
                    output=output,
                    anonymize_seconds=anonymize_seconds,
                    shard_sizes=shard_sizes,
                ),
            )
        return output, anonymize_seconds, False, shard_sizes

    def _run_sharded(
        self, plan: RunPlan, name: str, table: Table
    ) -> tuple[AlgorithmOutput, tuple[int, ...]]:
        shard_rows = qi_prefix_shards(table, plan.shards, plan.l)
        shard_tables = [table.subset(rows) for rows in shard_rows]
        jobs = [
            (name, shard, plan.l, backend.current_backend()) for shard in shard_tables
        ]
        if plan.workers > 1 and len(jobs) > 1:
            with ProcessPoolExecutor(max_workers=min(plan.workers, len(jobs))) as pool:
                outputs = list(pool.map(_run_shard, jobs))
        else:
            outputs = [_run_shard(job) for job in jobs]
        # Structural merge only; the single l-diversity verification of the
        # merged table happens in run()'s verify stage (plan.verify).
        merged = merge_shard_outputs(table, shard_rows, outputs, plan.l, verify=False)
        phases = [output.phase_reached for output in outputs if output.phase_reached]
        return (
            AlgorithmOutput(merged, phase_reached=max(phases) if phases else None),
            tuple(len(rows) for rows in shard_rows),
        )
