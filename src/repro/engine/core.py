"""The execution engine: plans, sharded runs, caching, verification.

:class:`Engine` is the one entry point through which the CLI, the experiment
harness, the job service and the scripts run anonymization:

* every plan targets a privacy model: :attr:`RunPlan.privacy` is a
  :class:`~repro.privacy.spec.PrivacySpec` (``None`` keeps the historical
  sugar — ``l=`` means frequency l-diversity); the engine resolves the spec
  once, runs the core algorithms at the spec's derived frequency parameter,
  applies the post-anonymization enforcement pass
  (:func:`~repro.privacy.spec.enforce_spec`) for the specs that frequency
  guarantee does not already imply — for implied specs, the default path
  included, the pass is skipped so a violating group surfaces as a
  verification error instead of being repaired away — and verifies the
  published table against the spec;
* an unsharded :meth:`Engine.run` resolves the algorithm in the registry,
  loads the plan's :class:`~repro.engine.sources.DataSource` (optionally in
  bounded chunks), runs, verifies and computes the requested metrics;
* a sharded run splits the table into spec-eligible QI-prefix shards
  (:func:`~repro.engine.sharding.qi_prefix_shards`), anonymizes them
  sequentially or on a process pool, merges the published shard tables and
  verifies that the merged table still satisfies the spec — this is the
  out-of-core / large-``n`` execution path;
* plan dimensions left unset (``shards``/``workers`` of ``None``) are
  resolved by the cost-based
  :class:`~repro.service.planner.ExecutionPlanner` from the loaded table's
  statistics, replacing hand-tuned per-invocation defaults;
* results are memoized in a :class:`~repro.engine.cache.ResultCache` keyed
  by ``(fingerprint, algorithm, l, shards, backend, seed, privacy)``; when
  the cache is backed by a persistent :class:`~repro.service.store.RunStore`,
  repeated runs are served across processes and the report says which tier
  answered.

Every stage is timed separately (load / anonymize / metrics) so regressions
can be attributed to the right layer.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import backend, profiling
from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.engine import algorithms as _builtin_algorithms  # noqa: F401 - registers entries
from repro.engine import metrics as _builtin_metrics  # noqa: F401 - registers entries
from repro.engine.cache import CachedRun, ResultCache, default_cache
from repro.engine.registry import (
    AlgorithmOutput,
    AlgorithmRegistry,
    MetricRegistry,
    algorithm_registry,
    metric_registry,
)
from repro.engine.sharding import merge_shard_outputs, qi_prefix_shards
from repro.engine.sources import DataSource, TableSource, concat_tables
from repro.errors import IneligibleTableError, VerificationError
from repro.privacy.spec import (
    PrivacySpec,
    enforce_spec,
    privacy_registry,
    resolve_privacy,
)

if TYPE_CHECKING:  # pragma: no cover - layering: service imports engine
    from repro.service.planner import ExecutionDecision, ExecutionPlanner
    from repro.service.store import RunStore

__all__ = ["Engine", "RunPlan", "RunReport", "StageTimings", "run_with_spec"]


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds of the three pipeline stages."""

    load_seconds: float = 0.0
    anonymize_seconds: float = 0.0
    metrics_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.anonymize_seconds + self.metrics_seconds


@dataclass(frozen=True)
class RunPlan:
    """A declarative description of one anonymization run.

    ``shards`` and ``workers`` default to ``None``, meaning *let the
    cost-based planner decide from the loaded table's statistics*; pass
    explicit integers to pin them.  ``backend`` of ``None`` keeps the
    process-wide data-plane backend, ``"auto"`` asks the planner for the
    calibrated choice, and a concrete name pins it for this run.
    """

    source: DataSource
    algorithm: str = "TP+"
    #: Frequency-diversity sugar: when :attr:`privacy` is unset, the plan
    #: targets ``FrequencyLDiversity(l)`` — the historical contract.
    l: int = 2
    #: The privacy model to enforce (a :class:`~repro.privacy.spec.PrivacySpec`
    #: or its dict encoding); ``None`` resolves to ``FrequencyLDiversity(l)``.
    #: When set, it overrides ``l``.
    privacy: "PrivacySpec | dict | None" = None
    #: Number of QI-prefix shards; 1 = unsharded, None = planner-chosen.  The
    #: effective count may be lower when the eligibility repair pass merges.
    shards: int | None = None
    #: Process-pool width for sharded runs; 1 = sequential, None = planner.
    workers: int | None = None
    #: Data-plane backend: None = process default, "auto" = planner-chosen.
    backend: str | None = None
    #: RNG seed recorded in the cache key (reserved for randomized algorithms;
    #: every built-in is deterministic and ignores it).
    seed: int = 0
    #: Metric names (from the metric registry) to evaluate on the output.
    metrics: tuple[str, ...] = ()
    #: Whether to consult/fill the result cache.
    use_cache: bool = True
    #: Whether to verify the published table against the privacy spec.
    verify: bool = True
    #: When set, load the source through bounded chunks of this many rows.
    chunk_rows: int | None = None
    #: Trace id of the request that scheduled this run (empty for direct
    #: CLI/library use).  Carried into the report; never part of cache keys.
    request_id: str = ""

    def resolved_privacy(self) -> PrivacySpec:
        """The concrete privacy spec this plan targets (``l`` sugar resolved)."""
        return resolve_privacy(self.privacy, self.l)


@dataclass(frozen=True)
class RunReport:
    """Everything one :meth:`Engine.run` produced."""

    plan: RunPlan
    label: str
    n: int
    d: int
    generalized: GeneralizedTable
    timings: StageTimings
    #: Phase in which TP terminated; for sharded runs, the deepest phase any
    #: shard reached.
    phase_reached: int | None = None
    #: Metric name -> value, for the metrics requested by the plan.
    metric_values: dict[str, float] = field(default_factory=dict)
    #: Whether the anonymization was replayed from a cache tier at all.
    cache_hit: bool = False
    #: Whether the hit came from the *persistent* store tier (cross-process).
    store_hit: bool = False
    #: Snapshot of the engine cache's hit/miss counters after this run.
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Row count of each executed shard (one entry, ``n``, when unsharded).
    shard_sizes: tuple[int, ...] = ()
    #: Whether the published table was verified against the privacy spec.
    verified: bool = False
    #: The planner's resolved configuration for this run.
    decision: "ExecutionDecision | None" = None
    #: The resolved privacy spec the run enforced and verified.
    privacy: "PrivacySpec | None" = None
    #: QI-group merges performed by the enforcement pass (0 whenever the
    #: algorithms' frequency guarantee already implied the spec).
    enforcement_merges: int = 0
    #: Per-stage wall-clock seconds (``load`` / ``encode`` / ``state-init`` /
    #: ``phase1``..``phase3`` / ``publish`` / ``merge`` / ``metrics``) when
    #: ``REPRO_PROFILE`` is set; ``None`` otherwise.
    profile: dict[str, float] | None = None
    #: Trace id propagated from :attr:`RunPlan.request_id`.
    request_id: str = ""


def run_with_spec(runner, table: Table, spec: PrivacySpec) -> AlgorithmOutput:
    """Run one algorithm on a table under a privacy spec.

    The core algorithms optimize frequency l-diversity; they run at the
    spec's derived frequency parameter.  SA-blind specs (k-anonymity)
    anonymize a surrogate table with an all-distinct sensitive column and
    the published table is rebuilt from the output partition against the
    original table — cells depend only on the QI values and the partition,
    so the rebuild restores the original schema and sensitive column
    without changing the generalization.
    """
    run_table = spec.prepare_table(table)
    output = runner(run_table, spec.anonymize_l())
    if run_table is not table:
        from repro.dataset.generalized import Partition

        partition = Partition.trusted(
            [list(rows) for rows in output.generalized.groups().values()], len(table)
        )
        output = AlgorithmOutput(
            GeneralizedTable.from_partition(table, partition),
            phase_reached=output.phase_reached,
        )
    return output


def _run_shard(job: tuple[str, Table, PrivacySpec, str]) -> AlgorithmOutput:
    """Process-pool entry point: anonymize one shard."""
    name, shard, spec, backend_name = job
    # Workers started via spawn/forkserver re-import repro.backend and would
    # otherwise fall back to the default; mirror the parent's choice.
    backend.set_backend(backend_name)
    return run_with_spec(algorithm_registry.get(name).runner, shard, spec)


class Engine:
    """Executes :class:`RunPlan`\\ s against the algorithm/metric registries."""

    def __init__(
        self,
        algorithms: AlgorithmRegistry | None = None,
        metrics: MetricRegistry | None = None,
        cache: ResultCache | None = None,
        planner: "ExecutionPlanner | None" = None,
        store: "RunStore | None" = None,
    ) -> None:
        self.algorithms = algorithms if algorithms is not None else algorithm_registry
        self.metrics = metrics if metrics is not None else metric_registry
        if cache is None:
            cache = ResultCache(store=store) if store is not None else default_cache()
        elif store is not None and cache.store is not store:
            # Attaching the store to a caller-owned cache (possibly the
            # process-global default) would be a lasting side effect the
            # caller never asked for; make the conflict explicit instead.
            raise ValueError(
                "pass either cache= or store=, or a cache already backed by that store"
            )
        self.cache = cache
        if planner is None:
            from repro.service.planner import default_planner

            planner = default_planner()
        self.planner = planner

    # ------------------------------------------------------------------- runs

    def run(self, plan: RunPlan) -> RunReport:
        """Execute one plan: load, resolve, anonymize (possibly sharded), verify."""
        info = self.algorithms.get(plan.algorithm)  # fail before loading anything
        spec = plan.resolved_privacy()
        if not privacy_registry.get(spec.kind).enforceable:
            raise ValueError(
                f"privacy model {spec.kind!r} is check-only and cannot be "
                "requested as an anonymization target"
            )
        for metric_name in plan.metrics:
            self.metrics.get(metric_name)
        if plan.shards is not None and plan.shards > 1 and not info.supports_sharding:
            raise ValueError(
                f"algorithm {info.name!r} does not support sharded execution"
            )

        if profiling.enabled():
            profiling.reset()
        started = time.perf_counter()
        with profiling.profile_stage("load"):
            table = self._load(plan)
        load_seconds = time.perf_counter() - started

        decision = self.planner.decide(
            info,
            n=len(table),
            d=table.dimension,
            l=plan.l,
            shards=plan.shards,
            workers=plan.workers,
            backend=plan.backend,
            privacy=spec,
        )

        with backend.use_backend(decision.backend):
            output, anonymize_seconds, tier, shard_sizes, merges = self._anonymize(
                plan, info.name, table, decision, cacheable=info.deterministic,
                spec=spec,
            )

            started = time.perf_counter()
            verified = False
            with profiling.profile_stage("metrics"):
                if plan.verify:
                    if not spec.check_generalized(output.generalized):
                        raise VerificationError(
                            f"published table violates {spec.describe()}"
                        )
                    verified = True
                metric_values = {
                    name: self.metrics.compute(name, table, output.generalized)
                    for name in plan.metrics
                }
            metrics_seconds = time.perf_counter() - started

        return RunReport(
            plan=plan,
            label=plan.source.label,
            n=len(table),
            d=table.dimension,
            generalized=output.generalized,
            timings=StageTimings(load_seconds, anonymize_seconds, metrics_seconds),
            phase_reached=output.phase_reached,
            metric_values=metric_values,
            cache_hit=tier is not None,
            store_hit=tier == "store",
            cache_stats=self.cache.stats(),
            shard_sizes=shard_sizes,
            verified=verified,
            decision=decision,
            privacy=spec,
            enforcement_merges=merges,
            profile=profiling.snapshot() if profiling.enabled() else None,
            request_id=plan.request_id,
        )

    def run_table(self, table: Table, algorithm: str, l: int, **plan_fields) -> RunReport:
        """Convenience wrapper: run directly on an in-memory table."""
        plan = RunPlan(source=TableSource(table), algorithm=algorithm, l=l, **plan_fields)
        return self.run(plan)

    # ---------------------------------------------------------------- stages

    @staticmethod
    def _load(plan: RunPlan) -> Table:
        if plan.chunk_rows is not None:
            return concat_tables(list(plan.source.iter_chunks(plan.chunk_rows)))
        return plan.source.load()

    def _anonymize(
        self,
        plan: RunPlan,
        name: str,
        table: Table,
        decision: "ExecutionDecision",
        cacheable: bool,
        spec: PrivacySpec,
    ) -> tuple[AlgorithmOutput, float, str | None, tuple[int, ...], int]:
        use_cache = plan.use_cache and cacheable
        key = None
        if use_cache:
            # The key's l component is derived from the spec, not plan.l:
            # with an explicit spec, plan.l is only a display hint and
            # letting it vary (CLI vs HTTP defaults, client-chosen hints)
            # would fragment the cache for identical workloads.
            key = ResultCache.key(
                table.fingerprint(),
                name,
                spec.anonymize_l(),
                decision.shards,
                decision.backend,
                plan.seed,
                privacy=spec,
            )
            cached, tier = self.cache.lookup(key, table)
            if cached is not None:
                # Cached entries were enforced before being stored.
                return (
                    cached.output, cached.anonymize_seconds, tier,
                    cached.shard_sizes, cached.enforcement_merges,
                )

        started = time.perf_counter()
        with profiling.maybe_cprofile(f"anonymize {name} n={len(table)}"):
            if decision.shards > 1:
                output, shard_sizes = self._run_sharded(plan, name, table, decision, spec)
            else:
                if not spec.eligible(table.sa_counts(), len(table)):
                    raise IneligibleTableError(
                        f"table is not eligible for {spec.describe()}; "
                        "no satisfying generalization exists"
                    )
                output = run_with_spec(self.algorithms.get(name).runner, table, spec)
                shard_sizes = (len(table),)
        # Enforcement pass — only for specs the algorithms' frequency
        # guarantee does not already imply (recursive-cl with c <= 1).  For
        # implied specs (the default path included) a violating group can
        # only mean a broken algorithm or merge invariant, which must reach
        # the verify stage as an error, never be silently repaired away.
        merges = 0
        if not spec.implied_by_frequency():
            enforced, merges = enforce_spec(table, output.generalized, spec)
            if merges:
                output = AlgorithmOutput(enforced, phase_reached=output.phase_reached)
        anonymize_seconds = time.perf_counter() - started

        if use_cache and key is not None:
            self.cache.put(
                key,
                CachedRun(
                    output=output,
                    anonymize_seconds=anonymize_seconds,
                    shard_sizes=shard_sizes,
                    enforcement_merges=merges,
                ),
            )
        return output, anonymize_seconds, None, shard_sizes, merges

    def _run_sharded(
        self,
        plan: RunPlan,
        name: str,
        table: Table,
        decision: "ExecutionDecision",
        spec: PrivacySpec,
    ) -> tuple[AlgorithmOutput, tuple[int, ...]]:
        shard_rows = qi_prefix_shards(table, decision.shards, spec)
        shard_tables = [table.subset(rows) for rows in shard_rows]
        jobs = [
            (name, shard, spec, backend.current_backend()) for shard in shard_tables
        ]
        if decision.workers > 1 and len(jobs) > 1:
            with ProcessPoolExecutor(max_workers=min(decision.workers, len(jobs))) as pool:
                outputs = list(pool.map(_run_shard, jobs))
        else:
            outputs = [_run_shard(job) for job in jobs]
        # Structural merge only; verification of the merged table against the
        # spec happens in run()'s verify stage (plan.verify), after the
        # enforcement pass has had its chance to repair across shards.
        with profiling.profile_stage("merge"):
            merged = merge_shard_outputs(table, shard_rows, outputs, spec, verify=False)
        phases = [output.phase_reached for output in outputs if output.phase_reached]
        return (
            AlgorithmOutput(merged, phase_reached=max(phases) if phases else None),
            tuple(len(rows) for rows in shard_rows),
        )
