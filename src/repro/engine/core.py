"""The execution engine: plans, sharded runs, caching, verification.

:class:`Engine` is the one entry point through which the CLI, the experiment
harness, the job service and the scripts run anonymization:

* an unsharded :meth:`Engine.run` resolves the algorithm in the registry,
  loads the plan's :class:`~repro.engine.sources.DataSource` (optionally in
  bounded chunks), runs, verifies and computes the requested metrics;
* a sharded run splits the table into l-eligible QI-prefix shards
  (:func:`~repro.engine.sharding.qi_prefix_shards`), anonymizes them
  sequentially or on a process pool, merges the published shard tables and
  verifies that the merged table still satisfies l-diversity — this is the
  out-of-core / large-``n`` execution path;
* plan dimensions left unset (``shards``/``workers`` of ``None``) are
  resolved by the cost-based
  :class:`~repro.service.planner.ExecutionPlanner` from the loaded table's
  statistics, replacing hand-tuned per-invocation defaults;
* results are memoized in a :class:`~repro.engine.cache.ResultCache` keyed
  by ``(fingerprint, algorithm, l, shards, backend, seed)``; when the cache
  is backed by a persistent :class:`~repro.service.store.RunStore`, repeated
  runs are served across processes and the report says which tier answered.

Every stage is timed separately (load / anonymize / metrics) so regressions
can be attributed to the right layer.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import backend
from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.engine import algorithms as _builtin_algorithms  # noqa: F401 - registers entries
from repro.engine import metrics as _builtin_metrics  # noqa: F401 - registers entries
from repro.engine.cache import CachedRun, ResultCache, default_cache
from repro.engine.registry import (
    AlgorithmOutput,
    AlgorithmRegistry,
    MetricRegistry,
    algorithm_registry,
    metric_registry,
)
from repro.engine.sharding import merge_shard_outputs, qi_prefix_shards
from repro.engine.sources import DataSource, TableSource, concat_tables
from repro.errors import IneligibleTableError, VerificationError

if TYPE_CHECKING:  # pragma: no cover - layering: service imports engine
    from repro.service.planner import ExecutionDecision, ExecutionPlanner
    from repro.service.store import RunStore

__all__ = ["Engine", "RunPlan", "RunReport", "StageTimings"]


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds of the three pipeline stages."""

    load_seconds: float = 0.0
    anonymize_seconds: float = 0.0
    metrics_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.anonymize_seconds + self.metrics_seconds


@dataclass(frozen=True)
class RunPlan:
    """A declarative description of one anonymization run.

    ``shards`` and ``workers`` default to ``None``, meaning *let the
    cost-based planner decide from the loaded table's statistics*; pass
    explicit integers to pin them.  ``backend`` of ``None`` keeps the
    process-wide data-plane backend, ``"auto"`` asks the planner for the
    calibrated choice, and a concrete name pins it for this run.
    """

    source: DataSource
    algorithm: str = "TP+"
    l: int = 2
    #: Number of QI-prefix shards; 1 = unsharded, None = planner-chosen.  The
    #: effective count may be lower when the eligibility repair pass merges.
    shards: int | None = None
    #: Process-pool width for sharded runs; 1 = sequential, None = planner.
    workers: int | None = None
    #: Data-plane backend: None = process default, "auto" = planner-chosen.
    backend: str | None = None
    #: RNG seed recorded in the cache key (reserved for randomized algorithms;
    #: every built-in is deterministic and ignores it).
    seed: int = 0
    #: Metric names (from the metric registry) to evaluate on the output.
    metrics: tuple[str, ...] = ()
    #: Whether to consult/fill the result cache.
    use_cache: bool = True
    #: Whether to verify l-diversity of the published table.
    verify: bool = True
    #: When set, load the source through bounded chunks of this many rows.
    chunk_rows: int | None = None


@dataclass(frozen=True)
class RunReport:
    """Everything one :meth:`Engine.run` produced."""

    plan: RunPlan
    label: str
    n: int
    d: int
    generalized: GeneralizedTable
    timings: StageTimings
    #: Phase in which TP terminated; for sharded runs, the deepest phase any
    #: shard reached.
    phase_reached: int | None = None
    #: Metric name -> value, for the metrics requested by the plan.
    metric_values: dict[str, float] = field(default_factory=dict)
    #: Whether the anonymization was replayed from a cache tier at all.
    cache_hit: bool = False
    #: Whether the hit came from the *persistent* store tier (cross-process).
    store_hit: bool = False
    #: Snapshot of the engine cache's hit/miss counters after this run.
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Row count of each executed shard (one entry, ``n``, when unsharded).
    shard_sizes: tuple[int, ...] = ()
    #: Whether the published table was verified l-diverse.
    verified: bool = False
    #: The planner's resolved configuration for this run.
    decision: "ExecutionDecision | None" = None


def _run_shard(job: tuple[str, Table, int, str]) -> AlgorithmOutput:
    """Process-pool entry point: anonymize one shard."""
    name, shard, l, backend_name = job
    # Workers started via spawn/forkserver re-import repro.backend and would
    # otherwise fall back to the default; mirror the parent's choice.
    backend.set_backend(backend_name)
    return algorithm_registry.get(name).runner(shard, l)


class Engine:
    """Executes :class:`RunPlan`\\ s against the algorithm/metric registries."""

    def __init__(
        self,
        algorithms: AlgorithmRegistry | None = None,
        metrics: MetricRegistry | None = None,
        cache: ResultCache | None = None,
        planner: "ExecutionPlanner | None" = None,
        store: "RunStore | None" = None,
    ) -> None:
        self.algorithms = algorithms if algorithms is not None else algorithm_registry
        self.metrics = metrics if metrics is not None else metric_registry
        if cache is None:
            cache = ResultCache(store=store) if store is not None else default_cache()
        elif store is not None and cache.store is not store:
            # Attaching the store to a caller-owned cache (possibly the
            # process-global default) would be a lasting side effect the
            # caller never asked for; make the conflict explicit instead.
            raise ValueError(
                "pass either cache= or store=, or a cache already backed by that store"
            )
        self.cache = cache
        if planner is None:
            from repro.service.planner import default_planner

            planner = default_planner()
        self.planner = planner

    # ------------------------------------------------------------------- runs

    def run(self, plan: RunPlan) -> RunReport:
        """Execute one plan: load, resolve, anonymize (possibly sharded), verify."""
        info = self.algorithms.get(plan.algorithm)  # fail before loading anything
        for metric_name in plan.metrics:
            self.metrics.get(metric_name)
        if plan.shards is not None and plan.shards > 1 and not info.supports_sharding:
            raise ValueError(
                f"algorithm {info.name!r} does not support sharded execution"
            )

        started = time.perf_counter()
        table = self._load(plan)
        load_seconds = time.perf_counter() - started

        decision = self.planner.decide(
            info,
            n=len(table),
            d=table.dimension,
            l=plan.l,
            shards=plan.shards,
            workers=plan.workers,
            backend=plan.backend,
        )

        with backend.use_backend(decision.backend):
            output, anonymize_seconds, tier, shard_sizes = self._anonymize(
                plan, info.name, table, decision, cacheable=info.deterministic
            )

            started = time.perf_counter()
            verified = False
            if plan.verify:
                from repro.privacy.checks import verify_l_diversity

                if not verify_l_diversity(output.generalized, plan.l):
                    raise VerificationError(
                        f"published table violates {plan.l}-diversity"
                    )
                verified = True
            metric_values = {
                name: self.metrics.compute(name, table, output.generalized)
                for name in plan.metrics
            }
            metrics_seconds = time.perf_counter() - started

        return RunReport(
            plan=plan,
            label=plan.source.label,
            n=len(table),
            d=table.dimension,
            generalized=output.generalized,
            timings=StageTimings(load_seconds, anonymize_seconds, metrics_seconds),
            phase_reached=output.phase_reached,
            metric_values=metric_values,
            cache_hit=tier is not None,
            store_hit=tier == "store",
            cache_stats=self.cache.stats(),
            shard_sizes=shard_sizes,
            verified=verified,
            decision=decision,
        )

    def run_table(self, table: Table, algorithm: str, l: int, **plan_fields) -> RunReport:
        """Convenience wrapper: run directly on an in-memory table."""
        plan = RunPlan(source=TableSource(table), algorithm=algorithm, l=l, **plan_fields)
        return self.run(plan)

    # ---------------------------------------------------------------- stages

    @staticmethod
    def _load(plan: RunPlan) -> Table:
        if plan.chunk_rows is not None:
            return concat_tables(list(plan.source.iter_chunks(plan.chunk_rows)))
        return plan.source.load()

    def _anonymize(
        self,
        plan: RunPlan,
        name: str,
        table: Table,
        decision: "ExecutionDecision",
        cacheable: bool,
    ) -> tuple[AlgorithmOutput, float, str | None, tuple[int, ...]]:
        use_cache = plan.use_cache and cacheable
        key = None
        if use_cache:
            key = ResultCache.key(
                table.fingerprint(),
                name,
                plan.l,
                decision.shards,
                decision.backend,
                plan.seed,
            )
            cached, tier = self.cache.lookup(key, table)
            if cached is not None:
                return cached.output, cached.anonymize_seconds, tier, cached.shard_sizes

        started = time.perf_counter()
        if decision.shards > 1:
            output, shard_sizes = self._run_sharded(plan, name, table, decision)
        else:
            if not table.is_l_eligible(plan.l):
                raise IneligibleTableError(
                    f"table is not {plan.l}-eligible; no l-diverse generalization exists"
                )
            output = self.algorithms.get(name).runner(table, plan.l)
            shard_sizes = (len(table),)
        anonymize_seconds = time.perf_counter() - started

        if use_cache and key is not None:
            self.cache.put(
                key,
                CachedRun(
                    output=output,
                    anonymize_seconds=anonymize_seconds,
                    shard_sizes=shard_sizes,
                ),
            )
        return output, anonymize_seconds, None, shard_sizes

    def _run_sharded(
        self, plan: RunPlan, name: str, table: Table, decision: "ExecutionDecision"
    ) -> tuple[AlgorithmOutput, tuple[int, ...]]:
        shard_rows = qi_prefix_shards(table, decision.shards, plan.l)
        shard_tables = [table.subset(rows) for rows in shard_rows]
        jobs = [
            (name, shard, plan.l, backend.current_backend()) for shard in shard_tables
        ]
        if decision.workers > 1 and len(jobs) > 1:
            with ProcessPoolExecutor(max_workers=min(decision.workers, len(jobs))) as pool:
                outputs = list(pool.map(_run_shard, jobs))
        else:
            outputs = [_run_shard(job) for job in jobs]
        # Structural merge only; the single l-diversity verification of the
        # merged table happens in run()'s verify stage (plan.verify).
        merged = merge_shard_outputs(table, shard_rows, outputs, plan.l, verify=False)
        phases = [output.phase_reached for output in outputs if output.phase_reached]
        return (
            AlgorithmOutput(merged, phase_reached=max(phases) if phases else None),
            tuple(len(rows) for rows in shard_rows),
        )
