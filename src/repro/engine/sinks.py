"""Output adapters: incremental CSV export of published tables.

The mirror image of :mod:`repro.engine.sources`: a :class:`CsvSink` writes
the published generalized table to a CSV file **incrementally** — header
first, then any number of row batches — so the streaming pipeline can emit
each anonymized shard as soon as it is finished instead of materializing the
whole published table.  The in-memory CLI path uses the same sink for its
``--output`` export, so both paths render cells identically:

* exact cells decode to their raw value;
* suppressed cells render as ``*``;
* sub-domain cells (TDS / Mondrian) render as ``{a|b|c}`` over the sorted
  decoded values.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Schema

__all__ = ["CsvSink", "render_cell_value"]


def render_cell_value(value: object) -> object:
    """Render one decoded cell value for CSV export."""
    if isinstance(value, tuple):
        return "{" + "|".join(str(item) for item in value) + "}"
    return value


class CsvSink:
    """Writes published generalized rows to a CSV file, batch by batch.

    Usage::

        with CsvSink(path) as sink:
            sink.open(schema)
            for generalized in shard_outputs:
                sink.write_table(generalized)
    """

    def __init__(self, path: str | Path, delimiter: str = ",") -> None:
        self.path = str(path)
        self.delimiter = delimiter
        self._handle = None
        self._writer: csv.DictWriter | None = None
        self._field_names: list[str] = []
        self.rows_written = 0

    def open(self, schema: Schema) -> "CsvSink":
        """Open the file and write the header row for ``schema``."""
        if self._writer is not None:
            raise ValueError(f"sink for {self.path} is already open")
        self._field_names = list(schema.qi_names) + [schema.sensitive.name]
        self._handle = open(self.path, "w", newline="")
        self._writer = csv.DictWriter(
            self._handle, fieldnames=self._field_names, delimiter=self.delimiter
        )
        self._writer.writeheader()
        return self

    def write_table(self, generalized: GeneralizedTable) -> int:
        """Append every row of ``generalized``; returns the rows written."""
        if self._writer is None:
            self.open(generalized.schema)
        assert self._writer is not None
        for row in range(len(generalized)):
            record = generalized.decoded_record(row)
            self._writer.writerow(
                {name: render_cell_value(record[name]) for name in self._field_names}
            )
        self.rows_written += len(generalized)
        return len(generalized)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._writer = None

    def __enter__(self) -> "CsvSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsvSink({self.path!r}, rows_written={self.rows_written})"
