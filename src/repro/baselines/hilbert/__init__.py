"""Hilbert-curve based l-diverse suppression (the paper's ``Hilbert`` baseline)."""

from repro.baselines.hilbert.anonymizer import (
    HilbertResult,
    anonymize,
    hilbert_order,
    hilbert_refiner,
    partition_rows,
)
from repro.baselines.hilbert.curve import hilbert_index, hilbert_indices

__all__ = [
    "HilbertResult",
    "anonymize",
    "hilbert_index",
    "hilbert_indices",
    "hilbert_order",
    "hilbert_refiner",
    "partition_rows",
]
