"""Suppression-based l-diverse partitioning along the Hilbert curve.

This is the ``Hilbert`` baseline of Section 6.1: the multi-dimensional
algorithm of Ghinita et al. [16] adapted to suppression (the paper does the
same adaptation when comparing against it).  Tuples are sorted by their
Hilbert index over the QI space; the sorted sequence is then scanned once,
greedily closing a QI-group as soon as it is l-eligible.  Curve locality
means consecutive tuples tend to agree on many QI attributes, so the
resulting groups are cheap in stars even though the algorithm is oblivious
to the global structure the TP algorithm exploits.

The same partitioning routine doubles as the residue refiner inside TP+
(:func:`hilbert_refiner`).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.backend import vectorized_enabled
from repro.baselines.hilbert.curve import bits_needed, hilbert_index, hilbert_indices_vectorized
from repro.core import kernels
from repro.core.eligibility import is_l_eligible
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Table
from repro.errors import IneligibleTableError

__all__ = [
    "HilbertResult",
    "anonymize",
    "hilbert_order",
    "hilbert_order_reference",
    "hilbert_refiner",
    "partition_rows",
]


@dataclass(frozen=True)
class HilbertResult:
    """Outcome of the Hilbert baseline."""

    table: Table
    l: int
    partition: Partition
    generalized: GeneralizedTable

    @property
    def star_count(self) -> int:
        return self.generalized.star_count()

    @property
    def suppressed_tuple_count(self) -> int:
        return self.generalized.suppressed_tuple_count()


def hilbert_order(table: Table, rows: Sequence[int] | None = None) -> list[int]:
    """Row indices sorted by Hilbert index over the QI space.

    Ties (identical QI vectors) are broken by row index so the order is
    deterministic.
    """
    bits = bits_needed([attribute.size for attribute in table.schema.qi])
    if vectorized_enabled() and bits * table.dimension <= 62:
        if rows is None:
            row_index = np.arange(len(table), dtype=np.int64)
            coords = table.qi_columns
        else:
            row_index = np.asarray(list(rows), dtype=np.int64)
            coords = table.qi_columns[row_index]
        if row_index.size == 0:
            return []
        # The Skilling transform is embarrassingly row-parallel and NumPy
        # releases the GIL, so large batches are encoded in chunks across
        # the kernel thread pool.
        keys = kernels.row_chunked(
            lambda chunk: hilbert_indices_vectorized(chunk, bits), coords
        )
        # lexsort sorts by the last key first: primary = Hilbert key,
        # ties broken by ascending row index, as in the reference path.
        order = np.lexsort((row_index, keys))
        return row_index[order].tolist()
    return hilbert_order_reference(table, rows)


def hilbert_order_reference(table: Table, rows: Sequence[int] | None = None) -> list[int]:
    """Pure-Python Hilbert ordering (the oracle for the vectorized path)."""
    if rows is None:
        rows = range(len(table))
    bits = bits_needed([attribute.size for attribute in table.schema.qi])
    keyed = [(hilbert_index(table.qi_row(row), bits), row) for row in rows]
    keyed.sort()
    return [row for _key, row in keyed]


def partition_rows(table: Table, rows: Sequence[int], l: int) -> list[list[int]]:
    """Partition ``rows`` into l-eligible QI-groups of curve-adjacent tuples.

    The multiset of sensitive values of ``rows`` must itself be l-eligible;
    otherwise no valid partition exists and
    :class:`~repro.errors.IneligibleTableError` is raised.

    The scan closes the running group as soon as it becomes l-eligible (and
    has at least ``l`` tuples).  Any ineligible tail left at the end of the
    scan is merged backwards into the previously closed groups until the
    union becomes eligible again, which always terminates because the full
    input is eligible (Lemma 1 guarantees merging preserves eligibility of
    the already-closed part).
    """
    rows = list(rows)
    if not rows:
        return []
    sa = table.sa_values
    overall = Counter(sa[row] for row in rows)
    if not is_l_eligible(overall, l):
        raise IneligibleTableError(
            "the given rows are not l-eligible; they cannot be partitioned into "
            "l-eligible QI-groups"
        )

    ordered = hilbert_order(table, rows)
    groups: list[list[int]] = []
    current: list[int] = []
    current_counts: Counter[int] = Counter()
    # Track the pillar height incrementally (it only grows within a running
    # group), so the closure test is O(1) per tuple instead of a histogram
    # scan: the group closes when |G| >= l and l * h(G) <= |G|.
    current_height = 0
    current_size = 0
    for row in ordered:
        current.append(row)
        value = sa[row]
        count = current_counts[value] + 1
        current_counts[value] = count
        current_size += 1
        if count > current_height:
            current_height = count
        if current_size >= l and l * current_height <= current_size:
            groups.append(current)
            current = []
            current_counts = Counter()
            current_height = 0
            current_size = 0

    if current:
        # Merge the ineligible tail backwards until eligibility is restored.
        tail = current
        tail_counts = current_counts
        while groups and not is_l_eligible(tail_counts, l):
            previous = groups.pop()
            tail = previous + tail
            tail_counts.update(sa[row] for row in previous)
        groups.append(tail)
    return groups


def hilbert_refiner(table: Table, rows: Sequence[int], l: int) -> list[list[int]]:
    """Residue refiner used by TP+ — simply :func:`partition_rows`."""
    return partition_rows(table, rows, l)


def anonymize(table: Table, l: int) -> HilbertResult:
    """Compute an l-diverse suppression of ``table`` with the Hilbert baseline."""
    if l < 2:
        raise ValueError(f"l must be >= 2 for anonymization, got {l}")
    if not table.is_l_eligible(l):
        raise IneligibleTableError(
            f"table is not {l}-eligible; no l-diverse generalization exists"
        )
    groups = partition_rows(table, list(range(len(table))), l)
    # Valid by construction: the scan partitions the full Hilbert order.
    partition = Partition.trusted(groups, len(table))
    generalized = GeneralizedTable.from_partition(table, partition)
    return HilbertResult(table=table, l=l, partition=partition, generalized=generalized)
