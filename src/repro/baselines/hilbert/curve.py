"""d-dimensional Hilbert curve indexing (Skilling's transform).

The Hilbert baseline of Ghinita et al. [16] maps every tuple to its position
on a space-filling curve over the QI domain and then groups curve-adjacent
tuples, exploiting the curve's locality: tuples close on the curve are close
in QI space and therefore cheap to generalize together.

This module implements John Skilling's compact algorithm ("Programming the
Hilbert curve", AIP 2004) for converting a d-dimensional coordinate vector
into its Hilbert index, for arbitrary dimension and bit depth.  Two variants
are provided: the scalar :func:`hilbert_index` (the reference) and the
batch :func:`hilbert_indices_vectorized`, which runs the same bit
transformation across all points at once with NumPy integer arrays — the
per-point Python loop is the dominant cost of the Hilbert baseline.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["hilbert_index", "hilbert_indices", "hilbert_indices_vectorized", "bits_needed"]


def bits_needed(domain_sizes: Sequence[int]) -> int:
    """The per-dimension bit depth required to index the given domains."""
    largest = max(domain_sizes, default=1)
    return max(1, int(largest - 1).bit_length()) if largest > 1 else 1


def _axes_to_transpose(coords: Sequence[int], bits: int) -> list[int]:
    """Skilling's AxesToTranspose: in-place Gray-code style transformation."""
    x = list(coords)
    n = len(x)
    m = 1 << (bits - 1)

    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """The Hilbert index of a point with the given coordinates.

    Parameters
    ----------
    coords:
        Non-negative integer coordinates, one per dimension, each smaller
        than ``2 ** bits``.
    bits:
        Bit depth per dimension; the index lies in ``[0, 2 ** (bits * d))``.
    """
    n = len(coords)
    if n == 0:
        raise ValueError("coords must have at least one dimension")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    limit = 1 << bits
    for coordinate in coords:
        if not 0 <= coordinate < limit:
            raise ValueError(
                f"coordinate {coordinate} out of range for bits={bits} (limit {limit})"
            )
    if n == 1:
        # The 1-D Hilbert curve is the identity ordering.
        return coords[0]

    transpose = _axes_to_transpose(coords, bits)
    index = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(n):
            index = (index << 1) | ((transpose[i] >> bit) & 1)
    return index


def hilbert_indices(points: Sequence[Sequence[int]], bits: int) -> list[int]:
    """Hilbert indices for a batch of points (same bit depth for all)."""
    return [hilbert_index(point, bits) for point in points]


def hilbert_indices_vectorized(points: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert indices for an ``(n, d)`` coordinate matrix, as an int64 array.

    Skilling's transform applied column-wise: every mask-and-xor step runs
    over all ``n`` points at once.  Falls back to the scalar implementation
    when ``bits * d`` exceeds 62 (the index no longer fits an int64 — only
    reachable far beyond the paper's Table 6 domains).
    """
    coords = np.asarray(points, dtype=np.int64)
    if coords.ndim != 2:
        raise ValueError(f"points must be a 2-D array, got shape {coords.shape}")
    n, d = coords.shape
    if d == 0:
        raise ValueError("points must have at least one dimension")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    limit = 1 << bits
    if n and (coords.min() < 0 or coords.max() >= limit):
        bad = int(coords.min() if coords.min() < 0 else coords.max())
        raise ValueError(f"coordinate {bad} out of range for bits={bits} (limit {limit})")
    if d == 1:
        return coords[:, 0].copy()
    if bits * d > 62:  # pragma: no cover - beyond any realistic domain
        return np.array(
            [hilbert_index([int(c) for c in row], bits) for row in coords], dtype=object
        )

    x = coords.copy()
    m = 1 << (bits - 1)

    # Inverse undo excess work (column-wise over all points).
    q = m
    while q > 1:
        p = q - 1
        for i in range(d):
            hit = (x[:, i] & q) != 0
            # Hit rows flip the low bits of x[:, 0]; the rest exchange the
            # differing low bits between x[:, 0] and x[:, i].
            t = np.where(hit, 0, (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] ^= np.where(hit, p, t)
            x[:, i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.int64)
    q = m
    while q > 1:
        t ^= np.where((x[:, d - 1] & q) != 0, q - 1, 0)
        q >>= 1
    x ^= t[:, None]

    # Interleave the transposed bits into the final index.
    index = np.zeros(n, dtype=np.int64)
    for bit in range(bits - 1, -1, -1):
        for i in range(d):
            index = (index << 1) | ((x[:, i] >> bit) & 1)
    return index
