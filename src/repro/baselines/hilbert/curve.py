"""d-dimensional Hilbert curve indexing (Skilling's transform).

The Hilbert baseline of Ghinita et al. [16] maps every tuple to its position
on a space-filling curve over the QI domain and then groups curve-adjacent
tuples, exploiting the curve's locality: tuples close on the curve are close
in QI space and therefore cheap to generalize together.

This module implements John Skilling's compact algorithm ("Programming the
Hilbert curve", AIP 2004) for converting a d-dimensional coordinate vector
into its Hilbert index, for arbitrary dimension and bit depth.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["hilbert_index", "hilbert_indices", "bits_needed"]


def bits_needed(domain_sizes: Sequence[int]) -> int:
    """The per-dimension bit depth required to index the given domains."""
    largest = max(domain_sizes, default=1)
    return max(1, int(largest - 1).bit_length()) if largest > 1 else 1


def _axes_to_transpose(coords: Sequence[int], bits: int) -> list[int]:
    """Skilling's AxesToTranspose: in-place Gray-code style transformation."""
    x = list(coords)
    n = len(x)
    m = 1 << (bits - 1)

    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """The Hilbert index of a point with the given coordinates.

    Parameters
    ----------
    coords:
        Non-negative integer coordinates, one per dimension, each smaller
        than ``2 ** bits``.
    bits:
        Bit depth per dimension; the index lies in ``[0, 2 ** (bits * d))``.
    """
    n = len(coords)
    if n == 0:
        raise ValueError("coords must have at least one dimension")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    limit = 1 << bits
    for coordinate in coords:
        if not 0 <= coordinate < limit:
            raise ValueError(
                f"coordinate {coordinate} out of range for bits={bits} (limit {limit})"
            )
    if n == 1:
        # The 1-D Hilbert curve is the identity ordering.
        return coords[0]

    transpose = _axes_to_transpose(coords, bits)
    index = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(n):
            index = (index << 1) | ((transpose[i] >> bit) & 1)
    return index


def hilbert_indices(points: Sequence[Sequence[int]], bits: int) -> list[int]:
    """Hilbert indices for a batch of points (same bit depth for all)."""
    return [hilbert_index(point, bits) for point in points]
