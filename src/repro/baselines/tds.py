"""Top-Down Specialisation (TDS) for l-diversity — single-dimensional baseline.

TDS (Fung, Wang and Yu, ICDE 2005) starts from the most generalized table —
every QI attribute collapsed to the root of its taxonomy — and repeatedly
applies the highest-scoring *specialisation* (replacing one taxonomy node by
its children) that keeps the table valid.  The original algorithm targets
k-anonymity; footnote 3 of the paper modifies it to l-diversity for the
Section 6.2 comparison, and this implementation does the same: a
specialisation is valid only if every induced QI-group remains l-eligible.

Key facts exploited by the implementation:

* validity is *anti-monotone*: once a specialisation is invalid under the
  current grouping, it stays invalid after further specialisations (splitting
  an ineligible multiset always leaves at least one ineligible part), so
  failed candidates are discarded permanently;
* the scoring function (information gain over the QI precision, weighted by
  the number of affected rows) depends only on static code counts, so it is
  computed once per node.

The output is a :class:`~repro.dataset.generalized.GeneralizedTable` whose
cells are sub-domains (frozensets of codes), ready for the KL-divergence
utility metric of Section 6.2.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.hierarchy import Taxonomy
from repro.core.eligibility import is_l_eligible
from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.errors import IneligibleTableError

__all__ = ["TDSResult", "anonymize"]


@dataclass(frozen=True)
class TDSResult:
    """Outcome of the TDS baseline."""

    table: Table
    l: int
    generalized: GeneralizedTable
    #: Taxonomies used, one per QI attribute (in schema order).
    taxonomies: tuple[Taxonomy, ...]
    #: Number of specialisations applied before no valid candidate remained.
    specializations: int
    #: Final number of QI-groups.
    group_count: int


class _TDSState:
    """Mutable state of a TDS run."""

    def __init__(self, table: Table, l: int, taxonomies: Sequence[Taxonomy]) -> None:
        self.table = table
        self.l = l
        self.taxonomies = list(taxonomies)
        dimension = table.dimension
        # code -> current cut node, per attribute.
        self.code_to_node: list[list[int]] = [
            [taxonomy.root_id] * taxonomy.domain_size for taxonomy in taxonomies
        ]
        # Static per-attribute code histograms (for the scoring function).
        self.code_counts: list[list[int]] = [
            [0] * attribute.size for attribute in table.schema.qi
        ]
        for row in range(len(table)):
            qi = table.qi_row(row)
            for position in range(dimension):
                self.code_counts[position][qi[position]] += 1
        # Current grouping: generalized QI vector (tuple of node ids) -> rows.
        root_key = tuple(taxonomy.root_id for taxonomy in taxonomies)
        self.groups: dict[tuple[int, ...], list[int]] = {root_key: list(range(len(table)))}

    # ----------------------------------------------------------------- scoring

    def rows_under(self, position: int, node_id: int) -> int:
        codes = self.taxonomies[position].codes_under(node_id)
        counts = self.code_counts[position]
        return sum(counts[code] for code in codes)

    def score(self, position: int, node_id: int) -> float:
        """Information gained by specialising ``node_id`` on attribute ``position``.

        Measured as the reduction in QI uncertainty, in bits, summed over the
        rows covered by the node: ``sum_child n_child * (log2 w(node) -
        log2 w(child))``.
        """
        taxonomy = self.taxonomies[position]
        node_width = taxonomy.width(node_id)
        gained = 0.0
        for child_id in taxonomy.children(node_id):
            child_rows = self.rows_under(position, child_id)
            if child_rows:
                gained += child_rows * (math.log2(node_width) - math.log2(taxonomy.width(child_id)))
        return gained

    # ------------------------------------------------------------ specialising

    def split_groups(
        self, position: int, node_id: int
    ) -> dict[tuple[int, ...], dict[int, list[int]]]:
        """How each affected group would split if ``node_id`` were specialised.

        Returns ``{group key: {child node id: rows}}`` for every group whose
        current cut node on ``position`` is ``node_id``.
        """
        taxonomy = self.taxonomies[position]
        result: dict[tuple[int, ...], dict[int, list[int]]] = {}
        for key, rows in self.groups.items():
            if key[position] != node_id:
                continue
            by_child: dict[int, list[int]] = {}
            for row in rows:
                code = self.table.qi_row(row)[position]
                child_id = taxonomy.child_covering(node_id, code)
                by_child.setdefault(child_id, []).append(row)
            result[key] = by_child
        return result

    def is_valid(self, position: int, node_id: int) -> bool:
        """Whether specialising keeps every induced QI-group l-eligible."""
        for by_child in self.split_groups(position, node_id).values():
            for rows in by_child.values():
                counts: dict[int, int] = {}
                for row in rows:
                    value = self.table.sa_value(row)
                    counts[value] = counts.get(value, 0) + 1
                if not is_l_eligible(counts, self.l):
                    return False
        return True

    def apply(self, position: int, node_id: int) -> None:
        """Apply the specialisation, rebuilding the affected groups."""
        taxonomy = self.taxonomies[position]
        for code in taxonomy.codes_under(node_id):
            self.code_to_node[position][code] = taxonomy.child_covering(node_id, code)
        for key, by_child in self.split_groups(position, node_id).items():
            del self.groups[key]
            for child_id, rows in by_child.items():
                new_key = key[:position] + (child_id,) + key[position + 1:]
                self.groups[new_key] = rows

    # ----------------------------------------------------------------- output

    def to_generalized(self) -> GeneralizedTable:
        table = self.table
        dimension = table.dimension
        group_ids = [0] * len(table)
        for group_id, rows in enumerate(self.groups.values()):
            for row in rows:
                group_ids[row] = group_id
        cells = []
        # Cache the cell object of each (position, node) pair.
        node_cells: list[dict[int, object]] = [dict() for _ in range(dimension)]
        for row in range(len(table)):
            qi = table.qi_row(row)
            row_cells = []
            for position in range(dimension):
                node_id = self.code_to_node[position][qi[position]]
                cache = node_cells[position]
                if node_id not in cache:
                    taxonomy = self.taxonomies[position]
                    if taxonomy.is_leaf(node_id):
                        cache[node_id] = taxonomy.node(node_id).lo
                    else:
                        cache[node_id] = frozenset(taxonomy.codes_under(node_id))
                row_cells.append(cache[node_id])
            cells.append(tuple(row_cells))
        return GeneralizedTable(table.schema, cells, list(table.sa_values), group_ids)


def anonymize(
    table: Table,
    l: int,
    taxonomies: Sequence[Taxonomy] | None = None,
    fanout: int = 3,
) -> TDSResult:
    """Compute an l-diverse single-dimensional generalization with TDS.

    Parameters
    ----------
    table:
        The microdata (must be l-eligible).
    l:
        The diversity parameter (``l >= 2``).
    taxonomies:
        Optional per-attribute generalization hierarchies (schema order).
        When omitted, balanced taxonomies with the given ``fanout`` are built
        over each attribute's ordered domain.
    fanout:
        Fanout of the auto-built taxonomies.
    """
    if l < 2:
        raise ValueError(f"l must be >= 2 for anonymization, got {l}")
    if not table.is_l_eligible(l):
        raise IneligibleTableError(
            f"table is not {l}-eligible; no l-diverse generalization exists"
        )
    if taxonomies is None:
        taxonomies = tuple(
            Taxonomy.for_attribute(attribute, fanout=fanout) for attribute in table.schema.qi
        )
    else:
        taxonomies = tuple(taxonomies)
        if len(taxonomies) != table.dimension:
            raise ValueError(
                f"expected {table.dimension} taxonomies, got {len(taxonomies)}"
            )

    state = _TDSState(table, l, taxonomies)

    # Candidate specialisations, scored once (static scores).  Invalid
    # candidates are discarded permanently thanks to anti-monotonicity.
    candidates: list[tuple[float, int, int]] = []
    for position, taxonomy in enumerate(taxonomies):
        if not taxonomy.is_leaf(taxonomy.root_id):
            candidates.append((state.score(position, taxonomy.root_id), position, taxonomy.root_id))

    applied = 0
    while candidates:
        candidates.sort(reverse=True)
        score, position, node_id = candidates.pop(0)
        del score
        if not state.is_valid(position, node_id):
            continue
        state.apply(position, node_id)
        applied += 1
        taxonomy = taxonomies[position]
        for child_id in taxonomy.children(node_id):
            if not taxonomy.is_leaf(child_id) and state.rows_under(position, child_id) > 0:
                candidates.append((state.score(position, child_id), position, child_id))

    generalized = state.to_generalized()
    return TDSResult(
        table=table,
        l=l,
        generalized=generalized,
        taxonomies=taxonomies,
        specializations=applied,
        group_count=len(state.groups),
    )
