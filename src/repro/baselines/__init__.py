"""Baseline anonymization algorithms used in the paper's evaluation.

* :mod:`repro.baselines.hilbert` — the suppression-adapted Hilbert-curve
  heuristic of Ghinita et al. [16], the strongest existing suppression
  baseline in Section 6.1 and the refiner inside TP+;
* :mod:`repro.baselines.tds` — the top-down specialisation (TDS)
  single-dimensional generalization algorithm of Fung et al. [15], modified
  for l-diversity as in Section 6.2;
* :mod:`repro.baselines.hierarchy` — generalization taxonomies used by TDS;
* :mod:`repro.baselines.mondrian` — a multi-dimensional generalization
  baseline (LeFevre et al. [27]), discussed qualitatively in Section 6.2 and
  included here as an extension experiment.
"""

from repro.baselines import hierarchy, hilbert, mondrian, tds

__all__ = ["hierarchy", "hilbert", "mondrian", "tds"]
