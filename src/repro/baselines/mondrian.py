"""Mondrian-style multi-dimensional generalization with an l-diversity check.

Section 6.2 of the paper argues that multi-dimensional generalization always
retains at least as much information as suppression but produces output that
off-the-shelf statistical software cannot consume.  To make that trade-off
measurable (an extension beyond the paper's figures) we include a Mondrian
baseline (LeFevre et al., ICDE 2006): recursively split the row set at the
median of the attribute with the widest normalized span, accepting a split
only when both halves remain l-eligible.

Cells of the output are contiguous sub-domains (frozensets of codes), so the
KL-divergence metric treats them exactly like the TDS output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.eligibility import is_l_eligible
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Table
from repro.errors import IneligibleTableError

__all__ = ["MondrianResult", "anonymize"]


@dataclass(frozen=True)
class MondrianResult:
    """Outcome of the Mondrian baseline."""

    table: Table
    l: int
    partition: Partition
    generalized: GeneralizedTable

    @property
    def group_count(self) -> int:
        return len(self.partition)


def _normalized_span(table: Table, rows: list[int], position: int) -> float:
    codes = [table.qi_row(row)[position] for row in rows]
    lo, hi = min(codes), max(codes)
    size = table.schema.qi[position].size
    return (hi - lo) / max(size - 1, 1)


def _split(table: Table, rows: list[int], position: int) -> tuple[list[int], list[int]] | None:
    """Median split of ``rows`` on ``position``; ``None`` if degenerate."""
    codes = sorted(table.qi_row(row)[position] for row in rows)
    median = codes[len(codes) // 2]
    left = [row for row in rows if table.qi_row(row)[position] < median]
    right = [row for row in rows if table.qi_row(row)[position] >= median]
    if not left or not right:
        # All values on one side of the median: try the strict alternative.
        left = [row for row in rows if table.qi_row(row)[position] <= median]
        right = [row for row in rows if table.qi_row(row)[position] > median]
    if not left or not right:
        return None
    return left, right


def _eligible(table: Table, rows: list[int], l: int) -> bool:
    counts = Counter(table.sa_value(row) for row in rows)
    return is_l_eligible(counts, l)


def anonymize(table: Table, l: int) -> MondrianResult:
    """Compute an l-diverse multi-dimensional generalization of ``table``."""
    if l < 2:
        raise ValueError(f"l must be >= 2 for anonymization, got {l}")
    if not table.is_l_eligible(l):
        raise IneligibleTableError(
            f"table is not {l}-eligible; no l-diverse generalization exists"
        )

    groups: list[list[int]] = []
    stack: list[list[int]] = [list(range(len(table)))]
    while stack:
        rows = stack.pop()
        # Try attributes from widest to narrowest normalized span.
        order = sorted(
            range(table.dimension),
            key=lambda position: -_normalized_span(table, rows, position),
        )
        split_done = False
        for position in order:
            parts = _split(table, rows, position)
            if parts is None:
                continue
            left, right = parts
            if _eligible(table, left, l) and _eligible(table, right, l):
                stack.append(left)
                stack.append(right)
                split_done = True
                break
        if not split_done:
            groups.append(rows)

    partition = Partition(groups, len(table))
    generalized = _generalize(table, partition)
    return MondrianResult(table=table, l=l, partition=partition, generalized=generalized)


def _generalize(table: Table, partition: Partition) -> GeneralizedTable:
    """Build sub-domain cells covering each group's code range per attribute."""
    dimension = table.dimension
    cells: list[tuple[object, ...] | None] = [None] * len(table)
    group_ids = [0] * len(table)
    for group_id, rows in enumerate(partition.groups):
        row_cells: list[object] = []
        for position in range(dimension):
            codes = [table.qi_row(row)[position] for row in rows]
            lo, hi = min(codes), max(codes)
            if lo == hi:
                row_cells.append(lo)
            else:
                row_cells.append(frozenset(range(lo, hi + 1)))
        generalized_row = tuple(row_cells)
        for row in rows:
            cells[row] = generalized_row
            group_ids[row] = group_id
    return GeneralizedTable(table.schema, cells, list(table.sa_values), group_ids)
