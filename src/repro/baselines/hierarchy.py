"""Generalization taxonomies (hierarchies) for single-dimensional generalization.

Single-dimensional generalization (Section 2) coarsens each QI attribute by
replacing values with sub-domains drawn from a taxonomy over the attribute's
domain.  The census attributes used in the paper have no published
hierarchies, so — as is standard practice — we build balanced taxonomies over
the ordered domains: every node covers a contiguous range of codes and has at
most ``fanout`` children.  Ordered attributes (Age, Education) therefore
generalize into natural intervals, and nominal attributes into small groups
of related codes.

The taxonomy API is deliberately minimal: the TDS baseline only needs to know
each node's children, its covered codes, and its width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.table import Attribute

__all__ = ["TaxonomyNode", "Taxonomy"]


@dataclass(frozen=True)
class TaxonomyNode:
    """A node covering the contiguous code range ``[lo, hi)``."""

    node_id: int
    lo: int
    hi: int
    parent_id: int | None
    children: tuple[int, ...]
    depth: int

    @property
    def width(self) -> int:
        """Number of domain codes covered by the node."""
        return self.hi - self.lo

    @property
    def is_leaf(self) -> bool:
        return not self.children


class Taxonomy:
    """A balanced generalization hierarchy over a categorical domain."""

    def __init__(self, nodes: list[TaxonomyNode], domain_size: int) -> None:
        self._nodes = nodes
        self._domain_size = domain_size

    # --------------------------------------------------------------- building

    @classmethod
    def balanced(cls, domain_size: int, fanout: int = 3) -> "Taxonomy":
        """Build a balanced taxonomy with at most ``fanout`` children per node."""
        if domain_size < 1:
            raise ValueError(f"domain_size must be >= 1, got {domain_size}")
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        nodes: list[TaxonomyNode] = []

        def build(lo: int, hi: int, parent_id: int | None, depth: int) -> int:
            node_id = len(nodes)
            nodes.append(TaxonomyNode(node_id, lo, hi, parent_id, (), depth))
            width = hi - lo
            if width > 1:
                children: list[int] = []
                # Split the range into ``fanout`` near-equal contiguous parts.
                parts = min(fanout, width)
                base, extra = divmod(width, parts)
                start = lo
                for part in range(parts):
                    size = base + (1 if part < extra else 0)
                    children.append(build(start, start + size, node_id, depth + 1))
                    start += size
                nodes[node_id] = TaxonomyNode(
                    node_id, lo, hi, parent_id, tuple(children), depth
                )
            return node_id

        build(0, domain_size, None, 0)
        return cls(nodes, domain_size)

    @classmethod
    def for_attribute(cls, attribute: Attribute, fanout: int = 3) -> "Taxonomy":
        """Balanced taxonomy over an attribute's (ordered) domain."""
        return cls.balanced(attribute.size, fanout=fanout)

    # ----------------------------------------------------------------- access

    @property
    def root_id(self) -> int:
        return 0

    @property
    def domain_size(self) -> int:
        return self._domain_size

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> TaxonomyNode:
        return self._nodes[node_id]

    def children(self, node_id: int) -> tuple[int, ...]:
        return self._nodes[node_id].children

    def is_leaf(self, node_id: int) -> bool:
        return self._nodes[node_id].is_leaf

    def width(self, node_id: int) -> int:
        return self._nodes[node_id].width

    def codes_under(self, node_id: int) -> range:
        node = self._nodes[node_id]
        return range(node.lo, node.hi)

    def leaf_for_code(self, code: int) -> int:
        """The leaf node covering exactly ``code``."""
        node_id = self.root_id
        while not self.is_leaf(node_id):
            for child_id in self.children(node_id):
                child = self._nodes[child_id]
                if child.lo <= code < child.hi:
                    node_id = child_id
                    break
            else:  # pragma: no cover - contiguous children always cover the range
                raise ValueError(f"code {code} not covered by taxonomy")
        return node_id

    def child_covering(self, node_id: int, code: int) -> int:
        """The child of ``node_id`` whose range contains ``code``."""
        for child_id in self.children(node_id):
            child = self._nodes[child_id]
            if child.lo <= code < child.hi:
                return child_id
        raise ValueError(f"code {code} not covered by children of node {node_id}")

    def height(self) -> int:
        """Maximum depth of any node."""
        return max(node.depth for node in self._nodes)
