"""Fault-injection hooks: deliberately break the serving stack, on demand.

Crash-safety claims ("no job lost across a worker kill") are only as good as
the crashes they were tested against.  A :class:`FaultPlan` describes the
failures the stack should inject into itself — worker-process death, job
delays (to trip the per-job timeout), a one-shot ledger-append failure — in
a deterministic, seedable form shared by the unit tests and the chaos smoke
(``scripts/chaos_smoke.py``).

Gating: every hook is a **no-op** unless a plan is active.  A plan activates
through either

* :func:`install_plan` — in-process, for tests (pair with :func:`clear_plan`);
* the ``REPRO_FAULTS`` environment variable holding the plan's JSON encoding
  (:meth:`FaultPlan.to_env`) — the route the chaos smoke uses, because
  ``ldiversity serve`` forks its pool workers and they inherit the variable.

Cross-process one-shot faults (``delay_once`` across a pool of workers)
coordinate through atomically-created token files under ``scratch_dir``;
without a scratch dir, one-shot consumption is tracked per process.

Worker-death semantics: in a real pool worker process the kill is a hard
``os._exit`` (no finally blocks, no atexit — the same shape as an OOM kill),
which surfaces to the pool as :class:`BrokenProcessPool`.  Thread-executor
workers (the unit-test configuration) cannot be killed, so the hook raises
:class:`BrokenProcessPool` directly — the pool's recovery path sees the
identical exception either way.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

__all__ = [
    "FAULTS_ENV_VAR",
    "WORKER_KILL_EXIT_CODE",
    "FaultPlan",
    "active_plan",
    "apply_worker_faults",
    "clear_plan",
    "install_plan",
    "maybe_fail_ledger_append",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit code of a deliberately killed worker — distinctive in chaos logs, so
#: an injected death is never mistaken for a real crash.
WORKER_KILL_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected failures.

    All fields default to "off"; an all-defaults plan injects nothing.
    """

    #: Kill the executing worker after every Nth job *it* has run (0 = off).
    #: The counter is per worker process, so a pool keeps losing workers at a
    #: steady, deterministic rate while most jobs still complete.
    kill_every: int = 0
    #: Poison seeds: executing a job spec whose ``seed`` is listed kills the
    #: worker on *every* attempt — the job can only end in quarantine.
    kill_seeds: tuple[int, ...] = ()
    #: Sleep injected into matching jobs before any work happens (0 = off).
    delay_seconds: float = 0.0
    #: Which job-spec seeds are delayed; empty = every job (when delaying).
    delay_seeds: tuple[int, ...] = ()
    #: Delay each matching seed only once (first attempt times out, the retry
    #: runs clean — the "timeout-then-succeed" scenario).  ``False`` delays
    #: every attempt.
    delay_once: bool = True
    #: Make the next ledger append raise :class:`OSError`, once.
    fail_ledger_append_once: bool = False
    #: Directory for cross-process one-shot tokens (atomic ``O_EXCL`` files).
    #: Empty = per-process tracking only.
    scratch_dir: str = ""
    #: Reserved for randomized plans; fixed in CI so runs are reproducible.
    seed: int = 0

    # ------------------------------------------------------------- encoding

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in payload.items() if key in known}
        for name in ("kill_seeds", "delay_seeds"):
            if name in kwargs:
                kwargs[name] = tuple(int(value) for value in kwargs[name])
        return cls(**kwargs)

    def to_env(self) -> str:
        """The JSON value to export as ``REPRO_FAULTS``."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    # ------------------------------------------------------------ one-shots

    def consume_once(self, token: str) -> bool:
        """Atomically claim a one-shot token; ``True`` exactly once per token.

        With a ``scratch_dir`` the claim is an ``open(..., "x")`` marker file,
        so it holds across every process sharing the plan; otherwise it is
        tracked in this process only.
        """
        if self.scratch_dir:
            path = Path(self.scratch_dir) / f"fault-{token}.token"
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(path, "x"):
                    return True
            except FileExistsError:
                return False
            except OSError:  # pragma: no cover - scratch dir unusable
                return False
        key = (id(self), token)
        if key in _consumed_tokens:
            return False
        _consumed_tokens.add(key)
        return True


#: In-process one-shot tokens (plans without a scratch dir).
_consumed_tokens: set[tuple[int, str]] = set()

#: Plan installed by :func:`install_plan` (tests); overrides the environment.
_installed: FaultPlan | None = None

#: Cache of the last environment parse, keyed by the raw variable value.
_env_cache: tuple[str, FaultPlan | None] = ("", None)

#: Jobs executed by *this* process's workers, for ``kill_every``.
_jobs_executed = 0


def install_plan(plan: FaultPlan) -> None:
    """Activate a plan in this process (tests); undo with :func:`clear_plan`."""
    global _installed
    _installed = plan


def clear_plan() -> None:
    global _installed
    _installed = None


def active_plan() -> FaultPlan | None:
    """The installed plan, else the ``REPRO_FAULTS`` environment plan, else None."""
    if _installed is not None:
        return _installed
    raw = os.environ.get(FAULTS_ENV_VAR, "")
    if not raw:
        return None
    global _env_cache
    if _env_cache[0] != raw:
        try:
            plan = FaultPlan.from_dict(json.loads(raw))
        except (json.JSONDecodeError, TypeError, ValueError):
            plan = None
        _env_cache = (raw, plan)
    return _env_cache[1]


def _kill_worker(cause: str) -> None:
    """Die the way a crashed worker dies.

    A forked/spawned pool worker hard-exits (``os._exit`` skips finally
    blocks and atexit handlers, like a SIGKILL/OOM would); the pool observes
    :class:`BrokenProcessPool`.  In the main process (thread executors) the
    same exception is raised directly.
    """
    if multiprocessing.current_process().name != "MainProcess":
        os._exit(WORKER_KILL_EXIT_CODE)
    raise BrokenProcessPool(f"fault injection: {cause}")


def apply_worker_faults(spec: dict) -> None:
    """Hook called by the job executor before any real work.

    No-op without an active plan.  Order matters: delays land before kills so
    a seed listed in both can first wedge (tripping the job timeout) and then
    die — though plans normally use disjoint seeds.
    """
    plan = active_plan()
    if plan is None:
        return
    global _jobs_executed
    _jobs_executed += 1
    seed = spec.get("seed")
    if plan.delay_seconds > 0 and (not plan.delay_seeds or seed in plan.delay_seeds):
        if not plan.delay_once or plan.consume_once(f"delay-{seed}"):
            time.sleep(plan.delay_seconds)
    if seed in plan.kill_seeds:
        _kill_worker(f"poison seed {seed}")
    if plan.kill_every and _jobs_executed % plan.kill_every == 0:
        _kill_worker(f"kill_every={plan.kill_every} (job #{_jobs_executed})")


def maybe_fail_ledger_append() -> None:
    """Hook called by :meth:`~repro.service.jobs.JobLedger._append`.

    Raises :class:`OSError` exactly once when the active plan asks for it —
    the same failure shape as a disk-full append — so tests can prove a job
    still reaches a terminal state when a lifecycle write is lost.
    """
    plan = active_plan()
    if plan is None or not plan.fail_ledger_append_once:
        return
    if plan.consume_once("ledger-append"):
        raise OSError("fault injection: ledger append failed")
