"""Anonymization-as-a-service: the async HTTP subsystem.

``repro.server`` turns the planner/engine/store stack into a long-lived
network service — stdlib only, no third-party web framework:

* :mod:`repro.server.protocol` — minimal HTTP/1.1 framing over asyncio
  streams (request parsing, body caps, JSON/CSV responses, ``Retry-After``);
* :mod:`repro.server.pool` — the bounded async job queue drained by a
  process-worker pool; jobs run through a fresh store-backed engine, so
  repeated identical submissions are served from the persistent
  :class:`~repro.service.store.RunStore`;
* :mod:`repro.server.ratelimit` — per-client token buckets behind the
  ``429 + Retry-After`` backpressure contract;
* :mod:`repro.server.faults` — deterministic fault injection (worker kills,
  job delays, ledger-append failures) behind an env/flag-gated
  :class:`~repro.server.faults.FaultPlan`, used by the failure-matrix tests
  and the chaos smoke;
* :mod:`repro.server.app` — the :class:`AnonymizationServer` routing table
  and handlers (``/v1/jobs`` lifecycle, registry introspection, planner
  explanations, health).

Serving is **at-least-once**: worker deaths and per-job timeouts re-enqueue
the attempt with exponential backoff (quarantining poison jobs after their
attempt budget), and a restarted server replays every non-terminal ledger
job before accepting traffic.

Start one from the CLI (``ldiversity serve --port 8350 --workers 4``) or
programmatically::

    import asyncio
    from repro.server import AnonymizationServer

    async def main():
        server = AnonymizationServer(workspace="/tmp/ws", workers=4)
        host, port = await server.start("127.0.0.1", 0)
        print(f"http://{host}:{port}/v1/health")
        await server.serve_forever()

    asyncio.run(main())

The matching client SDK lives in :mod:`repro.client`.
"""

from repro.server.app import AnonymizationServer
from repro.server.faults import FaultPlan, clear_plan, install_plan
from repro.server.pool import QueueFullError, WorkerPool, build_source, execute_job
from repro.server.protocol import HttpError, Request
from repro.server.ratelimit import RateLimiter

__all__ = [
    "AnonymizationServer",
    "FaultPlan",
    "HttpError",
    "QueueFullError",
    "RateLimiter",
    "Request",
    "WorkerPool",
    "build_source",
    "execute_job",
    "clear_plan",
    "install_plan",
]
