"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The server deliberately avoids third-party web frameworks: the subset of
HTTP it needs — request line, headers, ``Content-Length`` bodies, JSON/CSV
responses, ``Retry-After`` — is small enough to frame by hand, and doing so
keeps the serving stack importable anywhere the package itself is.

Connections are one-shot: every response carries ``Connection: close`` and
the server closes the stream after writing it.  Clients that want pipelining
open more sockets; on the loopback deployments this subsystem targets, the
accept cost is noise next to an anonymization run.

:func:`read_request` enforces the protocol limits (request-line/header sizes,
body cap) and raises :class:`HttpError` with the right status code; handlers
raise it too, so the connection loop has exactly one error path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

import asyncio

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "json_response",
    "splice_header",
]

#: Hard cap on the request line and on any single header line, in bytes.
MAX_LINE_BYTES = 8 * 1024
#: Hard cap on the number of header lines.
MAX_HEADER_COUNT = 64
#: Default cap on request bodies (the server can lower/raise it).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error that maps directly onto an HTTP response."""

    def __init__(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str  # path component only, query stripped
    query: dict[str, str]
    headers: dict[str, str]  # keys lowercased
    body: bytes
    #: Submitting client identity: the ``X-Client-Id`` header when present,
    #: otherwise the peer address — the key the rate limiter buckets by.
    client: str = ""
    #: Named groups captured by the matched route pattern.
    path_params: dict[str, str] = field(default_factory=dict)
    #: Trace id: the ``X-Request-Id`` header when present, otherwise minted
    #: at ingress.  Echoed on the response and stamped on any job created.
    request_id: str = ""
    #: Route template (e.g. ``/v1/jobs/{id}``) filled in at dispatch — the
    #: low-cardinality label requests are metered under.
    route: str = ""

    def json(self) -> dict:
        """The body parsed as a JSON object (400 on anything else)."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""  # clean EOF before a request
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line too long") from None
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader,
    peer: str,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Request | None:
    """Read one request from the stream; ``None`` on EOF before a request."""
    request_line = await _read_line(reader)
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        line = await _read_line(reader)
        if not line.strip():
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many header lines")

    body = b""
    raw_length = headers.get("content-length", "0")
    try:
        content_length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"malformed Content-Length {raw_length!r}") from None
    if content_length < 0:
        raise HttpError(400, f"malformed Content-Length {raw_length!r}")
    if content_length > max_body_bytes:
        raise HttpError(
            413, f"request body of {content_length} bytes exceeds {max_body_bytes}"
        )
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length") from None

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        client=headers.get("x-client-id", peer),
        request_id=headers.get("x-request-id", ""),
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
) -> bytes:
    """Frame one complete HTTP/1.1 response (always ``Connection: close``)."""
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def splice_header(response: bytes, name: str, value: str) -> bytes:
    """Insert one header into an already-rendered response.

    Handlers return fully framed bytes; the connection loop uses this to
    stamp ``X-Request-Id`` on every response without re-rendering bodies.
    """
    separator = response.find(b"\r\n\r\n")
    if separator < 0:
        return response
    line = f"\r\n{name}: {value}".encode("latin-1")
    return response[:separator] + line + response[separator:]


def json_response(
    status: int, payload: object, headers: dict[str, str] | None = None
) -> bytes:
    return render_response(
        status,
        json.dumps(payload, separators=(",", ":")).encode("utf-8"),
        headers=headers,
    )
