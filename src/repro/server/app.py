"""Anonymization-as-a-service: the asyncio HTTP application.

:class:`AnonymizationServer` exposes the planner/engine/store stack over a
small JSON-over-HTTP surface (all under ``/v1``):

====================================  ===================================================
``POST /v1/jobs``                     submit a job: JSON body with inline ``rows``, a
                                      ``source`` spec (synthetic or server-side CSV), or
                                      a ``text/csv`` body with query parameters
``GET  /v1/jobs``                     latest record of every job in the workspace ledger
``GET  /v1/jobs/{id}``                job status (ledger record + queue position info)
``GET  /v1/jobs/{id}/result``         published table (``?format=json`` or ``csv``)
``GET  /v1/jobs/{id}/metrics``        metric values / timings / cache tier of a done job
``GET  /v1/jobs/{id}/trace``          span tree of a recent job (submit -> queue-wait ->
                                      attempt(s) -> engine stages -> publish)
``POST /v1/jobs/{id}/cancel``         cancel a still-queued job
``GET  /v1/algorithms``               algorithm registry with capability metadata
``GET  /v1/metrics``                  *quality*-metric registry (information loss etc.)
``GET  /v1/privacy``                  privacy-model registry with parameter schemas
``POST /v1/plan``                     explain the planner's decision for a workload
``GET  /v1/health``                   liveness, version, queue depth, job counters
``GET  /v1/telemetry``                operational telemetry (Prometheus text format)
====================================  ===================================================

**Observability**: every response carries an ``X-Request-Id`` header (echoing
the client's, or minted at ingress); the id is stamped on the job's ledger
record and spec, follows the job into the pool worker and engine, and keys
the span tree served by ``/v1/jobs/{id}/trace``.  Operational counters,
gauges and histograms live on a per-server
:class:`~repro.obs.metrics.MetricsRegistry` scraped at ``/v1/telemetry``
(Prometheus text format); ``/v1/health`` reports the same numbers from the
same registry.  Every 4xx/5xx response is logged with its request id.

Submissions may carry a ``privacy`` object (e.g. ``{"kind": "entropy-l",
"l": 3}``) validated against the privacy registry; without one, the required
``l`` keeps meaning frequency l-diversity.  The resolved spec is echoed in
the job's status record and result payload so clients can audit what was
enforced.

Submissions are validated against the registries *before* queueing, then run
asynchronously on the bounded :class:`~repro.server.pool.WorkerPool`; the
job lifecycle (``queued -> running -> [retrying ->] done|failed|cancelled``)
is persisted to the workspace's :class:`~repro.service.jobs.JobLedger`, so
``ldiversity jobs list`` sees server jobs and vice versa — and so a
restarted server can **replay** every non-terminal job it finds at boot
(after compacting the ledger), which together with the pool's worker-death
recovery and per-job timeouts makes serving at-least-once: a SIGKILL'd
server or a segfaulting worker delays jobs, it does not lose them.  Two
backpressure mechanisms protect the service under load, both answered with
``Retry-After``:

* **queue depth** — a full worker queue rejects the submission with ``429``
  (the estimate is an EMA of recent job durations);
* **per-client rate limiting** — an optional token bucket per ``X-Client-Id``
  (or peer address) rejects bursts with ``429`` before they reach the queue.

``503`` is reserved for the draining window during shutdown.  Identical
repeated submissions are served from the persistent run store by the worker
(the result carries ``store_hit: true``), so a hot job costs one JSONL read
instead of a recomputation.
"""

from __future__ import annotations

import asyncio
import csv
import io
import logging
import re
import time
from collections import OrderedDict
from dataclasses import asdict, replace
from pathlib import Path
from typing import Awaitable, Callable

from repro._version import __version__
from repro.engine.registry import algorithm_registry, metric_registry
from repro.errors import UnknownEntryError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceStore, new_request_id
from repro.privacy.spec import privacy_from_dict, privacy_registry, resolve_privacy
from repro.server.pool import QueueFullError, WorkerPool
from repro.server.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    Request,
    json_response,
    read_request,
    render_response,
    splice_header,
)
from repro.server.ratelimit import RateLimiter
from repro.service.jobs import JobLedger, JobRecord, JobStateError
from repro.service.workspace import Workspace

__all__ = ["AnonymizationServer"]

_LOG = logging.getLogger("repro.server")

_BACKENDS = (None, "auto", "numpy", "reference")

Handler = Callable[["AnonymizationServer", Request], Awaitable[bytes]]
_ROUTES: list[tuple[str, re.Pattern[str], str, str]] = []


def _route(method: str, pattern: str):
    """Register a handler method for ``(method, path regex)``.

    Each route also derives a human template (``/v1/jobs/{id}``) from its
    pattern — the fixed, low-cardinality label requests are metered under
    (raw paths would mint one Prometheus series per job id).
    """

    def decorator(function):
        template = re.sub(r"\(\?P<(\w+)>[^)]*\)", r"{\1}", pattern)
        _ROUTES.append((method, re.compile(pattern), function.__name__, template))
        return function

    return decorator


def _require_int(payload: dict, key: str, minimum: int | None = None) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise HttpError(400, f"{key!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise HttpError(400, f"{key!r} must be >= {minimum}, got {value}")
    return value


class AnonymizationServer:
    """The asyncio HTTP server over the planner/engine/store stack."""

    def __init__(
        self,
        workspace: Workspace | str | Path | None = None,
        workers: int = 2,
        queue_cap: int = 16,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        use_store: bool = True,
        executor_kind: str = "process",
        max_resident_jobs: int = 256,
        data_dir: str | Path | None = None,
        request_timeout_seconds: float = 30.0,
        job_timeout_seconds: float | None = None,
        max_attempts: int = 3,
        retry_backoff_seconds: float = 0.5,
        replay: bool = True,
    ) -> None:
        self.workspace = (
            workspace if isinstance(workspace, Workspace) else Workspace(workspace)
        )
        #: Allowlist root for ``{"kind": "csv", "path": ...}`` sources.  When
        #: unset, server-side CSV paths are rejected outright: accepting any
        #: readable path would hand network clients arbitrary-file read as
        #: the server user the moment the bind leaves loopback.
        self.data_dir = (
            Path(data_dir).expanduser().resolve() if data_dir is not None else None
        )
        self.ledger = JobLedger(self.workspace.jobs_path)
        self.use_store = use_store
        self.max_body_bytes = max_body_bytes
        self.request_timeout_seconds = request_timeout_seconds
        self.limiter = RateLimiter(rate_limit, rate_burst)
        #: Per-server (not process-global) operational registry: the pool's
        #: recovery counters and queue gauges register here too, so one
        #: scrape of ``/v1/telemetry`` covers the whole serving stack and
        #: tests can assert exact counts without cross-test bleed.
        self.telemetry = MetricsRegistry()
        #: Span records of recent jobs, served by ``/v1/jobs/{id}/trace``.
        self.traces = TraceStore()
        self.pool = WorkerPool(
            workers=workers,
            queue_cap=queue_cap,
            transition=self._on_transition,
            executor_kind=executor_kind,
            workspace_root=str(self.workspace.root),
            use_store=use_store,
            job_timeout_seconds=job_timeout_seconds,
            max_attempts=max_attempts,
            retry_backoff_seconds=retry_backoff_seconds,
            metrics=self.telemetry,
        )
        self._http_requests = self.telemetry.counter(
            "repro_http_requests_total",
            "HTTP requests answered, by route template, method and status.",
            ("route", "method", "status"),
        )
        self._http_seconds = self.telemetry.histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds from request read to response write.",
            ("route",),
        )
        self._jobs_submitted = self.telemetry.counter(
            "repro_jobs_submitted_total", "Jobs accepted onto the pool queue."
        )
        self._jobs_terminal = self.telemetry.counter(
            "repro_jobs_terminal_total",
            "Jobs that reached a terminal state, by state.",
            ("state",),
        )
        self._jobs_rejected = self.telemetry.counter(
            "repro_jobs_rejected_total",
            "Submissions rejected before queueing, by reason.",
            ("reason",),
        )
        self._store_hits = self.telemetry.counter(
            "repro_store_hits_total",
            "Completed jobs answered from the persistent run store.",
        )
        self._jobs_replayed = self.telemetry.counter(
            "repro_jobs_replayed_total",
            "Non-terminal ledger jobs re-enqueued at boot (crash recovery).",
        )
        self._compaction_reclaimed = self.telemetry.gauge(
            "repro_ledger_compaction_reclaimed",
            "Superseded ledger records reclaimed by the boot-time compaction.",
        )
        self._engine_stage_seconds = self.telemetry.histogram(
            "repro_engine_stage_seconds",
            "Per-stage engine seconds bridged back from pool workers.",
            ("stage",),
        )
        self._result_renders = self.telemetry.counter(
            "repro_result_renders_total",
            "Result bodies rendered from a job's published output, by format.",
            ("format",),
        )
        self._result_cache_hits = self.telemetry.counter(
            "repro_result_cache_hits_total",
            "Result fetches answered from the per-job render cache, by format.",
            ("format",),
        )
        self._result_artifact_bytes = self.telemetry.gauge(
            "repro_result_artifact_bytes",
            "On-disk bytes of the resident jobs' result artifacts.",
        )
        self._result_artifact_bytes.set_function(self._resident_artifact_bytes)
        #: Whether start() re-enqueues the ledger's non-terminal jobs.  On by
        #: default (the crash-recovery contract); tests that stage ledgers
        #: by hand opt out.
        self.replay = replay
        #: job id -> {"record": JobRecord, "result": dict | None} for jobs
        #: submitted to *this* server process.  Results are memory-resident
        #: and bounded: beyond ``max_resident_jobs``, the oldest *terminal*
        #: entries are evicted (status then falls back to the ledger; an
        #: evicted result re-answers from the run store on resubmission).
        self._jobs: OrderedDict[str, dict] = OrderedDict()
        #: Jobs between their ledger ``create`` and ``pool.submit`` (the
        #: submission handler's offloaded awaits); a cancel arriving in that
        #: window flags ``_cancel_requested`` and the submitter skips the
        #: enqueue instead of answering an unsatisfiable 409.
        self._pending_submits: set[str] = set()
        self._cancel_requested: set[str] = set()
        self.max_resident_jobs = max(max_resident_jobs, queue_cap + workers + 1)
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._started_at: float | None = None
        self.host: str | None = None
        self.port: int | None = None

    @property
    def stats(self) -> dict:
        """The legacy job-counter dict, read from the telemetry registry.

        One source of truth: the same instruments back ``/v1/telemetry``,
        ``/v1/health`` and this view, so the three can never disagree.
        """
        return {
            "submitted": int(self._jobs_submitted.total()),
            "done": int(self._jobs_terminal.value(state="done")),
            "failed": int(self._jobs_terminal.value(state="failed")),
            "cancelled": int(self._jobs_terminal.value(state="cancelled")),
            "rejected_queue_full": int(self._jobs_rejected.value(reason="queue_full")),
            "rejected_rate_limited": int(
                self._jobs_rejected.value(reason="rate_limited")
            ),
            "store_hits": int(self._store_hits.total()),
            "replayed": int(self._jobs_replayed.total()),
            "compaction_reclaimed": int(self._compaction_reclaimed.value()),
        }

    # -------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the actual (host, port).

        Boot order is part of the durability contract: the ledger is
        compacted (safe — no reader is mid-stream yet) and every non-terminal
        job it holds is re-enqueued *before* the socket binds, so a client
        that reconnects after a crash never observes the server accepting new
        work while old work is still unaccounted for.
        """
        reclaimed = await self._offload(self.ledger.compact)
        self._compaction_reclaimed.set(float(reclaimed))
        if reclaimed:
            _LOG.info("ledger compaction reclaimed %d superseded records", reclaimed)
        # Result artifacts from a previous server process are orphans: their
        # resident results died with that process (done jobs re-answer from
        # the run store on resubmission) and replayed jobs write fresh ones.
        await self._offload(self._clear_stale_artifacts)
        await self.pool.start()
        if self.replay:
            await self._replay_ledger()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        name = self._server.sockets[0].getsockname()
        self.host, self.port = name[0], name[1]
        self._started_at = time.time()
        return self.host, self.port

    async def _replay_ledger(self) -> None:
        """Re-enqueue every non-terminal ledger job (crash recovery).

        A previous server process that was SIGKILL'd leaves ``queued``,
        ``retrying`` and mid-attempt ``running`` records behind; each carries
        the job spec it was queued with, so the work is resubmitted rather
        than failed.  Interrupted ``running`` jobs transition to ``retrying``
        first — their attempt died with the old process.  Records without a
        spec (CLI submissions, or pre-durability servers) cannot be replayed
        and are left alone: the CLI process that owns them may still be live,
        and failing another writer's job here would race it.
        """
        for record in await self._offload(self.ledger.list):
            if record.is_terminal() or record.status not in (
                "queued",
                "running",
                "retrying",
            ):
                continue
            spec = record.spec
            if not spec or not isinstance(spec.get("source"), dict):
                _LOG.warning(
                    "not replaying %s (%s): no spec on record (CLI or legacy writer)",
                    record.id,
                    record.status,
                )
                continue
            source = spec["source"]
            if source.get("kind") == "csv" and not source.get("path"):
                # An uploaded CSV spools next to the workspace under the job
                # id; reconstruct the path the same way the submitter did.
                spool = self.workspace.tmp_dir / f"upload-{record.id}.csv"
                if not spool.exists():
                    try:
                        refreshed = await self._offload(
                            self.ledger.transition,
                            record.id,
                            "failed",
                            error="upload spool lost across server restart",
                        )
                        self._remember(record.id, record=refreshed)
                    except (KeyError, JobStateError):  # pragma: no cover - racy
                        pass
                    self._jobs_terminal.inc(state="failed")
                    continue
                source = dict(source, path=str(spool))
                spec = dict(spec, source=source)
            if record.status == "running":
                try:
                    record = await self._offload(
                        self.ledger.transition,
                        record.id,
                        "retrying",
                        attempts=record.attempts,
                        last_error="interrupted by server restart",
                    )
                except (KeyError, JobStateError):  # pragma: no cover - racy
                    continue
            self._remember(record.id, record=record)
            self.traces.begin(record.id, record.request_id)
            self.traces.mark(record.id, "queued")
            await self.pool.requeue(record.id, spec, attempts=record.attempts)
            self._jobs_replayed.inc()
            _LOG.info(
                "replayed %s (%s, %d/%d attempts spent)",
                record.id,
                record.status,
                record.attempts,
                record.max_attempts or self.pool.max_attempts,
            )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(
        self, drain_seconds: float = 0.0, grace_seconds: float = 10.0
    ) -> None:
        """Stop accepting, optionally drain, cancel whatever never ran."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain_seconds > 0:
            try:
                await asyncio.wait_for(self.pool._queue.join(), timeout=drain_seconds)
            except asyncio.TimeoutError:
                pass
        abandoned, interrupted = await self.pool.shutdown(grace_seconds=grace_seconds)
        for job_id in abandoned:
            self._discard_spool(job_id)
            try:
                record = await self._offload(self.ledger.cancel, job_id)
            except (KeyError, JobStateError):
                continue
            self._jobs_terminal.inc(state="cancelled")
            if job_id in self._jobs:
                self._jobs[job_id]["record"] = record
        for job_id in interrupted:
            # The run outlived the grace window: the worker finished (or was
            # torn down) without its drainer recording a terminal state.
            # Close the lifecycle so clients never poll "running" forever.
            self._discard_spool(job_id)
            try:
                record = await self._offload(
                    self.ledger.transition,
                    job_id,
                    "cancelled",
                    error="server shut down before the result was recorded",
                )
            except (KeyError, JobStateError):
                continue
            self._jobs_terminal.inc(state="cancelled")
            if job_id in self._jobs:
                self._jobs[job_id]["record"] = record

    def _clear_stale_artifacts(self) -> None:
        import shutil

        root = self.workspace.results_dir
        try:
            children = list(root.iterdir())
        except OSError:  # pragma: no cover - cleanup is best-effort
            return
        for child in children:
            try:
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
                else:
                    child.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - cleanup is best-effort
                continue

    @staticmethod
    async def _offload(function, *args, **kwargs):
        """Run blocking disk I/O (ledger flock/replay, spool writes) off the loop.

        Every ledger operation takes a blocking ``fcntl.flock`` and replays
        the JSONL file; a contended lock (e.g. a concurrent CLI writer) held
        on the event-loop thread would stall every connection at once.
        """
        return await asyncio.to_thread(function, *args, **kwargs)

    # ------------------------------------------------------------ connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_name = peer[0] if isinstance(peer, tuple) else str(peer)
        request: Request | None = None
        started = time.perf_counter()
        try:
            try:
                # A deadline on reading the request: without one, a client
                # that opens a socket and never completes its headers/body
                # pins this task (and its buffers) forever, invisible to the
                # rate limiter and queue cap, which only see parsed requests.
                try:
                    request = await asyncio.wait_for(
                        read_request(reader, peer_name, self.max_body_bytes),
                        timeout=self.request_timeout_seconds,
                    )
                except asyncio.TimeoutError:
                    raise HttpError(
                        408, "timed out waiting for the request"
                    ) from None
                if request is None:
                    return
                if not request.request_id:
                    request.request_id = new_request_id()
                response = await self._dispatch(request)
            except HttpError as error:
                response = json_response(
                    error.status, {"error": error.message}, headers=error.headers
                )
            except Exception as error:  # noqa: BLE001 - last-resort 500
                response = json_response(
                    500, {"error": f"{type(error).__name__}: {error}"}
                )
            response = self._observe_response(request, peer_name, started, response)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    def _observe_response(
        self, request: Request | None, peer: str, started: float, response: bytes
    ) -> bytes:
        """Echo ``X-Request-Id``, meter the exchange, log any 4xx/5xx.

        ``request`` is ``None`` when the bytes on the wire never parsed into
        one (malformed framing, read timeout); those exchanges are metered
        under the reserved ``unread`` route so abuse is still visible.
        """
        request_id = request.request_id if request is not None else new_request_id()
        response = splice_header(response, "X-Request-Id", request_id)
        try:
            status = int(response.split(b" ", 2)[1])
        except (IndexError, ValueError):  # pragma: no cover - we framed it
            status = 0
        if request is None:
            route, method = "unread", ""
        else:
            route = request.route or "unmatched"
            method = request.method
        self._http_requests.inc(route=route, method=method, status=str(status))
        self._http_seconds.observe(time.perf_counter() - started, route=route)
        if status >= 400:
            _LOG.warning(
                "%s %s -> %d",
                method or "?",
                request.path if request is not None else "<unparsed>",
                status,
                extra={
                    "request_id": request_id,
                    "route": route,
                    "method": method or None,
                    "status": status,
                    "client": request.client if request is not None else peer,
                },
            )
        return response

    async def _dispatch(self, request: Request) -> bytes:
        allowed: set[str] = set()
        for method, pattern, handler_name, template in _ROUTES:
            match = pattern.fullmatch(request.path)
            if match is None:
                continue
            request.route = template  # known path: label even 405s by route
            if method != request.method:
                allowed.add(method)
                continue
            request.path_params = match.groupdict()
            handler: Handler = getattr(type(self), handler_name)
            return await handler(self, request)
        if allowed:
            raise HttpError(
                405,
                f"method {request.method} not allowed for {request.path}",
                headers={"Allow": ", ".join(sorted(allowed))},
            )
        raise HttpError(404, f"no route for {request.path}")

    # ------------------------------------------------------------- submission

    @_route("POST", r"/v1/jobs")
    async def _handle_submit(self, request: Request) -> bytes:
        submit_started = time.time()
        if self._draining:
            raise HttpError(
                503, "server is shutting down", headers={"Retry-After": "1"}
            )
        wait = self.limiter.check(request.client)
        if wait > 0:
            self._jobs_rejected.inc(reason="rate_limited")
            raise HttpError(
                429,
                f"client {request.client!r} is rate limited; retry in {wait:.3f}s",
                headers={"Retry-After": str(max(1, int(wait + 0.999)))},
            )
        if self.pool.depth >= self.pool.queue_cap:
            self._jobs_rejected.inc(reason="queue_full")
            raise self._queue_full_error(
                self.pool.depth, self.pool.queue_cap, self.pool.retry_after()
            )

        content_type = request.headers.get("content-type", "application/json")
        if content_type.split(";")[0].strip() == "text/csv":
            label, spec, spool = self._spec_from_csv_upload(request)
        else:
            label, spec, spool = self._spec_from_json(request.json())
        # The trace id rides inside the spec so the pool worker (and, on a
        # restart, the replayed job) can stamp it on the engine run.
        spec["request_id"] = request.request_id
        # Row-carrying jobs publish through a workspace result artifact
        # instead of pickling rendered row-strings back through the process
        # pool; the flag (rather than a default) keeps direct execute_job
        # callers on the legacy inline-rows payload.
        if spec.get("include_rows", True):
            spec["result_artifact"] = True

        # The full spec is persisted on the queued record (with an upload's
        # spool path still empty — replay reconstructs it from the job id),
        # so a restarted server can re-enqueue the job without the client.
        record = await self._offload(
            self.ledger.create,
            label=label,
            algorithm=spec["algorithm"],
            l=spec["l"],
            privacy=spec["privacy"],
            client=request.client,
            spec=spec,
            max_attempts=self.pool.max_attempts,
            request_id=request.request_id,
        )
        self._remember(record.id, record=record)
        self._pending_submits.add(record.id)
        try:
            if spool is not None:
                # Spool files are named by job id so concurrent uploads never
                # clash.  A failed write must roll the ledger record back —
                # the pool never saw this job, so nothing else would ever
                # close a lifecycle left 'queued' here.
                try:
                    path = self.workspace.tmp_dir / f"upload-{record.id}.csv"
                    await self._offload(path.write_bytes, spool)
                except OSError as error:
                    await self._rollback_submission(record.id)
                    raise HttpError(
                        500, f"failed to spool the upload: {error}"
                    ) from None
                spec["source"]["path"] = str(path)
            # The draining flag and queue capacity were pre-checked, but the
            # offloaded ledger/spool awaits above let concurrent submissions,
            # cancels, or a shutdown() that already harvested the pool race
            # past them.  Everything from here through pool.submit is
            # await-free, so nothing can interleave again.
            if record.id in self._cancel_requested:
                # A cancel landed while we were between the ledger create and
                # the enqueue; the cancel handler already moved the ledger
                # record, so just skip the enqueue.
                self._discard_spool(record.id)
                return json_response(
                    202,
                    {
                        "id": record.id,
                        "status": "cancelled",
                        "queue_depth": self.pool.depth,
                    },
                )
            if self._draining:
                await self._rollback_submission(record.id)
                raise HttpError(
                    503, "server is shutting down", headers={"Retry-After": "1"}
                )
            try:
                self.pool.submit(record.id, spec)
            except QueueFullError as error:
                self._jobs_rejected.inc(reason="queue_full")
                await self._rollback_submission(record.id)
                raise self._queue_full_error(
                    error.depth, error.capacity, error.retry_after
                ) from None
        finally:
            self._pending_submits.discard(record.id)
            self._cancel_requested.discard(record.id)
        self._jobs_submitted.inc()
        now = time.time()
        self.traces.begin(record.id, request.request_id)
        self.traces.add(
            record.id,
            Span("submit", start=submit_started, seconds=now - submit_started),
        )
        self.traces.mark(record.id, "queued", now)
        return json_response(
            202,
            {"id": record.id, "status": record.status, "queue_depth": self.pool.depth},
        )

    @staticmethod
    def _queue_full_error(depth: int, capacity: int, retry_after: float) -> HttpError:
        return HttpError(
            429,
            f"job queue is full ({depth}/{capacity})",
            headers={"Retry-After": str(max(1, int(retry_after)))},
        )

    async def _rollback_submission(self, job_id: str) -> None:
        """Undo a submission rejected after its ledger record already existed."""
        self._discard_spool(job_id)
        try:
            record = await self._offload(self.ledger.cancel, job_id)
        except (KeyError, JobStateError):  # pragma: no cover - racy cleanup
            return
        self._remember(job_id, record=record)

    def _spec_from_json(self, payload: dict) -> tuple[str, dict, bytes | None]:
        """Validate a JSON submission; returns (label, spec, spooled CSV or None)."""
        spec = self._base_spec(payload)
        rows = payload.get("rows")
        source = payload.get("source")
        if (rows is None) == (source is None):
            raise HttpError(400, "provide exactly one of 'rows' or 'source'")
        if rows is not None:
            label, spool = self._validate_inline_rows(payload, spec)
            return label, spec, spool
        if not isinstance(source, dict):
            raise HttpError(400, f"'source' must be an object, got {source!r}")
        kind = source.get("kind")
        if kind == "synthetic":
            dataset = str(source.get("dataset", "SAL")).upper()
            if dataset not in ("SAL", "OCC"):
                raise HttpError(400, f"unknown synthetic dataset {dataset!r}")
            n = _require_int(source, "n", minimum=1) if "n" in source else 10_000
            dimension = source.get("dimension")
            if dimension is not None:
                dimension = _require_int(source, "dimension", minimum=1)
            spec["source"] = {
                "kind": "synthetic",
                "dataset": dataset,
                "n": n,
                "seed": _require_int(source, "seed") if "seed" in source else 7,
                "dimension": dimension,
            }
            suffix = f"-{dimension}" if dimension is not None else ""
            return f"{dataset}{suffix}@{n}", spec, None
        if kind == "csv":
            path = source.get("path")
            if not isinstance(path, str) or not path:
                raise HttpError(400, "csv source requires a 'path' string")
            resolved = self._allowlisted_csv_path(path)
            qi, sa = self._validate_qi_sa(source)
            spec["source"] = {"kind": "csv", "path": str(resolved), "qi": qi, "sa": sa}
            return path, spec, None
        raise HttpError(400, f"unknown source kind {kind!r} (use 'synthetic' or 'csv')")

    def _allowlisted_csv_path(self, path: str) -> Path:
        """Resolve a server-side CSV path against the ``data_dir`` allowlist.

        The result endpoints return the parsed file verbatim, so an
        unrestricted path would let any network client read any file the
        server user can.  Paths are resolved (symlinks and ``..`` included)
        before the containment check.
        """
        if self.data_dir is None:
            raise HttpError(
                403,
                "server-side csv sources are disabled; start the server with "
                "--data-dir to allow them, or upload the CSV body instead",
            )
        resolved = (self.data_dir / path).resolve()
        try:
            resolved.relative_to(self.data_dir)
        except ValueError:
            raise HttpError(
                403,
                f"csv source path {path!r} is outside the served data directory",
            ) from None
        if not resolved.is_file():
            raise HttpError(400, f"csv source path {path!r} is not a server-side file")
        return resolved

    def _spec_from_csv_upload(self, request: Request) -> tuple[str, dict, bytes]:
        """Validate a ``text/csv`` upload driven by query parameters."""
        query = dict(request.query)
        if "privacy" in query:
            # The spec's dict encoding travels as a JSON-valued parameter
            # (the CSV body leaves nowhere else to put a structured field).
            import json as _json

            try:
                query["privacy"] = _json.loads(query["privacy"])
            except _json.JSONDecodeError:
                raise HttpError(
                    400, "'privacy' must be a JSON object query parameter"
                ) from None
        if "l" not in query and "privacy" not in query:
            raise HttpError(400, "csv upload requires an 'l' query parameter")
        if "l" in query:
            try:
                query["l"] = int(query["l"])
            except ValueError:
                raise HttpError(
                    400, f"'l' must be an integer, got {query['l']!r}"
                ) from None
        if "qi" in query:
            query["qi"] = [name for name in query["qi"].split(",") if name]
        if "metrics" in query:
            query["metrics"] = [name for name in query["metrics"].split(",") if name]
        if "include_rows" in query:
            query["include_rows"] = query["include_rows"].lower() not in (
                "0", "false", "no",
            )
        for key in ("shards", "seed", "chunk_rows"):
            if key in query:
                try:
                    query[key] = int(query[key])
                except ValueError:
                    raise HttpError(
                        400, f"{key!r} must be an integer, got {query[key]!r}"
                    ) from None
        spec = self._base_spec(query)
        qi, sa = self._validate_qi_sa(query)
        if not request.body.strip():
            raise HttpError(400, "csv upload body is empty")
        header_line = request.body.split(b"\n", 1)[0].decode("utf-8", "replace")
        header = next(csv.reader([header_line]))
        missing = [name for name in (*qi, sa) if name not in header]
        if missing:
            raise HttpError(400, f"csv header {header} is missing columns {missing}")
        spec["source"] = {"kind": "csv", "path": "", "qi": qi, "sa": sa}
        label = f"upload({len(request.body)}B)"
        return label, spec, request.body

    def _base_spec(self, payload: dict) -> dict:
        """The source-independent part of a job spec, validated against registries."""
        algorithm = payload.get("algorithm", "TP+")
        try:
            info = algorithm_registry.get(algorithm)
        except UnknownEntryError:
            raise HttpError(
                400,
                f"unknown algorithm {algorithm!r}; known: "
                f"{sorted(algorithm_registry.names())}",
            ) from None
        privacy_spec, l = self._resolve_spec_and_l(payload)
        metrics = payload.get("metrics", [])
        if not isinstance(metrics, list) or not all(isinstance(m, str) for m in metrics):
            raise HttpError(400, f"'metrics' must be a list of names, got {metrics!r}")
        for name in metrics:
            try:
                metric_registry.get(name)
            except UnknownEntryError:
                raise HttpError(
                    400,
                    f"unknown metric {name!r}; known: {sorted(metric_registry.names())}",
                ) from None
        shards = payload.get("shards")
        if shards is not None:
            shards = _require_int(payload, "shards", minimum=1)
            if shards > 1 and not info.supports_sharding:
                raise HttpError(
                    400, f"algorithm {info.name!r} does not support sharded execution"
                )
        backend = payload.get("backend")
        if backend not in _BACKENDS:
            raise HttpError(400, f"unknown backend {backend!r}; known: {_BACKENDS[1:]}")
        chunk_rows = payload.get("chunk_rows")
        if chunk_rows is not None:
            chunk_rows = _require_int(payload, "chunk_rows", minimum=1)
        include_rows = payload.get("include_rows", True)
        if not isinstance(include_rows, bool):
            raise HttpError(
                400, f"'include_rows' must be a boolean, got {include_rows!r}"
            )
        return {
            "algorithm": info.name,
            "l": l,
            # The resolved spec always travels in its canonical dict form —
            # default submissions carry the frequency spec explicitly, so the
            # worker, the ledger and the result payload can never disagree on
            # what was enforced.
            "privacy": privacy_spec.to_dict(),
            "metrics": list(metrics),
            "shards": shards,
            "backend": backend,
            "seed": _require_int(payload, "seed") if "seed" in payload else 0,
            "chunk_rows": chunk_rows,
            # metrics-only workloads skip rendering/pickling/retaining the
            # full decoded table — at large n the rows dominate both the
            # process-pool transfer and the resident-result footprint.
            "include_rows": include_rows,
        }

    @classmethod
    def _resolve_spec_and_l(cls, payload: dict):
        """Resolve a payload's privacy model and ``l``; shared by ``/v1/jobs``
        and ``/v1/plan`` so the two endpoints can never validate differently.

        With an explicit ``privacy`` object, ``l`` is only an optional
        display hint (defaulting to the spec's group floor); without one it
        is required and keeps the frequency-diversity sugar contract.
        """
        spec = cls._validate_privacy(payload)
        if spec is not None:
            l = (
                _require_int(payload, "l", minimum=1)
                if "l" in payload
                else spec.group_floor()
            )
        else:
            l = _require_int(payload, "l", minimum=2)
            spec = resolve_privacy(None, l)
        return spec, l

    @staticmethod
    def _validate_privacy(payload: dict):
        """Validate an optional ``privacy`` object against the registry.

        Returns the resolved spec or ``None`` when the submission relies on
        the ``l`` sugar.  Check-only models (t-closeness) are rejected: they
        can be audited with ``ldiversity verify`` but not requested here.
        """
        privacy = payload.get("privacy")
        if privacy is None:
            return None
        if not isinstance(privacy, dict):
            raise HttpError(400, f"'privacy' must be an object, got {privacy!r}")
        try:
            spec = privacy_from_dict(privacy)
        except UnknownEntryError as error:
            raise HttpError(
                400,
                f"{error}",
            ) from None
        except ValueError as error:
            raise HttpError(400, f"invalid privacy spec: {error}") from None
        if not privacy_registry.get(spec.kind).enforceable:
            raise HttpError(
                400,
                f"privacy model {spec.kind!r} is check-only and cannot be an "
                "anonymization target (audit published CSVs with "
                "`ldiversity verify` instead)",
            )
        return spec

    @staticmethod
    def _validate_qi_sa(payload: dict) -> tuple[list[str], str]:
        qi = payload.get("qi")
        sa = payload.get("sa")
        if not isinstance(qi, list) or not qi or not all(isinstance(q, str) for q in qi):
            raise HttpError(400, f"'qi' must be a non-empty list of column names, got {qi!r}")
        if not isinstance(sa, str) or not sa:
            raise HttpError(400, f"'sa' must be a column name, got {sa!r}")
        if sa in qi:
            raise HttpError(400, f"sensitive column {sa!r} cannot also be a QI column")
        return list(qi), sa

    def _validate_inline_rows(self, payload: dict, spec: dict) -> tuple[str, bytes]:
        """Validate inline ``rows`` and spool them into CSV bytes."""
        qi, sa = self._validate_qi_sa(payload)
        rows = payload["rows"]
        if not isinstance(rows, list) or not rows:
            raise HttpError(400, "'rows' must be a non-empty list")
        columns = payload.get("columns")
        if isinstance(rows[0], dict):
            columns = list(qi) + [sa]
            try:
                cells = [[str(row[name]) for name in columns] for row in rows]
            except (TypeError, KeyError) as error:
                raise HttpError(
                    400, f"row is missing column {error}: rows must be objects "
                    f"with every qi/sa column"
                ) from None
        elif isinstance(rows[0], list):
            if not isinstance(columns, list) or not columns:
                raise HttpError(400, "list-shaped 'rows' require a 'columns' list")
            missing = [name for name in (*qi, sa) if name not in columns]
            if missing:
                raise HttpError(400, f"'columns' {columns} is missing {missing}")
            width = len(columns)
            if any(not isinstance(row, list) or len(row) != width for row in rows):
                raise HttpError(400, f"every row must be a list of {width} cells")
            cells = [[str(cell) for cell in row] for row in rows]
        else:
            raise HttpError(400, "'rows' must contain objects or lists")
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(columns)
        writer.writerows(cells)
        spec["source"] = {"kind": "csv", "path": "", "qi": qi, "sa": sa}
        return f"inline({len(rows)} rows)", buffer.getvalue().encode("utf-8")

    # ------------------------------------------------------------ transitions

    async def _on_transition(
        self,
        job_id: str,
        status: str,
        result: dict | None = None,
        error: str = "",
        attempts: int = 0,
        retry_in: float = 0.0,
        quarantined: bool = False,
    ) -> None:
        """Pool callback (awaited by the drainer): persist + mirror a transition.

        The ledger write runs on an executor thread; the in-memory job table
        is only touched from the event-loop thread, and the trace/metric
        mutations go through their own locks.
        """
        self._trace_transition(job_id, status, error, attempts, quarantined, result)
        publish_started = time.time()
        try:
            if status == "running":
                record = await self._offload(
                    self.ledger.transition, job_id, "running", attempts=attempts
                )
            elif status == "retrying":
                _LOG.warning(
                    "job %s attempt %d failed (%s); retrying in %.2fs",
                    job_id,
                    attempts,
                    error,
                    retry_in,
                    extra={
                        "job_id": job_id,
                        "request_id": self.traces.request_id(job_id),
                        "outcome": "retrying",
                        "attempts": attempts,
                        "error": error,
                    },
                )
                record = await self._offload(
                    self.ledger.transition,
                    job_id,
                    "retrying",
                    attempts=attempts,
                    last_error=error,
                )
            elif status == "failed":
                self._jobs_terminal.inc(state="failed")
                if quarantined:
                    _LOG.error(
                        "job %s quarantined: %s",
                        job_id,
                        error,
                        extra={
                            "job_id": job_id,
                            "request_id": self.traces.request_id(job_id),
                            "outcome": "quarantined",
                            "attempts": attempts,
                            "error": error,
                        },
                    )
                record = await self._offload(
                    self.ledger.transition,
                    job_id,
                    "failed",
                    error=error,
                    attempts=attempts,
                    last_error=error,
                    quarantined=quarantined,
                )
            elif status == "done":
                assert result is not None
                self._jobs_terminal.inc(state="done")
                if result.get("store_hit"):
                    self._store_hits.inc()
                decision = result.get("decision") or {}
                record = await self._offload(
                    self.ledger.transition,
                    job_id,
                    "done",
                    attempts=attempts,
                    n=result["n"],
                    d=result["d"],
                    shards=decision.get("shards", 1),
                    workers=decision.get("workers", 1),
                    backend=decision.get("backend", ""),
                    stars=result["stars"],
                    suppressed_tuples=result["suppressed_tuples"],
                    groups=result["groups"],
                    seconds=result["seconds"],
                    cache_hit=result["cache_hit"],
                    store_hit=result["store_hit"],
                    metric_values=result["metric_values"],
                )
            else:  # pragma: no cover - pool only emits the four above
                return
        except (KeyError, JobStateError) as state_error:
            # Usually an out-of-band writer (e.g. a CLI `jobs cancel`) moved
            # the job ahead of us — refresh the in-memory mirror from the
            # ledger so it does not freeze on a stale non-terminal record.
            try:
                record = await self._offload(self.ledger.get, job_id)
            except (KeyError, OSError):
                record = None
            if status in ("done", "failed") and (
                record is None or not record.is_terminal()
            ):
                # The ledger is *behind*, not ahead (e.g. its 'running'
                # append failed earlier and it still says 'queued'):
                # reinstalling that record would freeze the job, so
                # synthesize the terminal state from memory instead.
                record = (
                    self._synthesized_record(
                        job_id, status, error, f"ledger behind the worker: {state_error}"
                    )
                    or record
                )
        except OSError as io_error:
            # The ledger append itself failed (e.g. disk full, injected
            # fault).  Keep the API truthful from memory: flip the resident
            # record to the attempted status so the job cannot read as
            # 'running' forever, and fall through so a computed result is
            # still remembered — the ledger lags (later transitions re-sync
            # it via the JobStateError refresh above) but nothing is lost.
            record = self._synthesized_record(
                job_id, status, error, f"ledger append failed: {io_error}"
            )
        if status in ("done", "failed"):
            self._discard_spool(job_id)
            self.traces.add(
                job_id,
                Span(
                    "publish",
                    start=publish_started,
                    seconds=time.time() - publish_started,
                ),
            )
        self._remember(job_id, record=record, result=result)

    #: Canonical engine stage order, used to lay bridged stage spans end to
    #: end under their attempt (the profiling snapshot is an unordered dict).
    _STAGE_ORDER = (
        "load", "encode", "encode-chunks", "state-init", "phase1", "phase2",
        "phase3", "publish", "publish-chunks", "merge", "metrics",
    )

    def _trace_transition(
        self,
        job_id: str,
        status: str,
        error: str,
        attempts: int,
        quarantined: bool,
        result: dict | None,
    ) -> None:
        """Record the spans a pool transition implies (all no-ops when the
        job's trace was evicted or predates this server process)."""
        now = time.time()
        if status == "running":
            queued_at = self.traces.mark_at(job_id, "queued")
            if queued_at is not None:
                self.traces.add(
                    job_id,
                    Span("queue-wait", start=queued_at, seconds=now - queued_at),
                )
            self.traces.mark(job_id, "attempt", now)
            return
        attempt_at = self.traces.mark_at(job_id, "attempt")
        if attempt_at is None:
            return
        attempt_name = f"attempt-{max(attempts, 1)}"
        if status == "retrying":
            outcome = "retry"
        elif status == "failed":
            outcome = "quarantined" if quarantined else "failed"
        else:
            outcome = "done"
        attributes: dict = {"outcome": outcome}
        if error:
            attributes["error"] = error
        self.traces.add(
            job_id,
            Span(
                attempt_name,
                start=attempt_at,
                seconds=now - attempt_at,
                attributes=attributes,
            ),
        )
        if status == "retrying":
            # The backoff wait plus the re-queue both land in the next
            # attempt's queue-wait span.
            self.traces.mark(job_id, "queued", now)
            return
        if status == "done" and result is not None:
            profile = result.get("profile") or {}
            ordered = [
                (stage, profile[stage])
                for stage in self._STAGE_ORDER
                if stage in profile
            ]
            ordered.extend(
                sorted(
                    (stage, seconds)
                    for stage, seconds in profile.items()
                    if stage not in self._STAGE_ORDER
                )
            )
            cursor = attempt_at
            for stage, seconds in ordered:
                self._engine_stage_seconds.observe(seconds, stage=stage)
                self.traces.add(
                    job_id,
                    Span(
                        f"engine:{stage}",
                        start=cursor,
                        seconds=seconds,
                        parent=attempt_name,
                    ),
                )
                cursor += seconds

    def _synthesized_record(
        self, job_id: str, status: str, error: str, cause: str
    ) -> JobRecord | None:
        """A record built from the resident one when the ledger can't provide
        it (failed append, or one lagging behind the worker) — used for both
        terminal states and a retry the ledger never heard about."""
        entry = self._jobs.get(job_id)
        current = entry["record"] if entry is not None else None
        if current is None:
            return None
        if status in ("done", "failed", "cancelled"):
            return replace(
                current, status=status, updated=time.time(), error=error or cause
            )
        return replace(
            current, status=status, updated=time.time(), last_error=error or cause
        )

    def _remember(
        self, job_id: str, record: JobRecord | None, result: dict | None = None
    ) -> None:
        """Update the bounded in-memory job table (evicts oldest terminal entries)."""
        entry = self._jobs.setdefault(job_id, {"record": None, "result": None})
        if record is not None:
            entry["record"] = record
        if result is not None:
            entry["result"] = result
        self._jobs.move_to_end(job_id)
        while len(self._jobs) > self.max_resident_jobs:
            evicted = next(
                (
                    key
                    for key, candidate in self._jobs.items()
                    if candidate["record"] is None or candidate["record"].is_terminal()
                ),
                None,
            )
            if evicted is None:  # every resident job is still live; keep them
                break
            self._discard_artifact(self._jobs.pop(evicted))

    def _discard_artifact(self, entry: dict | None) -> None:
        """Delete an evicted job's on-disk result artifact (best-effort).

        Once the resident entry is gone the result can never be served again
        (``/result`` answers 404 and points at the run store), so its
        artifact directory is reclaimed.  Only paths inside the workspace's
        ``results/`` tree are touched — the path travelled through the
        worker payload, and deleting anywhere it points would be a footgun.
        """
        info = ((entry or {}).get("result") or {}).get("result_artifact")
        if not info:
            return
        import shutil

        results_root = self.workspace.results_dir.resolve()
        try:
            target = Path(info.get("path", "")).resolve()
            target.relative_to(results_root)
        except (ValueError, OSError):
            return
        if target == results_root:
            return
        try:
            shutil.rmtree(target, ignore_errors=True)
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass

    def _discard_spool(self, job_id: str) -> None:
        """Delete a submission's spooled upload once the job can no longer read it."""
        try:
            (self.workspace.tmp_dir / f"upload-{job_id}.csv").unlink(missing_ok=True)
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass

    # ----------------------------------------------------------------- status

    async def _record_for(self, job_id: str) -> JobRecord:
        entry = self._jobs.get(job_id)
        if entry is not None and entry["record"] is not None:
            return entry["record"]
        try:
            return await self._offload(self.ledger.get, job_id)
        except KeyError:
            raise HttpError(404, f"no job {job_id!r}") from None

    @_route("GET", r"/v1/jobs/(?P<id>[\w.-]+)")
    async def _handle_status(self, request: Request) -> bytes:
        record = await self._record_for(request.path_params["id"])
        payload = asdict(record)
        payload["result_ready"] = (
            self._jobs.get(record.id, {}).get("result") is not None
        )
        return json_response(200, payload)

    @_route("GET", r"/v1/jobs")
    async def _handle_list(self, request: Request) -> bytes:
        records = [asdict(record) for record in await self._offload(self.ledger.list)]
        return json_response(200, {"jobs": records})

    async def _result_for(self, job_id: str) -> dict:
        record = await self._record_for(job_id)
        if record.status in ("queued", "running", "retrying"):
            raise HttpError(
                409,
                f"job {job_id} is {record.status}; result not ready",
                headers={"Retry-After": "1"},
            )
        if record.status == "failed":
            raise HttpError(409, f"job {job_id} failed: {record.error}")
        if record.status == "cancelled":
            raise HttpError(409, f"job {job_id} was cancelled")
        entry = self._jobs.get(job_id)
        result = entry.get("result") if entry else None
        if result is None:
            raise HttpError(
                404,
                f"job {job_id} is done but its result is no longer resident "
                "(resubmit; the run store will answer it)",
            )
        return result

    @_route("GET", r"/v1/jobs/(?P<id>[\w.-]+)/result")
    async def _handle_result(self, request: Request) -> bytes:
        """Serve a done job's published table.

        Artifact-backed results (the default for row-carrying submissions)
        render from the memory-mapped workspace artifact off the event loop;
        either way the rendered body is cached on the resident job entry, so
        a repeat fetch is a cache hit that re-renders nothing (the
        ``repro_result_renders_total`` / ``repro_result_cache_hits_total``
        counters make that observable).
        """
        job_id = request.path_params["id"]
        result = await self._result_for(job_id)
        artifact = result.get("result_artifact")
        if "rows" not in result and not artifact:
            raise HttpError(
                409,
                "job was submitted with include_rows=false; "
                "only /metrics is available",
            )
        format_name = request.query.get("format", "json")
        if format_name not in ("json", "csv"):
            raise HttpError(
                400, f"unknown result format {format_name!r} (json or csv)"
            )
        entry = self._jobs.get(job_id)
        cache: dict = entry.setdefault("render_cache", {}) if entry is not None else {}
        if format_name == "csv":
            body = cache.get("csv")
            if body is not None:
                self._result_cache_hits.inc(format="csv")
                return render_response(200, body, content_type="text/csv")
            if artifact:
                body = await self._render_artifact(artifact["path"], "csv")
            else:
                body = await self._offload(
                    self._render_rows_csv, result["header"], result["rows"]
                )
            self._result_renders.inc(format="csv")
            cache["csv"] = body
            return render_response(200, body, content_type="text/csv")
        if "rows" in result:
            return json_response(200, result)
        rows = cache.get("rows")
        if rows is not None:
            self._result_cache_hits.inc(format="json")
        else:
            rows = await self._render_artifact(artifact["path"], "rows")
            self._result_renders.inc(format="json")
            cache["rows"] = rows
        return json_response(200, {**result, "rows": rows})

    async def _render_artifact(self, path: str, what: str):
        """Render ``csv`` bytes or ``rows`` lists from an on-disk artifact."""
        from repro.engine.columnstore import ResultArtifact
        from repro.errors import DataSourceError

        def render():
            opened = ResultArtifact.mmap(path)
            return opened.csv_bytes() if what == "csv" else opened.rows()

        try:
            return await self._offload(render)
        except DataSourceError as error:
            raise HttpError(
                404,
                f"result artifact is no longer available ({error}); "
                "resubmit and the run store will answer it",
            ) from None

    @staticmethod
    def _render_rows_csv(header: list, rows: list) -> bytes:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(header)
        writer.writerows(rows)
        return buffer.getvalue().encode("utf-8")

    def _resident_artifact_bytes(self) -> float:
        """Gauge callback: on-disk bytes of every resident job's artifact."""
        return float(
            sum(
                (entry.get("result") or {}).get("result_artifact", {}).get("bytes", 0)
                for entry in self._jobs.values()
            )
        )

    @_route("GET", r"/v1/jobs/(?P<id>[\w.-]+)/metrics")
    async def _handle_job_metrics(self, request: Request) -> bytes:
        result = await self._result_for(request.path_params["id"])
        payload = {key: value for key, value in result.items() if key not in ("rows", "header")}
        return json_response(200, payload)

    @_route("GET", r"/v1/jobs/(?P<id>[\w.-]+)/trace")
    async def _handle_trace(self, request: Request) -> bytes:
        """The span tree recorded for one job (submitted to *this* process).

        Traces are memory-resident diagnostics: a job from a previous server
        process, or one evicted from the bounded trace store, answers 404
        even though its ledger record still exists.
        """
        job_id = request.path_params["id"]
        trace = self.traces.get(job_id)
        if trace is None:
            raise HttpError(
                404,
                f"no trace for job {job_id!r} (traces are held in memory "
                "for recent jobs of this server process only)",
            )
        return json_response(200, {"id": job_id, **trace})

    @_route("POST", r"/v1/jobs/(?P<id>[\w.-]+)/cancel")
    async def _handle_cancel(self, request: Request) -> bytes:
        job_id = request.path_params["id"]
        record = await self._record_for(job_id)
        if record.is_terminal():
            raise HttpError(409, f"job {job_id} is already {record.status}")
        if not self.pool.cancel(job_id):
            if job_id in self._pending_submits:
                # The submission is still between its ledger create and the
                # enqueue (spool write in flight): flag it so the submitter
                # skips pool.submit, and cancel the ledger record here.
                self._cancel_requested.add(job_id)
            else:
                raise HttpError(
                    409,
                    f"job {job_id} is {record.status}; only queued or "
                    "retry-waiting jobs can be cancelled",
                )
        try:
            record = await self._offload(self.ledger.cancel, job_id)
        except JobStateError as error:
            raise HttpError(409, str(error)) from None
        self._jobs_terminal.inc(state="cancelled")
        self._discard_spool(job_id)
        self._remember(job_id, record=record)
        return json_response(200, asdict(record))

    # ---------------------------------------------------------- introspection

    @_route("GET", r"/v1/algorithms")
    async def _handle_algorithms(self, request: Request) -> bytes:
        entries = [
            {
                "name": info.name,
                "description": info.description,
                "complexity": info.complexity,
                "approximation": info.approximation,
                "supports_sharding": info.supports_sharding,
                "deterministic": info.deterministic,
            }
            for info in algorithm_registry.entries()
        ]
        return json_response(200, {"algorithms": entries})

    @_route("GET", r"/v1/metrics")
    async def _handle_metrics(self, request: Request) -> bytes:
        entries = [
            {
                "name": info.name,
                "description": info.description,
                "needs_source": info.needs_source,
                "better": info.better,
            }
            for info in metric_registry.entries()
        ]
        return json_response(200, {"metrics": entries})

    @_route("GET", r"/v1/privacy")
    async def _handle_privacy(self, request: Request) -> bytes:
        entries = [
            {
                "name": info.name,
                "description": info.description,
                "params": info.params_schema,
                "enforceable": info.enforceable,
                "default": info.name == "frequency-l",
            }
            for info in privacy_registry.entries()
        ]
        return json_response(200, {"privacy_models": entries})

    @_route("POST", r"/v1/plan")
    async def _handle_plan(self, request: Request) -> bytes:
        payload = request.json()
        algorithm = payload.get("algorithm", "TP+")
        try:
            info = algorithm_registry.get(algorithm)
        except UnknownEntryError:
            raise HttpError(400, f"unknown algorithm {algorithm!r}") from None
        n = _require_int(payload, "n", minimum=0)
        d = _require_int(payload, "d", minimum=1) if "d" in payload else 1
        spec, l = self._resolve_spec_and_l(payload)
        from repro.service.planner import default_planner

        try:
            decision = default_planner().decide(
                info,
                n=n,
                d=d,
                l=l,
                shards=payload.get("shards"),
                workers=payload.get("workers"),
                backend=payload.get("backend"),
                privacy=spec,
            )
        except ValueError as error:
            raise HttpError(400, str(error)) from None
        return json_response(
            200,
            {
                "shards": decision.shards,
                "workers": decision.workers,
                "backend": decision.backend,
                "estimated_seconds": decision.estimated_seconds,
                "privacy": decision.privacy,
                "reasons": list(decision.reasons),
                "candidates": [list(entry) for entry in decision.candidates],
            },
        )

    @_route("GET", r"/v1/telemetry")
    async def _handle_telemetry(self, request: Request) -> bytes:
        """Operational telemetry in the Prometheus text exposition format.

        Distinct from ``/v1/metrics``, which lists the *quality*-metric
        registry (information loss etc.) a submission can request.
        """
        body = self.telemetry.render().encode("utf-8")
        return render_response(
            200, body, content_type="text/plain; version=0.0.4; charset=utf-8"
        )

    @_route("GET", r"/v1/health")
    async def _handle_health(self, request: Request) -> bytes:
        uptime = time.time() - self._started_at if self._started_at else 0.0
        return json_response(
            200,
            {
                "status": "draining" if self._draining else "ok",
                "version": __version__,
                "uptime_seconds": uptime,
                "workers": self.pool.workers,
                "queue_depth": self.pool.depth,
                "queue_cap": self.pool.queue_cap,
                "running": self.pool.running,
                "callback_errors": self.pool.callback_errors,
                "pool": {
                    "retries": self.pool.retries,
                    "pool_restarts": self.pool.pool_restarts,
                    "timeouts": self.pool.timeouts,
                    "quarantined": self.pool.quarantined,
                    "retrying": self.pool.retrying,
                    "max_attempts": self.pool.max_attempts,
                    "job_timeout_seconds": self.pool.job_timeout_seconds,
                },
                "rate_limit": {
                    "enabled": self.limiter.enabled,
                    "rate": self.limiter.rate,
                    "burst": self.limiter.burst if self.limiter.enabled else None,
                },
                "store": self.use_store,
                "workspace": str(self.workspace.root),
                "jobs": dict(self.stats),
            },
        )
