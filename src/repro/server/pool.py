"""Bounded async worker pool: queue, lifecycle callbacks, process fan-out.

The HTTP layer never runs an anonymization itself: accepted jobs are encoded
as a picklable *spec* dict and pushed onto a bounded :class:`asyncio.Queue`.
A fixed set of drainer coroutines pops specs and executes them on a
``concurrent.futures`` executor — by default a :class:`ProcessPoolExecutor`,
so CPU-bound runs overlap across cores while the event loop stays free to
answer status polls.  The queue bound is the server's backpressure contract:
:meth:`WorkerPool.submit` raises :class:`QueueFullError` instead of buffering
without limit, and the HTTP layer turns that into ``429 + Retry-After``.

:func:`execute_job` (the executor entry point) builds a fresh
:class:`~repro.engine.core.Engine` whose cache reads through the workspace's
persistent :class:`~repro.service.store.RunStore` — each worker re-opens the
JSONL store per job, so a repeated identical submission is a **store hit**
even though every job runs in a different process.

Lifecycle transitions (``running``/``done``/``failed``/``cancelled``) are
reported through a single callback invoked on the event-loop thread; the
server wires it to the in-memory job table and the persistent
:class:`~repro.service.jobs.JobLedger`.
"""

from __future__ import annotations

import asyncio
import inspect
import math
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable

from repro.engine.cache import ResultCache
from repro.engine.core import Engine, RunPlan
from repro.engine.sinks import render_cell_value
from repro.engine.sources import CsvSource, DataSource, SyntheticSource
from repro.privacy.spec import privacy_from_dict

__all__ = ["QueueFullError", "WorkerPool", "build_source", "execute_job"]

#: A transition callback: ``callback(job_id, status, result=None, error="")``.
#: It may be a plain function or a coroutine function; coroutines are awaited
#: on the event loop, so a callback doing slow I/O can offload it without
#: blocking the drainers.
TransitionCallback = Callable[..., object]


class QueueFullError(Exception):
    """The pool's queue is at capacity; the caller should retry later.

    ``retry_after`` is the pool's estimate of when a slot will free up — the
    HTTP layer forwards it as the ``Retry-After`` header.
    """

    def __init__(self, depth: int, capacity: int, retry_after: float) -> None:
        super().__init__(f"job queue full ({depth}/{capacity})")
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


# --------------------------------------------------------------------- worker


def build_source(spec: dict) -> DataSource:
    """Build the :class:`DataSource` described by a job spec's ``source`` entry.

    Raises :class:`ValueError` on malformed specs — the HTTP layer validates
    before queueing, so this firing in a worker means a server bug.
    """
    kind = spec.get("kind")
    if kind == "csv":
        return CsvSource(
            path=spec["path"],
            qi_names=tuple(spec["qi"]),
            sa_name=spec["sa"],
            delimiter=spec.get("delimiter", ","),
        )
    if kind == "synthetic":
        return SyntheticSource(
            dataset=spec.get("dataset", "SAL"),
            n=int(spec.get("n", 10_000)),
            seed=int(spec.get("seed", 7)),
            dimension=spec.get("dimension"),
        )
    raise ValueError(f"unknown source kind {kind!r}")


def execute_job(spec: dict, workspace_root: str | None, use_store: bool) -> dict:
    """Executor entry point: run one job spec, return a picklable result.

    ``workers`` is pinned to 1 — parallelism belongs to the pool itself, and
    nesting a process pool inside a pool worker would oversubscribe the host.
    """
    source = build_source(spec["source"])
    privacy = spec.get("privacy")
    plan = RunPlan(
        source=source,
        algorithm=spec["algorithm"],
        l=int(spec["l"]),
        privacy=privacy_from_dict(privacy) if privacy else None,
        shards=spec.get("shards"),
        workers=1,
        backend=spec.get("backend"),
        seed=int(spec.get("seed", 0)),
        metrics=tuple(spec.get("metrics", ())),
        chunk_rows=spec.get("chunk_rows"),
    )
    if use_store:
        from repro.service.workspace import Workspace

        store = Workspace(workspace_root).run_store()
        engine = Engine(cache=ResultCache(store=store))
    else:
        engine = Engine(cache=ResultCache())
    report = engine.run(plan)

    generalized = report.generalized
    payload: dict = {
        "label": report.label,
        "algorithm": plan.algorithm,
        "l": plan.l,
        "privacy": report.privacy.to_dict() if report.privacy is not None else None,
        "enforcement_merges": report.enforcement_merges,
        "n": report.n,
        "d": report.d,
        "stars": generalized.star_count(),
        "suppressed_tuples": generalized.suppressed_tuple_count(),
        "groups": len(generalized.groups()),
        "phase_reached": report.phase_reached,
        "metric_values": dict(report.metric_values),
        "cache_hit": report.cache_hit,
        "store_hit": report.store_hit,
        "verified": report.verified,
        "seconds": report.timings.total_seconds,
        "timings": {
            "load_seconds": report.timings.load_seconds,
            "anonymize_seconds": report.timings.anonymize_seconds,
            "metrics_seconds": report.timings.metrics_seconds,
        },
        "shard_sizes": list(report.shard_sizes),
        "decision": {
            "shards": report.decision.shards,
            "workers": report.decision.workers,
            "backend": report.decision.backend,
        }
        if report.decision is not None
        else None,
    }
    if spec.get("include_rows", True):
        schema = generalized.schema
        header = list(schema.qi_names) + [schema.sensitive.name]
        rows = []
        for row in range(len(generalized)):
            record = generalized.decoded_record(row)
            rows.append([str(render_cell_value(record[name])) for name in header])
        payload["header"] = header
        payload["rows"] = rows
    return payload


# ----------------------------------------------------------------------- pool


class WorkerPool:
    """A bounded asyncio job queue drained onto a process/thread executor."""

    def __init__(
        self,
        workers: int = 2,
        queue_cap: int = 16,
        transition: TransitionCallback | None = None,
        executor_kind: str = "process",
        workspace_root: str | None = None,
        use_store: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        if executor_kind not in ("process", "thread"):
            raise ValueError(f"unknown executor kind {executor_kind!r}")
        self.workers = workers
        self.queue_cap = queue_cap
        self._transition = transition or (lambda *args, **kwargs: None)
        self._executor_kind = executor_kind
        self._workspace_root = workspace_root
        self._use_store = use_store
        self._queue: asyncio.Queue[tuple[str, dict]] = asyncio.Queue(maxsize=queue_cap)
        self._queued: set[str] = set()
        self._running: set[str] = set()
        self._cancelled: set[str] = set()
        self._gate = asyncio.Event()
        self._gate.set()
        self._executor: Executor | None = None
        self._drainers: list[asyncio.Task] = []
        #: Seconds one queue slot is expected to take to free up; seeds the
        #: Retry-After estimate before any job has completed.
        self._recent_seconds = 0.5
        #: Transition callbacks that raised (and were swallowed to keep the
        #: drainer alive); surfaced by the server's health endpoint.
        self.callback_errors = 0

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        if self._drainers:
            raise RuntimeError("pool already started")
        if self._executor_kind == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        else:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        self._drainers = [
            asyncio.create_task(self._drain(), name=f"pool-drainer-{index}")
            for index in range(self.workers)
        ]

    async def shutdown(self, grace_seconds: float = 10.0) -> tuple[list[str], list[str]]:
        """Stop draining and tear the executor down.

        In-flight jobs get ``grace_seconds`` to finish *and record their
        terminal transition* before the drainers are cancelled — cancelling
        first would compute the result in the worker and then throw it away,
        leaving the job ``running`` in the ledger forever.

        Returns ``(abandoned, interrupted)``: job ids that never started
        (still queued / already cancelled) and job ids whose run outlived the
        grace window (their transition was lost; the caller should move them
        to a terminal state).
        """
        self._gate.clear()  # nothing new starts; in-flight drainers continue
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace_seconds
        while self._running and loop.time() < deadline:
            await asyncio.sleep(0.05)
        # Snapshot the stragglers *before* cancelling: cancellation unwinds
        # each drainer's ``finally: self._running.discard(...)``, so reading
        # ``self._running`` afterwards always sees an empty set.
        interrupted = sorted(self._running)
        for task in self._drainers:
            task.cancel()
        for task in self._drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drainers = []
        abandoned = sorted(self._queued | self._cancelled)
        self._queued.clear()
        self._cancelled.clear()
        self._running.clear()
        if self._executor is not None:
            # cancel_futures drops work that never started; join the workers
            # only when no job outlived the grace window — waiting on one
            # still mid-job would block the event loop for the rest of that
            # job, defeating the grace bound.  Interrupted *process* workers
            # are terminated outright so the interpreter's atexit join cannot
            # hang on them either (threads cannot be killed; they are left to
            # finish in the background).
            if interrupted and isinstance(self._executor, ProcessPoolExecutor):
                for process in list(
                    (getattr(self._executor, "_processes", None) or {}).values()
                ):
                    process.terminate()
            self._executor.shutdown(wait=not interrupted, cancel_futures=True)
            self._executor = None
        return abandoned, interrupted

    # ------------------------------------------------------------ submission

    @property
    def depth(self) -> int:
        """Jobs waiting in the queue (not yet picked up by a drainer)."""
        return self._queue.qsize()

    @property
    def running(self) -> int:
        return len(self._running)

    def retry_after(self) -> float:
        """Seconds after which a rejected client should retry."""
        return max(1.0, math.ceil(self._recent_seconds))

    def submit(self, job_id: str, spec: dict) -> None:
        """Queue one job; raises :class:`QueueFullError` at capacity."""
        try:
            self._queue.put_nowait((job_id, spec))
        except asyncio.QueueFull:
            raise QueueFullError(
                self._queue.qsize(), self.queue_cap, self.retry_after()
            ) from None
        self._queued.add(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; ``False`` if it already started (or unknown)."""
        if job_id in self._queued:
            self._queued.discard(job_id)
            self._cancelled.add(job_id)
            return True
        return False

    # ------------------------------------------------------- test/ops levers

    def pause(self) -> None:
        """Hold drainers before their next run.

        A drainer idle inside ``queue.get()`` already passed the gate, so it
        may still *pop* one job — but the second gate check holds it unrun
        (and uncancelled-marked), so a paused pool never starts work.  Call
        before :meth:`start` to freeze the pool from birth (nothing is popped
        at all) — the deterministic setup the backpressure tests rely on.
        """
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    # --------------------------------------------------------------- drainer

    async def _notify(self, job_id: str, status: str, **kwargs) -> None:
        """Invoke the transition callback, awaiting it when it is a coroutine.

        Callback exceptions are counted, not propagated: an escape here would
        kill the drainer task and permanently shrink the pool — with one
        worker, the server would keep accepting jobs nothing ever runs.
        (``CancelledError`` still propagates so shutdown can unwind us.)
        """
        try:
            outcome = self._transition(job_id, status, **kwargs)
            if inspect.isawaitable(outcome):
                await outcome
        except Exception:  # noqa: BLE001 - drainer survival beats strictness
            self.callback_errors += 1

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._gate.wait()
            job_id, spec = await self._queue.get()
            try:
                # Re-check after the pop: a drainer that was already parked in
                # get() when pause() was called must hold its job unrun.
                await self._gate.wait()
                if job_id in self._cancelled:
                    self._cancelled.discard(job_id)
                    continue
                self._queued.discard(job_id)
                self._running.add(job_id)
                await self._notify(job_id, "running")
                started = loop.time()
                try:
                    assert self._executor is not None
                    result = await loop.run_in_executor(
                        self._executor,
                        execute_job,
                        spec,
                        self._workspace_root,
                        self._use_store,
                    )
                except Exception as error:  # noqa: BLE001 - reported, not dropped
                    await self._notify(
                        job_id, "failed", error=f"{type(error).__name__}: {error}"
                    )
                else:
                    # Exponential moving average of job seconds -> Retry-After.
                    elapsed = loop.time() - started
                    self._recent_seconds = 0.7 * self._recent_seconds + 0.3 * elapsed
                    await self._notify(job_id, "done", result=result)
                finally:
                    self._running.discard(job_id)
            finally:
                self._queue.task_done()
