"""Bounded async worker pool: queue, lifecycle callbacks, process fan-out.

The HTTP layer never runs an anonymization itself: accepted jobs are encoded
as a picklable *spec* dict and pushed onto a bounded :class:`asyncio.Queue`.
A fixed set of drainer coroutines pops specs and executes them on a
``concurrent.futures`` executor — by default a :class:`ProcessPoolExecutor`,
so CPU-bound runs overlap across cores while the event loop stays free to
answer status polls.  The queue bound is the server's backpressure contract:
:meth:`WorkerPool.submit` raises :class:`QueueFullError` instead of buffering
without limit, and the HTTP layer turns that into ``429 + Retry-After``.

:func:`execute_job` (the executor entry point) builds a fresh
:class:`~repro.engine.core.Engine` whose cache reads through the workspace's
persistent :class:`~repro.service.store.RunStore` — each worker re-opens the
JSONL store per job, so a repeated identical submission is a **store hit**
even though every job runs in a different process.

Lifecycle transitions (``running``/``retrying``/``done``/``failed``/
``cancelled``) are reported through a single callback invoked on the
event-loop thread; the server wires it to the in-memory job table and the
persistent :class:`~repro.service.jobs.JobLedger`.

**Fault tolerance** (the at-least-once half of the serving contract):

* a worker dying mid-job (segfault, OOM kill, injected fault) surfaces as
  :class:`~concurrent.futures.BrokenExecutor`; the pool rebuilds the
  executor *without dropping queued work* (counted in
  :attr:`WorkerPool.pool_restarts`) and re-enqueues the job with exponential
  backoff as a ``retrying`` transition;
* ``job_timeout_seconds`` bounds each attempt's wall clock; a timed-out
  attempt on a process executor is killed (the worker processes are
  terminated and the pool rebuilt — in-flight collateral jobs crash-retry)
  and the job retried.  Thread executors cannot kill a worker, so the
  attempt is abandoned to finish in the background and its result discarded;
* a job whose retryable failures exhaust ``max_attempts`` is **quarantined**
  — failed terminally with ``quarantined=True`` — so a poison job cannot
  crash-loop the pool forever.

Deterministic exceptions from the job itself (bad spec, ineligible table)
still fail immediately: retrying them would burn attempts on a failure that
cannot change.
"""

from __future__ import annotations

import asyncio
import inspect
import math
import os
import re
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable

from repro import profiling
from repro.engine.cache import ResultCache
from repro.engine.core import Engine, RunPlan
from repro.engine.sinks import render_cell_value
from repro.engine.sources import CsvSource, DataSource, SyntheticSource
from repro.errors import JobTimeoutError, WorkerCrashError
from repro.obs.metrics import MetricsRegistry
from repro.privacy.spec import privacy_from_dict
from repro.server.faults import apply_worker_faults

__all__ = ["QueueFullError", "WorkerPool", "build_source", "execute_job"]

#: A transition callback: ``callback(job_id, status, result=None, error="",
#: attempts=0, retry_in=0.0, quarantined=False)``.  It may be a plain
#: function or a coroutine function; coroutines are awaited on the event
#: loop, so a callback doing slow I/O can offload it without blocking the
#: drainers.
TransitionCallback = Callable[..., object]


class QueueFullError(Exception):
    """The pool's queue is at capacity; the caller should retry later.

    ``retry_after`` is the pool's estimate of when a slot will free up — the
    HTTP layer forwards it as the ``Retry-After`` header.
    """

    def __init__(self, depth: int, capacity: int, retry_after: float) -> None:
        super().__init__(f"job queue full ({depth}/{capacity})")
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


# --------------------------------------------------------------------- worker


def build_source(spec: dict) -> DataSource:
    """Build the :class:`DataSource` described by a job spec's ``source`` entry.

    Raises :class:`ValueError` on malformed specs — the HTTP layer validates
    before queueing, so this firing in a worker means a server bug.
    """
    kind = spec.get("kind")
    if kind == "csv":
        return CsvSource(
            path=spec["path"],
            qi_names=tuple(spec["qi"]),
            sa_name=spec["sa"],
            delimiter=spec.get("delimiter", ","),
        )
    if kind == "synthetic":
        return SyntheticSource(
            dataset=spec.get("dataset", "SAL"),
            n=int(spec.get("n", 10_000)),
            seed=int(spec.get("seed", 7)),
            dimension=spec.get("dimension"),
        )
    raise ValueError(f"unknown source kind {kind!r}")


def _process_worker_init() -> None:
    """Detach a forked pool worker from the parent's signal plumbing.

    ``asyncio.loop.add_signal_handler`` (used by ``serve``) installs a
    Python-level handler plus a wakeup fd — a socketpair whose read end the
    parent's event loop watches.  A forked worker inherits *both*, so a
    SIGTERM delivered to the worker (executor healing, or the executor's own
    broken-pool cleanup) would make the worker write the signal number into
    the shared wakeup fd and the **parent** would observe its own shutdown
    signal: killing one worker would gracefully stop the whole server.
    Restoring the default dispositions here severs that link.
    """
    import signal

    signal.set_wakeup_fd(-1)
    for signal_number in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signal_number, signal.SIG_DFL)


def execute_job(
    spec: dict,
    workspace_root: str | None,
    use_store: bool,
    core_budget: int = 1,
) -> dict:
    """Executor entry point: run one job spec, return a picklable result.

    ``core_budget`` caps the engine workers this job may use.  Historically
    pinned to 1 (parallelism belonged to the pool alone); the pool now hands
    each job its planner-governed share of the host
    (:func:`repro.service.planner.per_job_worker_budget`), so one big job on
    a lightly loaded pool can fan its shards across idle cores while the
    product ``pool workers × budget`` never oversubscribes the machine.
    """
    apply_worker_faults(spec)
    source = build_source(spec["source"])
    privacy = spec.get("privacy")
    plan = RunPlan(
        source=source,
        algorithm=spec["algorithm"],
        l=int(spec["l"]),
        privacy=privacy_from_dict(privacy) if privacy else None,
        shards=spec.get("shards"),
        workers=max(1, int(core_budget)),
        backend=spec.get("backend"),
        seed=int(spec.get("seed", 0)),
        metrics=tuple(spec.get("metrics", ())),
        chunk_rows=spec.get("chunk_rows"),
        request_id=str(spec.get("request_id", "")),
    )
    if use_store:
        from repro.service.workspace import Workspace

        store = Workspace(workspace_root).run_store()
        engine = Engine(cache=ResultCache(store=store))
    else:
        engine = Engine(cache=ResultCache())
    # Force stage profiling for the run so per-stage timings ride back to the
    # server in the (picklable) payload — the only bridge out of a pool
    # worker process — then restore whatever the worker had configured.
    profiling_was_enabled = profiling.enabled()
    if not profiling_was_enabled:
        profiling.set_enabled(True)
    try:
        report = engine.run(plan)
    finally:
        if not profiling_was_enabled:
            profiling.set_enabled(False)

    generalized = report.generalized
    payload: dict = {
        "label": report.label,
        "algorithm": plan.algorithm,
        "l": plan.l,
        "privacy": report.privacy.to_dict() if report.privacy is not None else None,
        "enforcement_merges": report.enforcement_merges,
        "n": report.n,
        "d": report.d,
        "stars": generalized.star_count(),
        "suppressed_tuples": generalized.suppressed_tuple_count(),
        "groups": len(generalized.groups()),
        "phase_reached": report.phase_reached,
        "metric_values": dict(report.metric_values),
        "cache_hit": report.cache_hit,
        "store_hit": report.store_hit,
        "verified": report.verified,
        "seconds": report.timings.total_seconds,
        "timings": {
            "load_seconds": report.timings.load_seconds,
            "anonymize_seconds": report.timings.anonymize_seconds,
            "metrics_seconds": report.timings.metrics_seconds,
        },
        "shard_sizes": list(report.shard_sizes),
        "profile": dict(report.profile or {}),
        "request_id": report.request_id,
        "decision": {
            "shards": report.decision.shards,
            "workers": report.decision.workers,
            "backend": report.decision.backend,
        }
        if report.decision is not None
        else None,
    }
    if spec.get("include_rows", True):
        schema = generalized.schema
        header = list(schema.qi_names) + [schema.sensitive.name]
        payload["header"] = header
        artifact_dir = _result_artifact_dir(spec, workspace_root)
        if artifact_dir is not None:
            from repro.engine.columnstore import RESULT_FORMAT_NAME, ResultArtifact

            artifact = ResultArtifact.from_generalized(generalized)
            if artifact is not None:
                # Zero-copy handoff: the group-level arrays go to disk under
                # the workspace and only their path rides back through the
                # pickle channel — the n row-string lists are never built.
                artifact_bytes = artifact.save(artifact_dir)
                payload["result_artifact"] = {
                    "path": str(artifact_dir),
                    "rows": artifact.n,
                    "bytes": artifact_bytes,
                    "format": RESULT_FORMAT_NAME,
                }
                return payload
        rows = []
        for row in range(len(generalized)):
            record = generalized.decoded_record(row)
            rows.append([str(render_cell_value(record[name])) for name in header])
        payload["rows"] = rows
    return payload


_ARTIFACT_KEY_PATTERN = re.compile(r"[\w.-]{1,128}")


def _result_artifact_dir(spec: dict, workspace_root: str | None) -> str | None:
    """Where this job should save its result artifact, or ``None`` to skip.

    Artifacts are opt-in via the server-stamped ``result_artifact`` spec flag
    (direct :func:`execute_job` callers keep the legacy inline-rows payload)
    and keyed by the ledger job id — server-minted, so directories never
    collide across concurrent jobs and the key is always path-safe (the
    pattern check is defence in depth, not a trust boundary).
    """
    if not spec.get("result_artifact") or workspace_root is None:
        return None
    job_id = str(spec.get("job_id", "")).strip()
    if not _ARTIFACT_KEY_PATTERN.fullmatch(job_id) or job_id.startswith("."):
        return None
    from repro.service.workspace import Workspace

    return str(Workspace(workspace_root).results_dir / job_id)


# ----------------------------------------------------------------------- pool


class WorkerPool:
    """A bounded asyncio job queue drained onto a process/thread executor."""

    def __init__(
        self,
        workers: int = 2,
        queue_cap: int = 16,
        transition: TransitionCallback | None = None,
        executor_kind: str = "process",
        workspace_root: str | None = None,
        use_store: bool = True,
        job_timeout_seconds: float | None = None,
        max_attempts: int = 3,
        retry_backoff_seconds: float = 0.5,
        max_retry_backoff_seconds: float = 30.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        if executor_kind not in ("process", "thread"):
            raise ValueError(f"unknown executor kind {executor_kind!r}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if job_timeout_seconds is not None and job_timeout_seconds <= 0:
            raise ValueError(
                f"job_timeout_seconds must be positive, got {job_timeout_seconds}"
            )
        if retry_backoff_seconds <= 0:
            raise ValueError(
                f"retry_backoff_seconds must be positive, got {retry_backoff_seconds}"
            )
        self.workers = workers
        #: Engine workers each job may use — the planner-governed share of
        #: the host left after the pool's own fan-out, replacing the old
        #: hard ``workers=1`` pin inside :func:`execute_job`.
        from repro.service.planner import per_job_worker_budget

        self.job_core_budget = per_job_worker_budget(workers, os.cpu_count() or 1)
        self.queue_cap = queue_cap
        self._transition = transition or (lambda *args, **kwargs: None)
        self._executor_kind = executor_kind
        self._workspace_root = workspace_root
        self._use_store = use_store
        self.job_timeout_seconds = job_timeout_seconds
        self.max_attempts = max_attempts
        self.retry_backoff_seconds = retry_backoff_seconds
        self.max_retry_backoff_seconds = max_retry_backoff_seconds
        self._queue: asyncio.Queue[tuple[str, dict]] = asyncio.Queue(maxsize=queue_cap)
        self._queued: set[str] = set()
        self._running: set[str] = set()
        self._cancelled: set[str] = set()
        #: Attempt starts per live job id (dropped at terminal transitions).
        self._attempts: dict[str, int] = {}
        #: Jobs waiting out their retry backoff -> the sleeping requeue task.
        self._retry_waits: dict[str, asyncio.Task] = {}
        #: Serializes executor rebuilds; the first drainer to observe a break
        #: rebuilds, the rest see a fresh executor and skip.
        self._rebuild_lock = asyncio.Lock()
        self._gate = asyncio.Event()
        self._gate.set()
        self._executor: Executor | None = None
        self._drainers: list[asyncio.Task] = []
        #: Seconds one queue slot is expected to take to free up; seeds the
        #: Retry-After estimate before any job has completed.
        self._recent_seconds = 0.5
        #: Recovery counters live on the (lock-guarded) obs registry — the
        #: single writer-safe home shared with ``/v1/telemetry`` and
        #: ``/v1/health``; the legacy int attributes below are read-only
        #: views.  A standalone pool gets a private registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._callback_errors = self.metrics.counter(
            "repro_pool_callback_errors_total",
            "Transition callbacks that raised and were swallowed to keep the "
            "drainer alive.",
        )
        self._retries = self.metrics.counter(
            "repro_pool_retries_total",
            "Job attempts re-enqueued with backoff after a retryable failure.",
        )
        self._pool_restarts = self.metrics.counter(
            "repro_pool_restarts_total",
            "Executor rebuilds after a worker crash or timeout kill.",
        )
        self._timeouts = self.metrics.counter(
            "repro_pool_timeouts_total",
            "Job attempts that exceeded the per-attempt wall-clock budget.",
        )
        self._quarantined = self.metrics.counter(
            "repro_pool_quarantined_total",
            "Jobs failed terminally after exhausting their attempt budget.",
        )
        self._attempt_seconds = self.metrics.histogram(
            "repro_job_attempt_seconds",
            "Wall-clock seconds of one executor attempt, by outcome.",
            ("outcome",),
        )
        self.metrics.gauge(
            "repro_queue_depth", "Jobs waiting in the pool queue."
        ).set_function(lambda: float(self._queue.qsize()))
        self.metrics.gauge(
            "repro_queue_capacity", "Admission cap of the pool queue."
        ).set(float(queue_cap))
        self.metrics.gauge(
            "repro_jobs_running", "Jobs currently executing on the pool."
        ).set_function(lambda: float(len(self._running)))
        self.metrics.gauge(
            "repro_jobs_retry_waiting", "Jobs waiting out a retry backoff."
        ).set_function(lambda: float(len(self._retry_waits)))

    # Read-only views kept for callers/tests that predate the obs registry.

    @property
    def callback_errors(self) -> int:
        """Transition callbacks that raised (surfaced by ``/v1/health``)."""
        return int(self._callback_errors.total())

    @property
    def retries(self) -> int:
        return int(self._retries.total())

    @property
    def pool_restarts(self) -> int:
        return int(self._pool_restarts.total())

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.total())

    @property
    def quarantined(self) -> int:
        return int(self._quarantined.total())

    # ------------------------------------------------------------- lifecycle

    def _build_executor(self) -> Executor:
        if self._executor_kind == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers, initializer=_process_worker_init
            )
        return ThreadPoolExecutor(max_workers=self.workers)

    async def start(self) -> None:
        if self._drainers:
            raise RuntimeError("pool already started")
        self._executor = self._build_executor()
        self._drainers = [
            asyncio.create_task(self._drain(), name=f"pool-drainer-{index}")
            for index in range(self.workers)
        ]

    async def shutdown(self, grace_seconds: float = 10.0) -> tuple[list[str], list[str]]:
        """Stop draining and tear the executor down.

        In-flight jobs get ``grace_seconds`` to finish *and record their
        terminal transition* before the drainers are cancelled — cancelling
        first would compute the result in the worker and then throw it away,
        leaving the job ``running`` in the ledger forever.

        Returns ``(abandoned, interrupted)``: job ids that never started
        (still queued, waiting out a retry backoff, or already cancelled) and
        job ids whose run outlived the grace window (their transition was
        lost; the caller should move them to a terminal state).
        """
        self._gate.clear()  # nothing new starts; in-flight drainers continue
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace_seconds
        while self._running and loop.time() < deadline:
            await asyncio.sleep(0.05)
        # Snapshot the stragglers *before* cancelling: cancellation unwinds
        # each drainer's ``finally: self._running.discard(...)``, so reading
        # ``self._running`` afterwards always sees an empty set.
        interrupted = sorted(self._running)
        # Jobs parked in a retry backoff never started this attempt: cancel
        # their requeue timers and report them abandoned alongside the queue.
        retry_ids = set(self._retry_waits)
        for task in list(self._retry_waits.values()):
            task.cancel()
        for task in list(self._retry_waits.values()):
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._retry_waits.clear()
        for task in self._drainers:
            task.cancel()
        for task in self._drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drainers = []
        abandoned = sorted(self._queued | self._cancelled | retry_ids)
        self._queued.clear()
        self._cancelled.clear()
        self._running.clear()
        self._attempts.clear()
        if self._executor is not None:
            # cancel_futures drops work that never started; join the workers
            # only when no job outlived the grace window — waiting on one
            # still mid-job would block the event loop for the rest of that
            # job, defeating the grace bound.  Interrupted *process* workers
            # are terminated outright so the interpreter's atexit join cannot
            # hang on them either (threads cannot be killed; they are left to
            # finish in the background).
            if interrupted and isinstance(self._executor, ProcessPoolExecutor):
                for process in list(
                    (getattr(self._executor, "_processes", None) or {}).values()
                ):
                    process.terminate()
            self._executor.shutdown(wait=not interrupted, cancel_futures=True)
            self._executor = None
        return abandoned, interrupted

    # ------------------------------------------------------------ submission

    @property
    def depth(self) -> int:
        """Jobs waiting in the queue (not yet picked up by a drainer)."""
        return self._queue.qsize()

    @property
    def running(self) -> int:
        return len(self._running)

    @property
    def retrying(self) -> int:
        """Jobs currently waiting out a retry backoff."""
        return len(self._retry_waits)

    def retry_after(self) -> float:
        """Seconds after which a rejected client should retry."""
        return max(1.0, math.ceil(self._recent_seconds))

    def submit(self, job_id: str, spec: dict) -> None:
        """Queue one job; raises :class:`QueueFullError` at capacity."""
        try:
            self._queue.put_nowait((job_id, spec))
        except asyncio.QueueFull:
            raise QueueFullError(
                self._queue.qsize(), self.queue_cap, self.retry_after()
            ) from None
        self._queued.add(job_id)
        self._attempts[job_id] = 0

    async def requeue(self, job_id: str, spec: dict, attempts: int = 0) -> None:
        """Re-enqueue a replayed job, bypassing the admission cap.

        Replay must not drop jobs, so instead of :class:`QueueFullError` this
        *awaits* a queue slot (the drainers are already running and free them
        up).  ``attempts`` restores the job's spent budget from the ledger,
        clamped so a replayed job always gets at least one more attempt — the
        restart was the server's failure, not the job's.
        """
        self._attempts[job_id] = min(max(attempts, 0), self.max_attempts - 1)
        self._queued.add(job_id)
        await self._queue.put((job_id, spec))

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or backoff-waiting job; ``False`` once it started."""
        if job_id in self._queued:
            self._queued.discard(job_id)
            self._cancelled.add(job_id)
            return True
        task = self._retry_waits.pop(job_id, None)
        if task is not None:
            task.cancel()
            self._attempts.pop(job_id, None)
            return True
        return False

    # ------------------------------------------------------- test/ops levers

    def pause(self) -> None:
        """Hold drainers before their next run.

        A drainer idle inside ``queue.get()`` already passed the gate, so it
        may still *pop* one job — but the second gate check holds it unrun
        (and uncancelled-marked), so a paused pool never starts work.  Call
        before :meth:`start` to freeze the pool from birth (nothing is popped
        at all) — the deterministic setup the backpressure tests rely on.
        """
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    # --------------------------------------------------------------- healing

    async def _heal_executor(self, broken: Executor | None) -> None:
        """Replace a broken (or wedged) executor without dropping queued work.

        Serialized by a lock: the first drainer to observe the break rebuilds
        and counts a restart; later observers (whose in-flight futures failed
        on the *same* executor object) find it already replaced and skip.
        Old process workers are terminated so a wedged or dying process can
        never outlive its executor; their in-flight collateral jobs surface
        as :class:`BrokenExecutor` to their drainers and retry through the
        normal path.  Thread workers cannot be killed — the old thread
        executor is abandoned to finish its orphan work in the background.
        """
        async with self._rebuild_lock:
            if broken is None or self._executor is not broken:
                return
            self._pool_restarts.inc()
            if isinstance(broken, ProcessPoolExecutor):
                for process in list(
                    (getattr(broken, "_processes", None) or {}).values()
                ):
                    process.terminate()
            self._executor = self._build_executor()
            broken.shutdown(wait=False, cancel_futures=True)

    async def _retry_or_quarantine(
        self, job_id: str, spec: dict, attempt: int, error: Exception
    ) -> None:
        """Schedule a backoff re-enqueue, or quarantine an exhausted job."""
        reason = f"{type(error).__name__}: {error}"
        if attempt >= self.max_attempts:
            self._quarantined.inc()
            self._attempts.pop(job_id, None)
            await self._notify(
                job_id,
                "failed",
                error=f"quarantined after {attempt} attempts; last error: {reason}",
                attempts=attempt,
                quarantined=True,
            )
            return
        self._retries.inc()
        delay = min(
            self.retry_backoff_seconds * (2 ** (attempt - 1)),
            self.max_retry_backoff_seconds,
        )
        await self._notify(
            job_id, "retrying", error=reason, attempts=attempt, retry_in=delay
        )
        task = asyncio.create_task(
            self._requeue_later(job_id, spec, delay), name=f"pool-retry-{job_id}"
        )
        self._retry_waits[job_id] = task

    async def _requeue_later(self, job_id: str, spec: dict, delay: float) -> None:
        try:
            await asyncio.sleep(delay)
        except asyncio.CancelledError:
            self._retry_waits.pop(job_id, None)
            raise
        # No await between these two statements: cancel() must never observe
        # a job that is in neither the retry-wait map nor the queued set.
        self._retry_waits.pop(job_id, None)
        self._queued.add(job_id)
        await self._queue.put((job_id, spec))

    # --------------------------------------------------------------- drainer

    async def _notify(self, job_id: str, status: str, **kwargs) -> None:
        """Invoke the transition callback, awaiting it when it is a coroutine.

        Callback exceptions are counted, not propagated: an escape here would
        kill the drainer task and permanently shrink the pool — with one
        worker, the server would keep accepting jobs nothing ever runs.
        (``CancelledError`` still propagates so shutdown can unwind us.)
        """
        try:
            outcome = self._transition(job_id, status, **kwargs)
            if inspect.isawaitable(outcome):
                await outcome
        except Exception:  # noqa: BLE001 - drainer survival beats strictness
            self._callback_errors.inc()

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._gate.wait()
            job_id, spec = await self._queue.get()
            try:
                # Re-check after the pop: a drainer that was already parked in
                # get() when pause() was called must hold its job unrun.
                await self._gate.wait()
                if job_id in self._cancelled:
                    self._cancelled.discard(job_id)
                    self._attempts.pop(job_id, None)
                    continue
                self._queued.discard(job_id)
                self._running.add(job_id)
                attempt = self._attempts.get(job_id, 0) + 1
                self._attempts[job_id] = attempt
                await self._notify(job_id, "running", attempts=attempt)
                started = loop.time()
                executor = self._executor
                try:
                    assert executor is not None
                    call = loop.run_in_executor(
                        executor,
                        execute_job,
                        # The ledger job id rides along so the worker can key
                        # its result artifact by it (server-minted: path-safe
                        # and unique across concurrent jobs).
                        {**spec, "job_id": job_id},
                        self._workspace_root,
                        self._use_store,
                        self.job_core_budget,
                    )
                    if self.job_timeout_seconds is not None:
                        result = await asyncio.wait_for(
                            call, timeout=self.job_timeout_seconds
                        )
                    else:
                        result = await call
                except TimeoutError:
                    # The attempt outlived its wall-clock budget: enforce the
                    # bound by killing the executor's workers (process pools;
                    # thread attempts are abandoned — see _heal_executor) and
                    # retry the job.
                    self._timeouts.inc()
                    self._attempt_seconds.observe(
                        loop.time() - started, outcome="timeout"
                    )
                    await self._heal_executor(executor)
                    await self._retry_or_quarantine(
                        job_id,
                        spec,
                        attempt,
                        JobTimeoutError(
                            f"attempt {attempt} exceeded the "
                            f"{self.job_timeout_seconds}s job timeout"
                        ),
                    )
                except BrokenExecutor as broken:
                    # The worker died mid-job (segfault, OOM kill, injected
                    # fault).  Heal the pool, then retry: the crash says
                    # nothing about the job until its budget runs out.
                    self._attempt_seconds.observe(
                        loop.time() - started, outcome="crashed"
                    )
                    await self._heal_executor(executor)
                    await self._retry_or_quarantine(
                        job_id,
                        spec,
                        attempt,
                        WorkerCrashError(
                            f"worker died mid-job ({type(broken).__name__}: {broken})"
                        ),
                    )
                except Exception as error:  # noqa: BLE001 - reported, not dropped
                    self._attempt_seconds.observe(
                        loop.time() - started, outcome="failed"
                    )
                    self._attempts.pop(job_id, None)
                    await self._notify(
                        job_id,
                        "failed",
                        error=f"{type(error).__name__}: {error}",
                        attempts=attempt,
                    )
                else:
                    # Exponential moving average of job seconds -> Retry-After.
                    elapsed = loop.time() - started
                    self._recent_seconds = 0.7 * self._recent_seconds + 0.3 * elapsed
                    self._attempt_seconds.observe(elapsed, outcome="done")
                    self._attempts.pop(job_id, None)
                    await self._notify(job_id, "done", result=result, attempts=attempt)
                finally:
                    self._running.discard(job_id)
            finally:
                self._queue.task_done()
