"""Per-client token-bucket rate limiting for the HTTP server.

Each client (``X-Client-Id`` header, falling back to the peer address) gets
a token bucket refilled at ``rate`` tokens per second up to ``burst``.  A
submission costs one token; when the bucket is empty, :meth:`RateLimiter.check`
returns the seconds until the next token — the HTTP layer forwards it as
``429 + Retry-After`` so well-behaved clients back off instead of hammering.

Buckets live in a bounded LRU so an open server cannot be grown without
limit by spoofed client ids; evicting a bucket merely refunds that client a
full burst, which is the safe direction to err.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Callable

__all__ = ["RateLimiter"]

#: Most client buckets kept before least-recently-used eviction.
MAX_BUCKETS = 1024


class RateLimiter:
    """Token buckets per client key; ``rate=None`` disables limiting."""

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, rate or 0.0)
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self._clock = clock
        #: client -> (tokens, last refill stamp)
        self._buckets: OrderedDict[str, tuple[float, float]] = OrderedDict()
        self.rejections = 0

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def check(self, client: str) -> float:
        """Spend one token for ``client``; 0.0 if allowed, else retry-after seconds."""
        if self.rate is None:
            return 0.0
        now = self._clock()
        tokens, stamp = self._buckets.get(client, (self.burst, now))
        tokens = min(self.burst, tokens + (now - stamp) * self.rate)
        if tokens >= 1.0:
            self._buckets[client] = (tokens - 1.0, now)
            self._buckets.move_to_end(client)
            self._evict()
            return 0.0
        self._buckets[client] = (tokens, now)
        self._buckets.move_to_end(client)
        self._evict()
        self.rejections += 1
        return math.ceil((1.0 - tokens) / self.rate * 1000.0) / 1000.0

    def _evict(self) -> None:
        while len(self._buckets) > MAX_BUCKETS:
            self._buckets.popitem(last=False)
