"""Experiment scale presets.

The paper runs on 600k-row census extracts and averages each data point over
every projection in SAL-d / OCC-d (up to ``C(7,4) = 35`` tables).  That takes
hours in pure Python, so the harness is parameterized by an
:class:`ExperimentConfig` with three presets:

* :meth:`ExperimentConfig.smoke` — seconds; used by the test suite and the
  pytest benchmarks;
* :meth:`ExperimentConfig.default` — minutes on a laptop; the scale used to
  fill in EXPERIMENTS.md;
* :meth:`ExperimentConfig.paper_scale` — the paper's nominal parameters
  (600k rows, full projection families); provided for completeness.

Only the scale changes between presets — the workloads, algorithms and
metrics are identical — so the qualitative shape of every figure is
preserved.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling the scale of the reproduction experiments."""

    #: Cardinality of the synthetic SAL / OCC base tables.
    n: int = 20_000
    #: Seed for the synthetic data generator.
    seed: int = 7
    #: How many of the ``C(7, d)`` projections to average over (None = all).
    max_tables_per_family: int | None = 3
    #: Values of ``l`` swept in Figures 2, 4 and 7.
    l_values: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10)
    #: Values of ``d`` swept in Figures 3, 5 and 8.
    d_values: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7)
    #: Fixed ``l`` for the stars-vs-d and KL-vs-d experiments (Figures 3 and 8).
    l_for_d_sweep: int = 6
    #: Fixed ``l`` for the time-vs-d experiment (Figure 5).
    l_for_time_d_sweep: int = 4
    #: Fixed ``l`` for the time-vs-n experiment (Figure 6).
    l_for_cardinality_sweep: int = 6
    #: Sample cardinalities for Figure 6 (paper: 100k .. 600k).
    sample_sizes: tuple[int, ...] = (4_000, 8_000, 12_000, 16_000, 20_000)
    #: Number of QI attributes of the "-4" workloads (SAL-4 / OCC-4).
    base_dimension: int = 4
    #: Scale factor applied to the QI domain sizes of the synthetic census
    #: data (1.0 = the paper's Table 6 domains).  Smaller tables need smaller
    #: domains to stay in the paper's rows-per-QI-group regime; see
    #: :meth:`repro.dataset.synthetic.CensusConfig.scaled`.
    domain_scale: float = 0.30
    #: Number of processes the harness fans independent (table, l, algorithm)
    #: runs over; 1 = sequential, None = let the cost-based planner size the
    #: pool from calibrated run estimates.  Per-run timings are taken inside
    #: the workers, so recorded seconds stay comparable across settings.
    workers: int | None = None
    #: Extra fields reserved for forward compatibility of saved configs.
    extras: dict = field(default_factory=dict, compare=False)

    # ----------------------------------------------------------------- presets

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny preset for tests and pytest benchmarks (seconds)."""
        return cls(
            n=1_500,
            seed=7,
            max_tables_per_family=1,
            l_values=(2, 4, 6, 10),
            d_values=(1, 2, 3, 4),
            sample_sizes=(500, 1_000, 1_500),
            domain_scale=0.22,
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """Laptop-scale preset used to produce EXPERIMENTS.md."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's nominal scale (600k rows, full projection families)."""
        return cls(
            n=600_000,
            max_tables_per_family=None,
            sample_sizes=(100_000, 200_000, 300_000, 400_000, 500_000, 600_000),
            domain_scale=1.0,
        )

    @classmethod
    def presets(cls) -> dict[str, Callable[[], "ExperimentConfig"]]:
        """Name -> factory for every preset; CLI/scripts derive choices from this."""
        return {
            "smoke": cls.smoke,
            "default": cls.default,
            "paper": cls.paper_scale,
        }
