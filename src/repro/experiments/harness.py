"""Common machinery for running anonymization algorithms over workloads.

Every algorithm of the evaluation is wrapped behind the same interface
(``table, l -> AlgorithmOutput``) so the per-figure drivers can sweep
parameters, time executions and aggregate metrics uniformly.

Independent ``(table, l, algorithm)`` runs can be fanned out across a
process pool with :func:`run_suite`'s ``workers=`` option: each worker times
its own run (so the recorded ``seconds`` stay comparable to sequential
execution) and ships back only the scalar :class:`RunRecord`; tables travel
to workers in their compact columnar form.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro import backend

from repro.baselines import hilbert as hilbert_baseline
from repro.baselines import mondrian as mondrian_baseline
from repro.baselines import tds as tds_baseline
from repro.core import hybrid, three_phase
from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.metrics.kl import kl_divergence

__all__ = [
    "ALGORITHMS",
    "AlgorithmOutput",
    "RunRecord",
    "average_by",
    "format_records",
    "run_algorithm",
    "run_suite",
]


@dataclass(frozen=True)
class AlgorithmOutput:
    """Uniform result of one anonymization run."""

    generalized: GeneralizedTable
    #: Phase in which TP terminated, when applicable.
    phase_reached: int | None = None


@dataclass(frozen=True)
class RunRecord:
    """One (algorithm, table, l) measurement."""

    algorithm: str
    dataset: str
    l: int
    d: int
    n: int
    stars: int
    suppressed_tuples: int
    seconds: float
    groups: int
    phase_reached: int | None = None
    kl: float | None = None


def _run_tp(table: Table, l: int) -> AlgorithmOutput:
    result = three_phase.anonymize(table, l)
    return AlgorithmOutput(result.generalized, phase_reached=result.stats.phase_reached)


def _run_tp_plus(table: Table, l: int) -> AlgorithmOutput:
    result = hybrid.anonymize(table, l)
    return AlgorithmOutput(result.generalized, phase_reached=result.tp_stats.phase_reached)


def _run_hilbert(table: Table, l: int) -> AlgorithmOutput:
    result = hilbert_baseline.anonymize(table, l)
    return AlgorithmOutput(result.generalized)


def _run_tds(table: Table, l: int) -> AlgorithmOutput:
    result = tds_baseline.anonymize(table, l)
    return AlgorithmOutput(result.generalized)


def _run_mondrian(table: Table, l: int) -> AlgorithmOutput:
    result = mondrian_baseline.anonymize(table, l)
    return AlgorithmOutput(result.generalized)


#: The algorithms of the evaluation, keyed by the labels used in the figures.
ALGORITHMS: dict[str, Callable[[Table, int], AlgorithmOutput]] = {
    "TP": _run_tp,
    "TP+": _run_tp_plus,
    "Hilbert": _run_hilbert,
    "TDS": _run_tds,
    "Mondrian": _run_mondrian,
}


def run_algorithm(
    name: str,
    table: Table,
    l: int,
    dataset: str = "",
    with_kl: bool = False,
) -> RunRecord:
    """Run one algorithm on one table and collect the standard metrics."""
    try:
        runner = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    started = time.perf_counter()
    output = runner(table, l)
    elapsed = time.perf_counter() - started
    generalized = output.generalized
    record = RunRecord(
        algorithm=name,
        dataset=dataset,
        l=l,
        d=table.dimension,
        n=len(table),
        stars=generalized.star_count(),
        suppressed_tuples=generalized.suppressed_tuple_count(),
        seconds=elapsed,
        groups=len(generalized.groups()),
        phase_reached=output.phase_reached,
    )
    if with_kl:
        record = replace(record, kl=kl_divergence(table, generalized))
    return record


def _run_job(job: tuple[str, Table, int, str, bool, str]) -> RunRecord:
    """Process-pool entry point: one (algorithm, table, l) measurement."""
    name, table, l, label, with_kl, backend_name = job
    # Workers started via spawn/forkserver re-import repro.backend and would
    # otherwise fall back to the default; mirror the parent's choice.
    backend.set_backend(backend_name)
    return run_algorithm(name, table, l, dataset=label, with_kl=with_kl)


def run_suite(
    tables: Sequence[tuple[str, Table]],
    l: int,
    algorithms: Sequence[str],
    with_kl: bool = False,
    workers: int | None = None,
) -> list[RunRecord]:
    """Run several algorithms over several labelled tables.

    Parameters
    ----------
    workers:
        When greater than 1, the independent runs are distributed over a
        process pool of that many workers.  Records come back in the same
        order as sequential execution (tables outer, algorithms inner);
        timings are taken inside each worker.
    """
    jobs = [
        (name, table, l, label, with_kl, backend.current_backend())
        for label, table in tables
        for name in algorithms
    ]
    if workers is not None and workers > 1 and len(jobs) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            return list(pool.map(_run_job, jobs))
    return [_run_job(job) for job in jobs]


def average_by(
    records: Iterable[RunRecord],
    metric: str,
    key: Callable[[RunRecord], tuple] = lambda record: (record.algorithm,),
) -> dict[tuple, float]:
    """Average a metric of :class:`RunRecord` grouped by an arbitrary key."""
    buckets: dict[tuple, list[float]] = {}
    for record in records:
        value = getattr(record, metric)
        if value is None:
            continue
        buckets.setdefault(key(record), []).append(float(value))
    return {group: statistics.fmean(values) for group, values in buckets.items()}


def format_records(records: Sequence[RunRecord]) -> str:
    """Render run records as a fixed-width text table (for CLI / examples)."""
    headers = ["algorithm", "dataset", "l", "d", "n", "stars", "suppressed", "groups", "seconds", "kl"]
    rows = [
        [
            record.algorithm,
            record.dataset,
            str(record.l),
            str(record.d),
            str(record.n),
            str(record.stars),
            str(record.suppressed_tuples),
            str(record.groups),
            f"{record.seconds:.3f}",
            "" if record.kl is None else f"{record.kl:.4f}",
        ]
        for record in records
    ]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows)) if rows else len(headers[column])
        for column in range(len(headers))
    ]
    lines = ["  ".join(header.ljust(width) for header, width in zip(headers, widths))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
