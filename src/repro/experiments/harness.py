"""Common machinery for running anonymization algorithms over workloads.

Algorithms are resolved through the engine's
:data:`~repro.engine.registry.algorithm_registry` — :data:`ALGORITHMS` is a
live view over it, not a copy, so anything registered there is immediately
runnable here and the CLI's choices can never drift from the harness.

Independent ``(table, l, algorithm)`` runs can be fanned out across a
process pool with :func:`run_suite`'s ``workers=`` option: each worker times
its own run (so the recorded ``seconds`` stay comparable to sequential
execution) and ships back only the scalar :class:`RunRecord`; tables travel
to workers in their compact columnar form.  ``workers=None`` (the default)
asks the cost-based :class:`~repro.service.planner.ExecutionPlanner` to
size the pool from the calibrated run estimates — smoke-scale suites stay
sequential, heavy sweeps fan out to the machine's cores.

Runs are memoized in the engine's result cache (keyed by table fingerprint,
algorithm, ``l``, shard count, data-plane backend and seed), so sweeps that
revisit a combination — e.g. the stars-vs-l and time-vs-l figures, which
share every run — replay the stored output and its original timing instead
of recomputing.  When the cache is backed by a persistent
:class:`~repro.service.store.RunStore`, the replay works across processes;
:func:`cache_summary` renders the per-tier hit statistics for report
footers.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro import backend
from repro.dataset.table import Table
from repro.engine.cache import CachedRun, ResultCache, default_cache
from repro.engine.core import RunReport
from repro.engine.registry import AlgorithmOutput, algorithm_registry
from repro.metrics.kl import kl_divergence
from repro.text import format_fixed_width

__all__ = [
    "ALGORITHMS",
    "AlgorithmOutput",
    "RunRecord",
    "average_by",
    "cache_summary",
    "format_records",
    "record_from_report",
    "run_algorithm",
    "run_suite",
]


#: Live ``name -> runner`` view over the engine's algorithm registry (the
#: registrations themselves live in :mod:`repro.engine.algorithms`).
ALGORITHMS = algorithm_registry.runners()


@dataclass(frozen=True)
class RunRecord:
    """One (algorithm, table, l) measurement.

    ``seconds`` is the anonymization stage only (what the figures plot and
    what ``BENCH_fig6.json`` baselines); loading and metric evaluation are
    attributed separately so a regression in the BENCH JSON points at the
    stage that caused it.
    """

    algorithm: str
    dataset: str
    l: int
    d: int
    n: int
    stars: int
    suppressed_tuples: int
    #: Anonymization wall-clock seconds (excludes loading and metrics).
    seconds: float
    groups: int
    phase_reached: int | None = None
    kl: float | None = None
    #: Wall-clock seconds spent loading/building the table, when the caller
    #: routed the load through the engine (0.0 for pre-built tables).
    load_seconds: float = 0.0
    #: Wall-clock seconds spent computing the record's metrics.
    metrics_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end seconds across the load/anonymize/metrics stages."""
        return self.load_seconds + self.seconds + self.metrics_seconds


def _measure(
    name: str,
    table: Table,
    l: int,
    dataset: str,
    with_kl: bool,
    output: AlgorithmOutput,
    anonymize_seconds: float,
    load_seconds: float = 0.0,
) -> RunRecord:
    """Assemble a :class:`RunRecord` from a finished run, timing the metrics."""
    started = time.perf_counter()
    generalized = output.generalized
    record = RunRecord(
        algorithm=name,
        dataset=dataset,
        l=l,
        d=table.dimension,
        n=len(table),
        stars=generalized.star_count(),
        suppressed_tuples=generalized.suppressed_tuple_count(),
        seconds=anonymize_seconds,
        groups=len(generalized.groups()),
        phase_reached=output.phase_reached,
        load_seconds=load_seconds,
    )
    kl = kl_divergence(table, generalized) if with_kl else None
    metrics_seconds = time.perf_counter() - started
    return replace(record, kl=kl, metrics_seconds=metrics_seconds)


def run_algorithm(
    name: str,
    table: Table,
    l: int,
    dataset: str = "",
    with_kl: bool = False,
    cache: ResultCache | None = None,
) -> RunRecord:
    """Run one algorithm on one table and collect the standard metrics.

    ``cache`` defaults to the engine's process-global result cache; pass an
    isolated :class:`~repro.engine.cache.ResultCache` to control reuse, or
    consult :func:`repro.engine.cache.default_cache` for hit statistics.
    """
    info = algorithm_registry.get(name)
    cache = cache if cache is not None else default_cache()
    key = None
    if info.deterministic:
        key = ResultCache.key(table.fingerprint(), name, l)
        cached = cache.get(key, table)
        if cached is not None:
            return _measure(
                name, table, l, dataset, with_kl, cached.output, cached.anonymize_seconds
            )
    started = time.perf_counter()
    output = info.runner(table, l)
    elapsed = time.perf_counter() - started
    if key is not None:
        cache.put(key, CachedRun(output=output, anonymize_seconds=elapsed))
    return _measure(name, table, l, dataset, with_kl, output, elapsed)


def record_from_report(report: RunReport, dataset: str | None = None) -> RunRecord:
    """Project an engine :class:`~repro.engine.core.RunReport` onto a record."""
    generalized = report.generalized
    return RunRecord(
        algorithm=report.plan.algorithm,
        dataset=dataset if dataset is not None else report.label,
        l=report.plan.l,
        d=report.d,
        n=report.n,
        stars=generalized.star_count(),
        suppressed_tuples=generalized.suppressed_tuple_count(),
        seconds=report.timings.anonymize_seconds,
        groups=len(generalized.groups()),
        phase_reached=report.phase_reached,
        kl=report.metric_values.get("kl"),
        load_seconds=report.timings.load_seconds,
        metrics_seconds=report.timings.metrics_seconds,
    )


def _run_job(
    job: tuple[str, Table, int, str, bool, str],
) -> tuple[RunRecord, CachedRun | None]:
    """Process-pool entry point: one (algorithm, table, l) measurement.

    Besides the scalar record, the run's output travels back so the parent
    can memoize it; ``None`` when the algorithm is not deterministic.
    """
    name, table, l, label, with_kl, backend_name = job
    # Workers started via spawn/forkserver re-import repro.backend and would
    # otherwise fall back to the default; mirror the parent's choice.
    backend.set_backend(backend_name)
    info = algorithm_registry.get(name)
    started = time.perf_counter()
    output = info.runner(table, l)
    elapsed = time.perf_counter() - started
    record = _measure(name, table, l, label, with_kl, output, elapsed)
    cached = CachedRun(output=output, anonymize_seconds=elapsed) if info.deterministic else None
    return record, cached


def run_suite(
    tables: Sequence[tuple[str, Table]],
    l: int,
    algorithms: Sequence[str],
    with_kl: bool = False,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> list[RunRecord]:
    """Run several algorithms over several labelled tables.

    Parameters
    ----------
    workers:
        When greater than 1, the independent runs are distributed over a
        process pool of that many workers.  Records come back in the same
        order as sequential execution (tables outer, algorithms inner);
        timings are taken inside each worker.  ``None`` (the default) lets
        the cost-based planner size the pool: sequential when the calibrated
        estimate says pool startup would dominate, full fan-out otherwise.
    cache:
        Result cache consulted before running (defaults to the engine's
        process-global cache).  On the parallel path the cache lives in the
        parent: hits are answered locally, only misses are dispatched to the
        pool, and their outputs are stored when the workers return.
    """
    cache = cache if cache is not None else default_cache()
    jobs = [
        (name, table, l, label, with_kl, backend.current_backend())
        for label, table in tables
        for name in algorithms
    ]
    if workers is None:
        workers = _auto_workers(jobs)
    if workers > 1 and len(jobs) > 1:
        return _run_jobs_parallel(jobs, workers, cache)
    return [
        run_algorithm(name, table, l, dataset=label, with_kl=with_kl, cache=cache)
        for name, table, l, label, with_kl, _backend_name in jobs
    ]


def _auto_workers(jobs: list[tuple[str, Table, int, str, bool, str]]) -> int:
    """Planner-chosen pool width for a batch of independent runs."""
    from repro.service.planner import default_planner

    planner = default_planner()
    estimated = sum(
        planner.estimate_run_seconds(name, len(table), backend_name)
        for name, table, _l, _label, _kl, backend_name in jobs
    )
    return planner.suite_workers(len(jobs), estimated)


def _run_jobs_parallel(
    jobs: list[tuple[str, Table, int, str, bool, str]],
    workers: int,
    cache: ResultCache,
) -> list[RunRecord]:
    """Answer cache hits in the parent, dispatch only the misses to the pool.

    Workers ship their outputs back alongside the scalar records, and the
    parent stores them, so a later sweep over the same combinations (or a
    duplicate job inside this one) hits the cache even though the runs
    happened in other processes.
    """
    records: list[RunRecord | None] = [None] * len(jobs)
    keys: dict[int, tuple] = {}
    misses: list[int] = []
    for position, (name, table, l, label, with_kl, backend_name) in enumerate(jobs):
        info = algorithm_registry.get(name)
        if not info.deterministic:
            misses.append(position)
            continue
        key = ResultCache.key(table.fingerprint(), name, l, backend=backend_name)
        keys[position] = key
        cached = cache.get(key, table)
        if cached is None:
            misses.append(position)
        else:
            records[position] = _measure(
                name, table, l, label, with_kl, cached.output, cached.anonymize_seconds
            )
    if misses:
        with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
            for position, (record, cached) in zip(
                misses, pool.map(_run_job, [jobs[i] for i in misses])
            ):
                records[position] = record
                if cached is not None and position in keys:
                    cache.put(keys[position], cached)
    return [record for record in records if record is not None]


def average_by(
    records: Iterable[RunRecord],
    metric: str,
    key: Callable[[RunRecord], tuple] = lambda record: (record.algorithm,),
) -> dict[tuple, float]:
    """Average a metric of :class:`RunRecord` grouped by an arbitrary key."""
    buckets: dict[tuple, list[float]] = {}
    for record in records:
        value = getattr(record, metric)
        if value is None:
            continue
        buckets.setdefault(key(record), []).append(float(value))
    return {group: statistics.fmean(values) for group, values in buckets.items()}


def cache_summary(cache: ResultCache | None = None) -> str:
    """One-line per-tier hit summary for harness reports and CLI footers."""
    cache = cache if cache is not None else default_cache()
    stats = cache.stats()
    line = (
        f"run cache: {stats['memory_hits']} memory hits, "
        f"{stats['store_hits']} store hits, {stats['misses']} misses "
        f"({stats['entries']} entries retained"
    )
    if "store_entries" in stats:
        line += f", {stats['store_entries']} persisted"
    return line + ")"


def format_records(records: Sequence[RunRecord]) -> str:
    """Render run records as a fixed-width text table (for CLI / examples)."""
    headers = ["algorithm", "dataset", "l", "d", "n", "stars", "suppressed", "groups", "seconds", "kl"]
    rows = [
        [
            record.algorithm,
            record.dataset,
            str(record.l),
            str(record.d),
            str(record.n),
            str(record.stars),
            str(record.suppressed_tuples),
            str(record.groups),
            f"{record.seconds:.3f}",
            "" if record.kl is None else f"{record.kl:.4f}",
        ]
        for record in records
    ]
    return format_fixed_width(headers, rows)
