"""Experiment harness reproducing the paper's evaluation (Section 6)."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    ALGORITHMS,
    AlgorithmOutput,
    RunRecord,
    average_by,
    run_algorithm,
    run_suite,
)
from repro.experiments.figures import (
    FigureResult,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    phase3_frequency,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmOutput",
    "ExperimentConfig",
    "FigureResult",
    "RunRecord",
    "average_by",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "phase3_frequency",
    "run_algorithm",
    "run_suite",
]
