"""Drivers that regenerate every figure of the paper's evaluation.

Each ``figureN`` function reproduces one figure of Section 6 and returns a
:class:`FigureResult` holding one series per algorithm, in the same units the
paper plots (average number of stars, seconds, KL-divergence).  The phase-3
frequency experiment described in the Section 6.1 text has its own driver.

All drivers take an :class:`~repro.experiments.config.ExperimentConfig` so the
same code runs at smoke-test, laptop and paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.projections import cardinality_samples, projection_family
from repro.dataset.synthetic import CensusConfig, make_occ, make_sal
from repro.dataset.table import Table
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RunRecord, run_suite
from repro.text import format_fixed_width

__all__ = [
    "FIGURES",
    "FigureResult",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "phase3_frequency",
    "Phase3FrequencyResult",
]

#: Figure name -> driver; the single source of truth the CLI and
#: ``scripts/run_experiments.py`` derive their choices from.  Populated by
#: the :func:`_figure` decorator below, so a new driver is registered by
#: definition and help text can never drift from what is implemented.
FIGURES: dict = {}


def _figure(driver):
    """Register a ``figureN`` driver in :data:`FIGURES` under its own name."""
    FIGURES[driver.__name__] = driver
    return driver


@dataclass
class FigureResult:
    """Series data for one panel of one figure."""

    name: str
    dataset: str
    x_label: str
    y_label: str
    #: algorithm -> list of (x, y) points.
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    #: All raw measurements backing the series.
    records: list[RunRecord] = field(default_factory=list)

    def add_point(self, algorithm: str, x: float, y: float) -> None:
        self.series.setdefault(algorithm, []).append((x, y))

    def to_csv(self, path: str) -> None:
        """Write the series to a CSV file (one row per x value, one column per algorithm)."""
        import csv

        algorithms = sorted(self.series)
        xs = sorted({x for points in self.series.values() for x, _y in points})
        lookup = {
            (algorithm, x): y
            for algorithm, points in self.series.items()
            for x, y in points
        }
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([self.x_label] + algorithms)
            for x in xs:
                writer.writerow(
                    [x] + [lookup.get((algorithm, x), "") for algorithm in algorithms]
                )

    def format(self) -> str:
        """Render the series as an aligned text table (one row per x value)."""
        algorithms = sorted(self.series)
        xs = sorted({x for points in self.series.values() for x, _y in points})
        lookup = {
            (algorithm, x): y
            for algorithm, points in self.series.items()
            for x, y in points
        }
        header = [self.x_label] + algorithms
        rows = []
        for x in xs:
            row = [f"{x:g}"]
            for algorithm in algorithms:
                value = lookup.get((algorithm, x))
                row.append("-" if value is None else f"{value:.4g}")
            rows.append(row)
        title = f"{self.name} [{self.dataset}] — {self.y_label}"
        return title + "\n" + format_fixed_width(header, rows)


def _base_table(dataset: str, config: ExperimentConfig, n: int | None = None) -> Table:
    maker = make_sal if dataset.upper() == "SAL" else make_occ
    census_config = (
        CensusConfig.scaled(config.domain_scale) if config.domain_scale < 1.0 else CensusConfig()
    )
    return maker(n or config.n, seed=config.seed, config=census_config)


def _family(dataset: str, d: int, config: ExperimentConfig) -> list[tuple[str, Table]]:
    base = _base_table(dataset, config)
    family = projection_family(base, d, max_tables=config.max_tables_per_family)
    return [(projected.label, projected.table) for projected in family]


def _sweep(
    result: FigureResult,
    tables: list[tuple[str, Table]],
    l: int,
    x: float,
    algorithms: tuple[str, ...],
    metric: str,
    with_kl: bool = False,
    workers: int | None = None,
) -> None:
    records = run_suite(tables, l, algorithms, with_kl=with_kl, workers=workers)
    result.records.extend(records)
    for algorithm in algorithms:
        values = [getattr(record, metric) for record in records if record.algorithm == algorithm]
        values = [value for value in values if value is not None]
        if values:
            result.add_point(algorithm, x, sum(values) / len(values))


# --------------------------------------------------------------------- figures

_SUPPRESSION_ALGORITHMS = ("Hilbert", "TP", "TP+")
_KL_ALGORITHMS = ("TDS", "TP+")


@_figure
def figure2(dataset: str = "SAL", config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 2: average number of stars vs ``l`` on the 4-QI projections."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        name="Figure 2: stars vs l",
        dataset=f"{dataset}-{config.base_dimension}",
        x_label="l",
        y_label="average number of stars",
    )
    tables = _family(dataset, config.base_dimension, config)
    for l in config.l_values:
        _sweep(result, tables, l, float(l), _SUPPRESSION_ALGORITHMS, "stars", workers=config.workers)
    return result


@_figure
def figure3(dataset: str = "SAL", config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 3: average number of stars vs ``d`` at ``l = 6``."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        name=f"Figure 3: stars vs d (l={config.l_for_d_sweep})",
        dataset=f"{dataset}-d",
        x_label="d",
        y_label="average number of stars",
    )
    for d in config.d_values:
        tables = _family(dataset, d, config)
        _sweep(result, tables, config.l_for_d_sweep, float(d), _SUPPRESSION_ALGORITHMS, "stars", workers=config.workers)
    return result


@_figure
def figure4(dataset: str = "SAL", config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 4: computation time vs ``l`` on the 4-QI projections."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        name="Figure 4: time vs l",
        dataset=f"{dataset}-{config.base_dimension}",
        x_label="l",
        y_label="computation time (seconds)",
    )
    tables = _family(dataset, config.base_dimension, config)
    for l in config.l_values:
        _sweep(result, tables, l, float(l), _SUPPRESSION_ALGORITHMS, "seconds", workers=config.workers)
    return result


@_figure
def figure5(dataset: str = "SAL", config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 5: computation time vs ``d`` at ``l = 4``."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        name=f"Figure 5: time vs d (l={config.l_for_time_d_sweep})",
        dataset=f"{dataset}-d",
        x_label="d",
        y_label="computation time (seconds)",
    )
    for d in config.d_values:
        tables = _family(dataset, d, config)
        _sweep(result, tables, config.l_for_time_d_sweep, float(d), _SUPPRESSION_ALGORITHMS, "seconds", workers=config.workers)
    return result


@_figure
def figure6(dataset: str = "SAL", config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 6: computation time vs cardinality ``n`` at ``l = 6``."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        name=f"Figure 6: time vs n (l={config.l_for_cardinality_sweep})",
        dataset=f"{dataset}-{config.base_dimension}",
        x_label="n",
        y_label="computation time (seconds)",
    )
    base = _base_table(dataset, config, n=max(config.sample_sizes))
    qi_names = base.schema.qi_names[: config.base_dimension]
    projected = base.project(qi_names)
    for size, sample in zip(
        config.sample_sizes, cardinality_samples(projected, config.sample_sizes, seed=config.seed)
    ):
        tables = [(f"{dataset}-{config.base_dimension}@{size}", sample)]
        _sweep(
            result,
            tables,
            config.l_for_cardinality_sweep,
            float(size),
            _SUPPRESSION_ALGORITHMS,
            "seconds",
            workers=config.workers,
        )
    return result


@_figure
def figure7(dataset: str = "SAL", config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 7: KL-divergence vs ``l`` — TP+ against the TDS baseline."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        name="Figure 7: KL-divergence vs l",
        dataset=f"{dataset}-{config.base_dimension}",
        x_label="l",
        y_label="KL-divergence",
    )
    tables = _family(dataset, config.base_dimension, config)
    for l in config.l_values:
        _sweep(result, tables, l, float(l), _KL_ALGORITHMS, "kl", with_kl=True, workers=config.workers)
    return result


@_figure
def figure8(dataset: str = "SAL", config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 8: KL-divergence vs ``d`` at ``l = 6`` — TP+ against TDS."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        name=f"Figure 8: KL-divergence vs d (l={config.l_for_d_sweep})",
        dataset=f"{dataset}-d",
        x_label="d",
        y_label="KL-divergence",
    )
    for d in config.d_values:
        tables = _family(dataset, d, config)
        _sweep(result, tables, config.l_for_d_sweep, float(d), _KL_ALGORITHMS, "kl", with_kl=True, workers=config.workers)
    return result


# ------------------------------------------------------- phase-three frequency


@dataclass(frozen=True)
class Phase3FrequencyResult:
    """Outcome of the Section 6.1 phase-three frequency experiment."""

    runs: int
    phase1_terminations: int
    phase2_terminations: int
    phase3_terminations: int

    @property
    def phase3_fraction(self) -> float:
        return self.phase3_terminations / self.runs if self.runs else 0.0

    def format(self) -> str:
        return (
            f"TP terminations over {self.runs} (table, l) runs: "
            f"phase 1: {self.phase1_terminations}, phase 2: {self.phase2_terminations}, "
            f"phase 3: {self.phase3_terminations} "
            f"({self.phase3_fraction:.1%} reached phase three)"
        )


def phase3_frequency(
    dataset: str = "SAL",
    config: ExperimentConfig | None = None,
) -> Phase3FrequencyResult:
    """How often TP needs its third phase across the SAL-d / OCC-d workloads.

    The paper reports that on all 128 census tables and all ``l`` in 2..10,
    TP terminates before phase three; this driver re-runs that census on the
    synthetic workloads.
    """
    from repro.core import three_phase

    config = config or ExperimentConfig.default()
    counters = {1: 0, 2: 0, 3: 0}
    runs = 0
    for d in config.d_values:
        for label, table in _family(dataset, d, config):
            del label
            for l in config.l_values:
                stats = three_phase.anonymize(table, l).stats
                counters[stats.phase_reached] += 1
                runs += 1
    return Phase3FrequencyResult(
        runs=runs,
        phase1_terminations=counters[1],
        phase2_terminations=counters[2],
        phase3_terminations=counters[3],
    )
