"""The hybrid algorithm TP+ (Sections 5.6 and 6.1).

TP+ first runs the three-phase algorithm TP, then applies a heuristic
partitioning algorithm to the residue set ``R`` instead of publishing it as a
single fully-suppressed QI-group.  Because every refined group is l-eligible,
the result is still l-diverse, and because refinement can only remove stars
relative to plain TP, TP+ inherits the ``O(l * d)`` approximation guarantee
(Section 5.6).  In the paper's experiments TP+ dominates both TP and the
Hilbert baseline in star count.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro import profiling
from repro.core.eligibility import is_l_eligible
from repro.core.groups import GroupState
from repro.core.refiners import Refiner
from repro.core.state import StateFactory
from repro.core.three_phase import ThreePhaseStats, run_state
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Table
from repro.errors import AlgorithmInvariantError

__all__ = ["HybridResult", "anonymize"]


@dataclass(frozen=True)
class HybridResult:
    """Outcome of the TP+ hybrid."""

    table: Table
    l: int
    partition: Partition
    generalized: GeneralizedTable
    #: Row indices of the TP residue set that was handed to the refiner.
    residue_rows: list[int]
    #: Number of QI-groups the refiner split the residue into.
    refined_group_count: int
    #: Statistics of the underlying TP run.
    tp_stats: ThreePhaseStats

    @property
    def star_count(self) -> int:
        return self.generalized.star_count()

    @property
    def suppressed_tuple_count(self) -> int:
        return self.generalized.suppressed_tuple_count()


def anonymize(
    table: Table,
    l: int,
    refiner: Refiner | None = None,
    state_factory: StateFactory = GroupState,
) -> HybridResult:
    """Compute an l-diverse suppression of ``table`` with TP+.

    Parameters
    ----------
    table:
        The microdata (must be l-eligible).
    l:
        The diversity parameter (``l >= 2``).
    refiner:
        Strategy used to split the TP residue into QI-groups.  Defaults to
        the Hilbert-curve refiner, matching the paper's TP+ (TP combined with
        the Hilbert heuristic of Ghinita et al.).
    state_factory:
        Group-state implementation forwarded to TP.
    """
    if refiner is None:
        from repro.baselines.hilbert import hilbert_refiner

        refiner = hilbert_refiner

    state, stats = run_state(table, l, state_factory=state_factory)
    retained = state.retained_group_arrays()
    residue = sorted(state.residue_rows())

    refined: list[list[int]] = []
    if residue:
        # Custom refiners may emit empty groups; drop them before the trusted
        # partition (which, unlike Partition(), adopts groups unfiltered).
        refined = [list(group) for group in refiner(table, residue, l) if len(group) > 0]
        _validate_refinement(table, residue, refined, l)

    with profiling.profile_stage("publish"):
        # Valid by construction (retained groups + refined residue cover all
        # rows); retained groups are zero-copy spans of the state's order.
        partition = Partition.trusted(retained + refined, len(table))
        generalized = GeneralizedTable.from_partition(table, partition)
    return HybridResult(
        table=table,
        l=l,
        partition=partition,
        generalized=generalized,
        residue_rows=residue,
        refined_group_count=len(refined),
        tp_stats=stats,
    )


def _validate_refinement(
    table: Table,
    residue: list[int],
    refined: list[list[int]],
    l: int,
) -> None:
    """Ensure the refiner returned an l-eligible partition of the residue."""
    covered = sorted(row for group in refined for row in group)
    if covered != sorted(residue):
        raise AlgorithmInvariantError(
            "refiner did not return a partition of the residue rows"
        )
    for group in refined:
        counts = Counter(table.sa_value(row) for row in group)
        if not is_l_eligible(counts, l):
            raise AlgorithmInvariantError(
                "refiner produced a QI-group that is not l-eligible"
            )
