"""Fused, vectorized group-metric kernels for the three-phase algorithm.

The run encoding produced by :meth:`Table.qi_sa_runs_arrays` lays every
QI-group out as a contiguous span of ``(sensitive value, count)`` runs.  The
kernels here answer whole-state questions — per-group sizes and pillar
heights, phase-one stopping heights, greedy-cover overlap counts — with a
single :func:`np.add.reduceat` / :func:`np.bincount` pass over those arrays
instead of one Python loop iteration per group, and chunk the largest pass
(the phase-three assignment sweep) across a shared thread pool.  NumPy
releases the GIL inside these ops, so threads give real parallelism without
the pickling cost of processes, and integer addition is associative, so the
chunked results are bit-identical to the single-pass ones.

Every kernel has a pure-Python oracle next to it (``*_reference``) used by
the property tests; the algorithm-level oracle remains the reference backend
plus the pinned digests of ``scripts/privacy_smoke.py``.
"""

from __future__ import annotations

import os
from collections import Counter
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

__all__ = [
    "composite_codes",
    "group_sizes_heights",
    "grouped_min_max",
    "grouped_min_max_reference",
    "parallel_chunk_count",
    "phase_one_stop_height",
    "phase_one_stop_height_reference",
    "pillar_overlap_counts",
    "pillar_overlap_counts_reference",
    "row_chunked",
    "stable_argsort",
    "stable_argsort_reference",
    "stable_sort_pairs",
    "take",
    "take_reference",
]

#: Runs below this length are processed on the calling thread; the pool's
#: per-task overhead only pays off on large shards.
PARALLEL_THRESHOLD = 1 << 18

#: Upper bound on kernel worker threads (the planner's process workers
#: multiply with these, so keep the pool modest).
MAX_KERNEL_THREADS = 8

#: Floor on the chunk count of the chunked sort / row-apply paths.  The
#: default of 1 means a single-worker pool never splits (splitting without
#: parallel hardware only adds merge/concat overhead); tests and tuning runs
#: raise it to force the chunked code path on any machine.
MIN_SORT_CHUNKS = 1

_POOL: ThreadPoolExecutor | None = None


def _pool() -> ThreadPoolExecutor:
    global _POOL
    if _POOL is None:
        workers = max(1, min(MAX_KERNEL_THREADS, (os.cpu_count() or 1)))
        _POOL = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-kernel"
        )
    return _POOL


def group_sizes_heights(
    run_lengths: np.ndarray, group_run_bounds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group tuple counts and pillar heights, one reduceat pass each.

    ``run_lengths`` holds the length of every ``(QI, SA)`` run and
    ``group_run_bounds`` the ``s + 1`` boundaries delimiting each group's
    runs; the result arrays are ``(s,)`` ``int64``.
    """
    starts = group_run_bounds[:-1]
    if starts.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    lengths = run_lengths.astype(np.int64, copy=False)
    sizes = np.add.reduceat(lengths, starts)
    heights = np.maximum.reduceat(lengths, starts)
    return sizes, heights


def phase_one_stop_height(
    counts: Sequence[int], size: int, height: int, l: int
) -> tuple[int, int]:
    """Closed form of a full phase-one shave of one ineligible group.

    Phase one removes one tuple from a (minimum) pillar until the group is
    l-eligible.  Within one height level eligibility only gets harder (the
    size shrinks while the height stands still), so the loop can only stop
    right after the height drops — and when the height first reaches ``h``
    the histogram is exactly ``min(c_v, h)`` with ``r(h) = sum(max(c_v - h,
    0))`` tuples removed.  The stopping height is therefore the largest ``h``
    with ``h * l <= size - r(h)``, found here by walking ``h`` downwards with
    the counts-of-counts recurrence ``r(h - 1) = r(h) + #{c_v >= h}``.

    Returns ``(stop_height, removed)``.  The caller guarantees the group is
    ineligible (``height * l > size``); ``h = 0`` always terminates the walk
    because ``r(0) = size``.
    """
    frequency = Counter(counts)
    removed = 0
    at_or_above = 0
    h = height
    while h > 0:
        at_or_above += frequency.get(h, 0)
        removed += at_or_above
        h -= 1
        if h * l <= size - removed:
            return h, removed
    return 0, size


def phase_one_stop_height_reference(
    counts: Sequence[int], l: int
) -> tuple[int, int]:
    """Oracle: simulate the one-removal-at-a-time shave on a histogram."""
    histogram = Counter()
    for index, count in enumerate(counts):
        histogram[index] = count
    size = sum(histogram.values())
    removed = 0
    while histogram:
        height = max(histogram.values())
        if height * l <= size:
            return height, removed
        pillar = min(v for v, c in histogram.items() if c == height)
        histogram[pillar] -= 1
        if histogram[pillar] == 0:
            del histogram[pillar]
        size -= 1
        removed += 1
    return 0, removed


def pillar_overlap_counts(
    pillar_run_group_ids: np.ndarray,
    pillar_run_values: np.ndarray,
    pending_values: Sequence[int],
    group_count: int,
) -> np.ndarray:
    """``|pillars(Q) ∩ pending|`` per group, for the greedy SET-COVER step.

    Operates on the *pillar runs only* (runs whose length equals their
    group's height), so one ``isin`` + ``bincount`` pass replaces the
    per-group ``pillars_view() & pending`` loop.  Chunked across the kernel
    thread pool above :data:`PARALLEL_THRESHOLD`; the per-chunk bincounts
    are summed, which is exact for integers regardless of the split.
    """
    total_runs = pillar_run_values.shape[0]
    pending = np.asarray(sorted(pending_values), dtype=pillar_run_values.dtype)
    if total_runs == 0 or pending.size == 0:
        return np.zeros(group_count, dtype=np.int64)
    if total_runs < PARALLEL_THRESHOLD:
        return _overlap_chunk(
            pillar_run_group_ids, pillar_run_values, pending, group_count
        )
    pool = _pool()
    workers = pool._max_workers
    bounds = np.linspace(0, total_runs, workers + 1, dtype=np.int64)
    futures = [
        pool.submit(
            _overlap_chunk,
            pillar_run_group_ids[start:stop],
            pillar_run_values[start:stop],
            pending,
            group_count,
        )
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    counts = np.zeros(group_count, dtype=np.int64)
    for future in futures:
        counts += future.result()
    return counts


def _overlap_chunk(
    group_ids: np.ndarray,
    values: np.ndarray,
    pending_sorted: np.ndarray,
    group_count: int,
) -> np.ndarray:
    # searchsorted membership against the (tiny, sorted) pending set beats
    # np.isin's generic path for l - 1 or fewer candidates.
    positions = np.searchsorted(pending_sorted, values)
    positions[positions == pending_sorted.size] = 0
    hits = pending_sorted[positions] == values
    return np.bincount(group_ids[hits], minlength=group_count).astype(np.int64)


def pillar_overlap_counts_reference(
    pillar_run_group_ids: np.ndarray,
    pillar_run_values: np.ndarray,
    pending_values: Sequence[int],
    group_count: int,
) -> np.ndarray:
    """Oracle for :func:`pillar_overlap_counts` (plain Python loop)."""
    pending = set(int(value) for value in pending_values)
    counts = np.zeros(group_count, dtype=np.int64)
    for group_id, value in zip(
        pillar_run_group_ids.tolist(), pillar_run_values.tolist()
    ):
        if value in pending:
            counts[group_id] += 1
    return counts


# -------------------------------------------------------------- sorting


def composite_codes(
    columns: np.ndarray,
    sa: np.ndarray,
    qi_sizes: Sequence[int],
    sa_size: int,
    chunks: int | None = None,
) -> np.ndarray | None:
    """Pack every row's ``(QI vector, SA code)`` into one mixed-radix int64.

    The key orders rows exactly like the lexicographic ``(QI..., SA)``
    comparison, so one radix-friendly :func:`np.argsort` over the keys
    replaces a ``d + 1``-key :func:`np.lexsort` — the dominant cost of the
    run encoding at 10^6 rows.  Returns ``None`` when the product of the
    domain sizes does not fit 62 bits (the caller falls back to lexsort);
    the paper's Table 6 domains need ~20 bits, so the fallback is
    essentially unreachable in practice.

    The packing is elementwise along rows, so above
    :data:`PARALLEL_THRESHOLD` it is chunked across the kernel pool
    (NumPy's integer arithmetic releases the GIL) — bit-identical to the
    single pass by construction.
    """
    radix = 1
    for size in (*qi_sizes, sa_size):
        radix *= int(size)
        if radix > 1 << 62:
            return None
    n = int(columns.shape[0])
    if chunks is None:
        chunks = parallel_chunk_count(n)
    chunks = max(1, min(int(chunks), n)) if n else 1
    if chunks <= 1:
        return _composite_block(columns, sa, qi_sizes, sa_size)
    pool = _pool()
    bounds = np.linspace(0, n, chunks + 1, dtype=np.int64)
    futures = [
        pool.submit(
            _composite_block,
            columns[int(start) : int(stop)],
            sa[int(start) : int(stop)],
            qi_sizes,
            sa_size,
        )
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    return np.concatenate([future.result() for future in futures])


def _composite_block(
    columns: np.ndarray, sa: np.ndarray, qi_sizes: Sequence[int], sa_size: int
) -> np.ndarray:
    keys = np.zeros(columns.shape[0], dtype=np.int64)
    for position, size in enumerate(qi_sizes):
        keys *= int(size)
        keys += columns[:, position]
    keys *= int(sa_size)
    keys += sa
    return keys


def parallel_chunk_count(n: int) -> int:
    """How many chunks the pooled sort/apply paths should split ``n`` into.

    1 (no split) below :data:`PARALLEL_THRESHOLD` or on a single-worker
    pool — splitting without parallel hardware only adds merge overhead.
    :data:`MIN_SORT_CHUNKS` forces a floor for tests and tuning runs.
    """
    if n < PARALLEL_THRESHOLD:
        return 1
    return max(_pool()._max_workers, MIN_SORT_CHUNKS)


def stable_argsort(keys: np.ndarray, chunks: int | None = None) -> np.ndarray:
    """Stable argsort of an int key array, chunked across the kernel pool.

    Bit-identical to ``np.argsort(keys, kind="stable")`` by construction:
    each contiguous chunk is stably argsorted on its own pool worker, then
    sorted runs are merged pairwise with ``searchsorted(..., side="right")``
    — equal keys keep earlier-chunk (hence smaller) row indices first, which
    is exactly the stable tie-break.  ``chunks=None`` asks
    :func:`parallel_chunk_count`; the single-chunk case degenerates to the
    plain argsort with no pool round-trip.
    """
    n = int(keys.shape[0])
    if chunks is None:
        chunks = parallel_chunk_count(n)
    chunks = max(1, min(int(chunks), n)) if n else 1
    if chunks <= 1:
        return np.argsort(keys, kind="stable")
    pool = _pool()
    bounds = np.linspace(0, n, chunks + 1, dtype=np.int64)
    futures = [
        pool.submit(_chunk_stable_argsort, keys, int(start), int(stop))
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    runs = [future.result() for future in futures]
    while len(runs) > 1:
        merges = [
            pool.submit(_merge_sorted_runs, keys, runs[index], runs[index + 1])
            for index in range(0, len(runs) - 1, 2)
        ]
        tail = [runs[-1]] if len(runs) % 2 else []
        runs = [future.result() for future in merges] + tail
    return runs[0]


def _chunk_stable_argsort(keys: np.ndarray, start: int, stop: int) -> np.ndarray:
    return start + np.argsort(keys[start:stop], kind="stable")


def _merge_sorted_runs(keys: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two key-sorted index runs; every index of ``a`` precedes ``b``'s.

    ``side="right"`` places each element of ``b`` after every equal-keyed
    element of ``a`` — ``a`` holds the earlier chunk, i.e. the smaller
    original row indices, so ties come out in ascending row order (stable).
    """
    positions = np.searchsorted(keys[a], keys[b], side="right")
    out = np.empty(a.size + b.size, dtype=a.dtype)
    b_slots = positions + np.arange(b.size, dtype=positions.dtype)
    a_mask = np.ones(out.size, dtype=bool)
    a_mask[b_slots] = False
    out[b_slots] = b
    out[a_mask] = a
    return out


def stable_argsort_reference(keys: np.ndarray) -> np.ndarray:
    """Oracle for :func:`stable_argsort`: Python's (stable) Timsort."""
    values = keys.tolist()
    return np.asarray(
        sorted(range(len(values)), key=values.__getitem__), dtype=np.intp
    )


#: Bit budget for the packed ``key << index_bits | row`` sort words: int64
#: minus the sign bit and one guard bit.
PACKED_SORT_BITS = 62


def stable_sort_pairs(
    keys: np.ndarray, key_span: int, chunks: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """``(order, sorted_keys)`` for a stable sort of nonnegative int64 keys.

    ``keys`` must lie in ``[0, key_span)``.  When key and index bits
    together fit :data:`PACKED_SORT_BITS`, each row is packed into one
    int64 word ``key << index_bits | row`` and the words are *value*-sorted:
    the index bits are unique and ascend with row number, so word order is
    exactly the stable argsort order — and the sorted keys shift back out
    of the same words, so no separate gather pass runs.  ~5x faster than
    :func:`stable_argsort` + :func:`take` at 10^7 rows (a value sort has no
    indirection).  The packing runs in pooled chunks above
    :data:`PARALLEL_THRESHOLD`; oversized key spans fall back to the
    argsort-and-gather pair, keeping the contract total.
    """
    n = int(keys.shape[0])
    index_bits = max(int(n - 1).bit_length(), 1)
    key_bits = max(int(key_span - 1).bit_length(), 1)
    if key_bits + index_bits > PACKED_SORT_BITS:
        order = stable_argsort(keys, chunks=chunks)
        return order, take(keys, order, chunks=chunks)
    if chunks is None:
        chunks = parallel_chunk_count(n)
    chunks = max(1, min(int(chunks), n)) if n else 1
    if chunks <= 1:
        packed = (keys << index_bits) | np.arange(n, dtype=np.int64)
    else:
        pool = _pool()
        bounds = np.linspace(0, n, chunks + 1, dtype=np.int64)
        packed = np.empty(n, dtype=np.int64)
        futures = [
            pool.submit(
                _pack_sort_words, keys, packed, index_bits, int(start), int(stop)
            )
            for start, stop in zip(bounds[:-1], bounds[1:])
            if stop > start
        ]
        for future in futures:
            future.result()
    packed.sort()
    order = (packed & ((1 << index_bits) - 1)).astype(np.intp)
    return order, packed >> index_bits


def _pack_sort_words(
    keys: np.ndarray, out: np.ndarray, index_bits: int, start: int, stop: int
) -> None:
    out[start:stop] = (keys[start:stop] << np.int64(index_bits)) | np.arange(
        start, stop, dtype=np.int64
    )


def row_chunked(func, matrix: np.ndarray, chunks: int | None = None) -> np.ndarray:
    """Apply a per-row (elementwise along axis 0) kernel in pooled chunks.

    ``func`` must map an ``(k, d)`` slice to a ``(k,)`` (or ``(k, ...)``)
    array depending only on the rows it is given — the chunked result is
    then the concatenation of the chunk results, bit-identical to one whole
    pass.  Used for the batch Hilbert transform, whose bit-fiddling sweeps
    release the GIL inside NumPy.
    """
    n = int(matrix.shape[0])
    if chunks is None:
        chunks = parallel_chunk_count(n)
    chunks = max(1, min(int(chunks), n)) if n else 1
    if chunks <= 1:
        return func(matrix)
    pool = _pool()
    bounds = np.linspace(0, n, chunks + 1, dtype=np.int64)
    futures = [
        pool.submit(func, matrix[int(start) : int(stop)])
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    return np.concatenate([future.result() for future in futures])


# ----------------------------------------------------- gather / group reduce


def take(values: np.ndarray, indices: np.ndarray, chunks: int | None = None) -> np.ndarray:
    """``values[indices]`` (rows for 2-D ``values``), chunked across the pool.

    The gather is elementwise in ``indices``, so each pool worker fills a
    disjoint slice of one preallocated output — bit-identical to the plain
    fancy-index and free of the concat copy.  This is the dominant
    non-sort cost of the run encoding (the ``keys[order]`` gather) and of
    publish (the ``columns[members]`` gather) at 10^7 rows.
    """
    k = int(indices.shape[0])
    if chunks is None:
        chunks = parallel_chunk_count(k)
    chunks = max(1, min(int(chunks), k)) if k else 1
    if chunks <= 1:
        return values[indices]
    out = np.empty((k,) + values.shape[1:], dtype=values.dtype)

    def fill(start: int, stop: int) -> None:
        out[start:stop] = values[indices[start:stop]]

    pool = _pool()
    bounds = np.linspace(0, k, chunks + 1, dtype=np.int64)
    futures = [
        pool.submit(fill, int(start), int(stop))
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    for future in futures:
        future.result()
    return out


def take_reference(values: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Oracle for :func:`take`: one element (row) at a time."""
    return np.asarray([values[int(index)] for index in indices], dtype=values.dtype)


def grouped_min_max(
    columns: np.ndarray,
    members: np.ndarray,
    starts: np.ndarray,
    chunks: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group column minima/maxima over ``columns[members]`` spans.

    ``members`` concatenates the row indices of every group and ``starts``
    holds each group's offset into it (ascending, ``starts[0] == 0``).  The
    publish-stage kernel: a group's attribute survives suppression exactly
    when its min equals its max, so this one reduction pair replaces the
    per-row scan.  Above :data:`PARALLEL_THRESHOLD` rows the work is split
    into **group-aligned** ranges (chunk boundaries snap to group starts),
    each worker gathers and reduces its own slice, and the per-group results
    are stitched in order — bit-identical to the single pass because min/max
    over disjoint whole groups is exact.
    """
    group_count = int(starts.shape[0])
    total = int(members.shape[0])
    width = int(columns.shape[1])
    if group_count == 0:
        empty = np.zeros((0, width), dtype=columns.dtype)
        return empty, empty
    if chunks is None:
        chunks = parallel_chunk_count(total)
    chunks = max(1, min(int(chunks), group_count))
    if chunks <= 1:
        grouped = columns[members]
        return (
            np.minimum.reduceat(grouped, starts, axis=0),
            np.maximum.reduceat(grouped, starts, axis=0),
        )
    minima = np.empty((group_count, width), dtype=columns.dtype)
    maxima = np.empty((group_count, width), dtype=columns.dtype)
    # Snap ~equal-row chunk bounds to group boundaries so no group is split.
    row_bounds = np.linspace(0, total, chunks + 1, dtype=np.int64)
    group_bounds = np.unique(np.searchsorted(starts, row_bounds, side="left"))
    group_bounds[-1] = group_count

    def reduce_span(group_lo: int, group_hi: int) -> None:
        row_lo = int(starts[group_lo])
        row_hi = int(starts[group_hi]) if group_hi < group_count else total
        block = columns[members[row_lo:row_hi]]
        local_starts = starts[group_lo:group_hi] - row_lo
        minima[group_lo:group_hi] = np.minimum.reduceat(block, local_starts, axis=0)
        maxima[group_lo:group_hi] = np.maximum.reduceat(block, local_starts, axis=0)

    pool = _pool()
    futures = [
        pool.submit(reduce_span, int(lo), int(hi))
        for lo, hi in zip(group_bounds[:-1], group_bounds[1:])
        if hi > lo
    ]
    for future in futures:
        future.result()
    return minima, maxima


def grouped_min_max_reference(
    columns: np.ndarray, members: np.ndarray, starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Oracle for :func:`grouped_min_max` (plain Python loops)."""
    width = int(columns.shape[1])
    bounds = list(starts.tolist()) + [int(members.shape[0])]
    minima = np.zeros((len(bounds) - 1, width), dtype=columns.dtype)
    maxima = np.zeros((len(bounds) - 1, width), dtype=columns.dtype)
    for group, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        rows = [columns[int(members[index])] for index in range(lo, hi)]
        for position in range(width):
            values = [int(row[position]) for row in rows]
            minima[group, position] = min(values)
            maxima[group, position] = max(values)
    return minima, maxima
