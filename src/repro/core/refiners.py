"""Residue-refinement strategies for the TP+ hybrid (Section 5.6).

After TP finishes, every tuple in the residue set ``R`` would be fully
suppressed if ``R`` were published as a single QI-group.  Section 5.6 notes
that any heuristic algorithm can instead be applied *inside* ``R`` to split it
into smaller l-eligible QI-groups, which can only reduce the number of stars
(and therefore preserves the ``O(l * d)`` guarantee).

A *refiner* is a callable ``refiner(table, rows, l) -> list[list[int]]`` that
partitions ``rows`` (an l-eligible multiset) into l-eligible groups.  This
module provides the trivial and the frequency-greedy refiners; the default
used by TP+ — the Hilbert refiner — lives with the Hilbert baseline in
:mod:`repro.baselines.hilbert` because it reuses the space-filling-curve
machinery.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.eligibility import is_l_eligible
from repro.dataset.table import Table

__all__ = ["Refiner", "single_group_refiner", "frequency_greedy_refiner"]

Refiner = Callable[[Table, Sequence[int], int], list[list[int]]]


def single_group_refiner(table: Table, rows: Sequence[int], l: int) -> list[list[int]]:
    """Publish the residue as one QI-group (what plain TP does)."""
    del table, l  # the single group is eligible whenever the input multiset is
    return [list(rows)] if rows else []


def frequency_greedy_refiner(table: Table, rows: Sequence[int], l: int) -> list[list[int]]:
    """Split ``rows`` into groups of ``l`` tuples with pairwise distinct SA values.

    This is the classic bucketization heuristic (as used by Anatomy): while at
    least ``l`` distinct sensitive values remain, emit a group holding one
    tuple of each of the ``l`` currently most frequent values; the few
    remaining tuples are then appended to groups that do not yet contain
    their sensitive value.  When the input multiset is l-eligible this always
    succeeds; if the defensive checks ever fail we fall back to a single
    group, which is always valid.

    The refiner ignores QI similarity entirely, which is exactly why it is
    interesting as an ablation against the Hilbert refiner: it isolates how
    much of TP+'s advantage comes from locality-aware grouping.
    """
    rows = list(rows)
    if not rows:
        return []

    remaining: dict[int, list[int]] = {}
    for row in rows:
        remaining.setdefault(table.sa_value(row), []).append(row)

    groups: list[list[int]] = []
    group_values: list[set[int]] = []
    while len(remaining) >= l:
        most_frequent = sorted(remaining, key=lambda value: (-len(remaining[value]), value))[:l]
        group = []
        for value in most_frequent:
            group.append(remaining[value].pop())
            if not remaining[value]:
                del remaining[value]
        groups.append(group)
        group_values.append({table.sa_value(row) for row in group})

    leftovers = [row for bucket in remaining.values() for row in bucket]
    if not groups:
        return [rows]
    for row in leftovers:
        value = table.sa_value(row)
        target = next(
            (index for index, values in enumerate(group_values) if value not in values),
            None,
        )
        if target is None:
            # Extremely skewed corner case: give up on refinement, stay safe.
            return [rows]
        groups[target].append(row)
        group_values[target].add(value)

    from collections import Counter

    for group in groups:
        counts = Counter(table.sa_value(row) for row in group)
        if not is_l_eligible(counts, l):
            return [rows]
    return groups
