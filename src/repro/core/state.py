"""Joint state of the three-phase algorithm: QI-groups plus the residue set.

Section 5.1 reformulates tuple minimization as: partition the microdata into
its natural QI-groups ``Q_1..Q_s`` (tuples agreeing on every QI attribute),
then move the minimum number of tuples to a residue set ``R`` such that every
``Q_i`` and ``R`` are l-eligible.  :class:`AlgorithmState` owns that state
and the vocabulary the phases use: thin/fat, conflicting, dead/alive.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.backend import vectorized_enabled
from repro.core.groups import GroupState
from repro.dataset.table import Table
from repro.errors import IneligibleTableError

__all__ = ["AlgorithmState"]

StateFactory = Callable[[], GroupState]


class AlgorithmState:
    """All QI-groups and the residue set ``R`` of a run of the algorithm.

    Parameters
    ----------
    table:
        The microdata table.
    l:
        The diversity parameter.  The table must be l-eligible (Lemma 1).
    state_factory:
        Constructor used for the per-group multiset state; the default is the
        inverted-list :class:`~repro.core.groups.GroupState`, the ablation
        benchmark passes :class:`~repro.core.groups.NaiveGroupState`.
    """

    def __init__(
        self,
        table: Table,
        l: int,
        state_factory: StateFactory = GroupState,
    ) -> None:
        if l < 2:
            raise ValueError(f"l must be >= 2 for anonymization, got {l}")
        if not table.is_l_eligible(l):
            raise IneligibleTableError(
                f"table with {len(table)} rows is not {l}-eligible: some sensitive "
                "value occurs more than n/l times, so no l-diverse generalization exists"
            )
        self._table = table
        self._l = l
        self._group_keys: list[tuple[int, ...]]
        self._groups: list[GroupState]
        if vectorized_enabled() and len(table) > 0:
            self._init_vectorized(table, state_factory)
        else:
            self._init_reference(table, state_factory)
        self._residue = state_factory()

    def _init_reference(self, table: Table, state_factory: StateFactory) -> None:
        """Build the per-group multiset states one :meth:`add` at a time."""
        # Deterministic group order: sort by QI vector so runs are reproducible.
        grouped = sorted(table.group_by_qi().items())
        self._group_keys = [key for key, _rows in grouped]
        self._groups = []
        for _key, rows in grouped:
            state = state_factory()
            for row in rows:
                state.add(table.sa_value(row), row)
            self._groups.append(state)

    def _init_vectorized(self, table: Table, state_factory: StateFactory) -> None:
        """Build the per-group states from the table's cached run encoding.

        :meth:`Table.qi_sa_runs` sorts the rows by ``(QI vector, sensitive
        value)``, which yields every QI-group as a contiguous block (already
        in the deterministic sorted-key order) and, inside each block, every
        sensitive value as a contiguous run — exactly the ``(value, rows)``
        runs that :meth:`~repro.core.groups.GroupState.bulk_load` consumes.
        Stability of the sort keeps row indices ascending within a run, so
        the result is indistinguishable from the per-row reference
        construction; the per-state row lists are sliced fresh (they are
        mutated as tuples move to the residue), everything else is shared.
        """
        group_keys, group_run_bounds, run_bounds, run_values, order_list = table.qi_sa_runs()
        self._group_keys = group_keys
        run_rows = [
            order_list[start:end] for start, end in zip(run_bounds[:-1], run_bounds[1:])
        ]
        run_lengths = [end - start for start, end in zip(run_bounds[:-1], run_bounds[1:])]

        groups: list[GroupState] = []
        if state_factory is GroupState:
            # Fast path for the default state: fill the slots directly — the
            # zip/dict constructors run at C speed, and buckets materialize
            # lazily (most groups are born l-eligible and never touched).
            for first, last in zip(group_run_bounds[:-1], group_run_bounds[1:]):
                values = run_values[first:last]
                lengths = run_lengths[first:last]
                state = GroupState.__new__(GroupState)
                state._counts = dict(zip(values, lengths))
                state._rows = dict(zip(values, run_rows[first:last]))
                state._buckets = None  # materialized on first update / pillar read
                state._height = max(lengths)
                state._size = sum(lengths)
                groups.append(state)
        else:
            for first, last in zip(group_run_bounds[:-1], group_run_bounds[1:]):
                state = state_factory()
                runs = list(zip(run_values[first:last], run_rows[first:last]))
                loader = getattr(state, "bulk_load", None)
                if loader is not None:
                    loader(runs)
                else:  # custom state factories without bulk support
                    for value, rows in runs:
                        for row in rows:
                            state.add(value, row)
                groups.append(state)
        self._groups = groups

    # ----------------------------------------------------------------- basics

    @property
    def table(self) -> Table:
        return self._table

    @property
    def l(self) -> int:
        return self._l

    @property
    def groups(self) -> Sequence[GroupState]:
        return self._groups

    @property
    def residue(self) -> GroupState:
        return self._residue

    @property
    def group_count(self) -> int:
        """The number ``s`` of initial QI-groups."""
        return len(self._groups)

    def group(self, group_id: int) -> GroupState:
        return self._groups[group_id]

    def group_qi_vector(self, group_id: int) -> tuple[int, ...]:
        """The (common) QI vector of the tuples initially in ``group_id``."""
        return self._group_keys[group_id]

    # -------------------------------------------------------------- movements

    def move_to_residue(self, group_id: int, value: int) -> int:
        """Move one tuple with sensitive value ``value`` from a group to ``R``.

        Returns the row index of the moved tuple.  This is the only way
        tuples ever change sides; the paper notes tuples are moved to ``R``
        but never taken back.
        """
        row = self._groups[group_id].remove_one(value)
        self._residue.add(value, row)
        return row

    # ------------------------------------------------------------ vocabulary

    def group_is_thin(self, group_id: int) -> bool:
        return self._groups[group_id].is_thin(self._l)

    def group_is_fat(self, group_id: int) -> bool:
        return self._groups[group_id].is_fat(self._l)

    def conflicting_pillars(self, group_id: int) -> set[int]:
        """``C(Q)``: pillars of the group that are also pillars of ``R``."""
        # Intersecting the read-only views allocates only the result set.
        return set(self._groups[group_id].pillars_view() & self._residue.pillars_view())

    def group_is_conflicting(self, group_id: int) -> bool:
        return not self._groups[group_id].pillars_view().isdisjoint(
            self._residue.pillars_view()
        )

    def group_is_dead(self, group_id: int) -> bool:
        """Dead = thin and conflicting (cannot shed tuples without harm)."""
        group = self._groups[group_id]
        if group.size == 0:
            return True
        return group.is_thin(self._l) and self.group_is_conflicting(group_id)

    def group_is_alive(self, group_id: int) -> bool:
        return not self.group_is_dead(group_id)

    def residue_is_eligible(self) -> bool:
        """Inequality (1): ``|R| >= l * h(R)``."""
        return self._residue.is_l_eligible(self._l)

    # --------------------------------------------------------------- outputs

    def retained_group_rows(self) -> list[list[int]]:
        """Row-index lists of the non-empty QI-groups (zero stars each)."""
        return [group.rows() for group in self._groups if group.size > 0]

    def residue_rows(self) -> list[int]:
        """Row indices currently in the residue set ``R``."""
        return self._residue.rows()

    def removed_tuple_count(self) -> int:
        """``|R|``: the tuple-minimization objective."""
        return self._residue.size
