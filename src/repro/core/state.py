"""Joint state of the three-phase algorithm: QI-groups plus the residue set.

Section 5.1 reformulates tuple minimization as: partition the microdata into
its natural QI-groups ``Q_1..Q_s`` (tuples agreeing on every QI attribute),
then move the minimum number of tuples to a residue set ``R`` such that every
``Q_i`` and ``R`` are l-eligible.  :class:`AlgorithmState` owns that state
and the vocabulary the phases use: thin/fat, conflicting, dead/alive.

On the vectorized backend the per-group multiset states are **lazy**: the
state keeps the table's run encoding (:meth:`Table.qi_sa_runs_arrays`) plus
per-group size/height arrays computed by one fused
:func:`~repro.core.kernels.group_sizes_heights` pass, and a
:class:`~repro.core.groups.GroupState` is only materialized for the groups a
phase actually mutates.  Every read the phases need — size, height,
eligibility, pillars, liveness, per-value counts — is answered from the
arrays for untouched groups, which is what makes million-row tables viable:
the overwhelming majority of QI-groups are born l-eligible and never touched,
so they never pay for Python dicts, and whole-state sweeps (phase one's
ineligible scan, phase three's cover/kill passes) become NumPy kernels.
Materialization is observationally lossless: the dicts built from the run
arrays are exactly the ones the eager construction would have produced.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.backend import vectorized_enabled
from repro.core import kernels
from repro.core.groups import GroupState
from repro.dataset.table import Table
from repro.errors import IneligibleTableError

__all__ = ["AlgorithmState"]

StateFactory = Callable[[], GroupState]


class AlgorithmState:
    """All QI-groups and the residue set ``R`` of a run of the algorithm.

    Parameters
    ----------
    table:
        The microdata table.
    l:
        The diversity parameter.  The table must be l-eligible (Lemma 1).
    state_factory:
        Constructor used for the per-group multiset state; the default is the
        inverted-list :class:`~repro.core.groups.GroupState`, the ablation
        benchmark passes :class:`~repro.core.groups.NaiveGroupState`.
    """

    def __init__(
        self,
        table: Table,
        l: int,
        state_factory: StateFactory = GroupState,
    ) -> None:
        if l < 2:
            raise ValueError(f"l must be >= 2 for anonymization, got {l}")
        if not table.is_l_eligible(l):
            raise IneligibleTableError(
                f"table with {len(table)} rows is not {l}-eligible: some sensitive "
                "value occurs more than n/l times, so no l-diverse generalization exists"
            )
        self._table = table
        self._l = l
        self._group_keys: list[tuple[int, ...]] | None = None
        self._group_keys_arr: np.ndarray | None = None
        self._groups: list[GroupState | None]
        self._lazy = False
        self._materialized: set[int] = set()
        self._pillar_cache: dict[int, frozenset[int]] = {}
        self._pillar_runs: tuple[np.ndarray, np.ndarray] | None = None
        self._run_gids: np.ndarray | None = None
        self._context = None
        if vectorized_enabled() and len(table) > 0:
            if state_factory is GroupState:
                self._init_lazy(table)
            else:
                self._init_vectorized(table, state_factory)
        else:
            self._init_reference(table, state_factory)
        self._residue = state_factory()

    def _init_reference(self, table: Table, state_factory: StateFactory) -> None:
        """Build the per-group multiset states one :meth:`add` at a time."""
        # Deterministic group order: sort by QI vector so runs are reproducible.
        grouped = sorted(table.group_by_qi().items())
        self._group_keys = [key for key, _rows in grouped]
        self._groups = []
        for _key, rows in grouped:
            state = state_factory()
            for row in rows:
                state.add(table.sa_value(row), row)
            self._groups.append(state)

    def _init_lazy(self, table: Table) -> None:
        """Defer group materialization: keep the run encoding plus metrics.

        The shared :meth:`Table.grouping` context sorts the rows by ``(QI
        vector, sensitive value)``, which yields every QI-group as a
        contiguous block (already in the deterministic sorted-key order)
        and, inside each block, every sensitive value as a contiguous run.
        The context caches every derived array (run lengths, group row
        bounds, the fused size/height pass), so the state shares them with
        the metrics instead of re-deriving; the per-group dicts are only
        built when a phase mutates the group (:meth:`_materialize`), so
        untouched groups stay as array slices.
        """
        context = table.grouping()
        self._context = context
        (
            self._group_keys_arr,
            self._group_run_bounds,
            self._run_bounds,
            self._run_values,
            self._order,
        ) = context.arrays()
        self._run_lengths = context.run_lengths
        self._sizes, self._heights = context.group_sizes_heights()
        # Row-span boundaries of each group inside ``order`` (s + 1 entries).
        self._group_row_bounds = context.group_row_bounds
        self._groups = [None] * self._sizes.shape[0]
        self._lazy = True

    def _init_vectorized(self, table: Table, state_factory: StateFactory) -> None:
        """Eagerly build custom per-group states from the cached run encoding.

        Stability of the sort keeps row indices ascending within a run, so
        the result is indistinguishable from the per-row reference
        construction; the per-state row lists are sliced fresh (they are
        mutated as tuples move to the residue), everything else is shared.
        """
        group_keys, group_run_bounds, run_bounds, run_values, order_list = table.qi_sa_runs()
        self._group_keys = group_keys
        run_rows = [
            order_list[start:end] for start, end in zip(run_bounds[:-1], run_bounds[1:])
        ]

        groups: list[GroupState | None] = []
        for first, last in zip(group_run_bounds[:-1], group_run_bounds[1:]):
            state = state_factory()
            runs = list(zip(run_values[first:last], run_rows[first:last]))
            loader = getattr(state, "bulk_load", None)
            if loader is not None:
                loader(runs)
            else:  # custom state factories without bulk support
                for value, rows in runs:
                    for row in rows:
                        state.add(value, row)
            groups.append(state)
        self._groups = groups

    # ---------------------------------------------------------- materialization

    def _materialize(self, group_id: int) -> GroupState:
        """Build the mutable :class:`GroupState` of one lazily-held group.

        The dicts are filled in run order (sensitive values ascending, row
        indices ascending within a value) — exactly the insertion order the
        eager construction produces, so everything downstream (row
        concatenation order included) is bit-identical.
        """
        group = self._groups[group_id]
        if group is not None:
            return group
        first = int(self._group_run_bounds[group_id])
        last = int(self._group_run_bounds[group_id + 1])
        values = self._run_values[first:last].tolist()
        bounds = self._run_bounds[first : last + 1].tolist()
        order = self._order
        rows = {
            value: order[start:end].tolist()
            for value, start, end in zip(values, bounds[:-1], bounds[1:])
        }
        counts = {
            value: end - start
            for value, start, end in zip(values, bounds[:-1], bounds[1:])
        }
        group = GroupState.__new__(GroupState)
        group._counts = counts
        group._rows = rows
        group._buckets = None  # materialized on first update / pillar read
        group._height = int(self._heights[group_id])
        group._size = int(self._sizes[group_id])
        self._groups[group_id] = group
        self._materialized.add(group_id)
        self._pillar_cache.pop(group_id, None)
        return group

    # ----------------------------------------------------------------- basics

    @property
    def table(self) -> Table:
        return self._table

    @property
    def l(self) -> int:
        return self._l

    @property
    def groups(self) -> Sequence[GroupState]:
        """All per-group states (materializing any still-lazy ones)."""
        if self._lazy and len(self._materialized) < len(self._groups):
            for group_id in range(len(self._groups)):
                if self._groups[group_id] is None:
                    self._materialize(group_id)
        return self._groups  # type: ignore[return-value]

    @property
    def residue(self) -> GroupState:
        return self._residue

    @property
    def group_count(self) -> int:
        """The number ``s`` of initial QI-groups."""
        return len(self._groups)

    def group(self, group_id: int) -> GroupState:
        group = self._groups[group_id]
        if group is None:
            group = self._materialize(group_id)
        return group

    def group_qi_vector(self, group_id: int) -> tuple[int, ...]:
        """The (common) QI vector of the tuples initially in ``group_id``."""
        if self._group_keys is None:
            self._group_keys = [tuple(key) for key in self._group_keys_arr.tolist()]
        return self._group_keys[group_id]

    # ------------------------------------------------------------ fast queries
    #
    # Array-backed reads for groups that were never mutated; materialized
    # groups delegate to their GroupState.  The phases use these in their
    # whole-state sweeps so that untouched groups never build Python dicts.

    def group_size(self, group_id: int) -> int:
        group = self._groups[group_id]
        if group is not None:
            return group.size
        return int(self._sizes[group_id])

    def group_height(self, group_id: int) -> int:
        group = self._groups[group_id]
        if group is not None:
            return group.height
        return int(self._heights[group_id])

    def group_is_l_eligible(self, group_id: int) -> bool:
        group = self._groups[group_id]
        if group is not None:
            return group.is_l_eligible(self._l)
        return bool(self._heights[group_id] * self._l <= self._sizes[group_id])

    def group_pillars_view(self, group_id: int) -> frozenset[int] | set[int]:
        """The group's pillar set without materializing it (read-only)."""
        group = self._groups[group_id]
        if group is not None:
            return group.pillars_view()
        cached = self._pillar_cache.get(group_id)
        if cached is None:
            first = self._group_run_bounds[group_id]
            last = self._group_run_bounds[group_id + 1]
            lengths = self._run_lengths[first:last]
            values = self._run_values[first:last]
            cached = frozenset(values[lengths == self._heights[group_id]].tolist())
            self._pillar_cache[group_id] = cached
        return cached

    def group_values_iter(self, group_id: int):
        """The group's distinct sensitive values (read-only iterable)."""
        group = self._groups[group_id]
        if group is not None:
            return group.values_view()
        first = self._group_run_bounds[group_id]
        last = self._group_run_bounds[group_id + 1]
        return self._run_values[first:last].tolist()

    def group_count_of(self, group_id: int, value: int) -> int:
        """``h(Q, v)`` without materializing the group."""
        group = self._groups[group_id]
        if group is not None:
            return group.count(value)
        first = int(self._group_run_bounds[group_id])
        last = int(self._group_run_bounds[group_id + 1])
        values = self._run_values[first:last]
        position = int(np.searchsorted(values, value))
        if position >= values.shape[0] or int(values[position]) != value:
            return 0
        return int(
            self._run_bounds[first + position + 1] - self._run_bounds[first + position]
        )

    def ineligible_group_ids(self) -> list[int]:
        """Ascending ids of the groups violating Definition 2, one fused pass."""
        l = self._l
        if self._lazy:
            mask = self._heights * l > self._sizes
            for group_id in self._materialized:
                mask[group_id] = not self._groups[group_id].is_l_eligible(l)
            return np.flatnonzero(mask).tolist()
        return [
            group_id
            for group_id, group in enumerate(self._groups)
            if not group.is_l_eligible(l)
        ]

    def values_to_groups(self) -> dict[int, set[int]]:
        """``{sensitive value: ids of non-empty groups holding it}``.

        Phase two's seeding index.  On the lazy path this is one stable
        argsort over the run values instead of a per-group Python loop;
        materialized groups are merged in from their dicts.
        """
        result: dict[int, set[int]] = {}
        if self._lazy:
            run_gids = self._ensure_run_gids()
            values = self._run_values
            if self._materialized:
                stale = np.zeros(len(self._groups), dtype=bool)
                stale[list(self._materialized)] = True
                keep = ~stale[run_gids]
                values = values[keep]
                run_gids = run_gids[keep]
            if values.size:
                sort = np.argsort(values, kind="stable")
                sorted_values = values[sort]
                sorted_gids = run_gids[sort].tolist()
                boundaries = np.flatnonzero(sorted_values[1:] != sorted_values[:-1]) + 1
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [sorted_values.shape[0]]))
                for value, start, end in zip(
                    sorted_values[starts].tolist(), starts.tolist(), ends.tolist()
                ):
                    result[value] = set(sorted_gids[start:end])
            for group_id in sorted(self._materialized):
                group = self._groups[group_id]
                if group.size == 0:
                    continue
                for value in group.values_view():
                    result.setdefault(value, set()).add(group_id)
        else:
            for group_id, group in enumerate(self._groups):
                if group.size == 0:
                    continue
                for value in group.values_view():
                    result.setdefault(value, set()).add(group_id)
        return result

    def _ensure_run_gids(self) -> np.ndarray:
        if self._run_gids is None:
            if self._context is not None:
                self._run_gids = self._context.run_group_ids
            else:
                self._run_gids = np.repeat(
                    np.arange(len(self._groups), dtype=np.int64),
                    np.diff(self._group_run_bounds),
                )
        return self._run_gids

    def pillar_overlap_counts(self, pending: set[int]) -> np.ndarray | None:
        """``|pillars(Q) ∩ pending|`` for every group, or ``None`` off-lazy.

        Backs the greedy SET-COVER step of phase three: the static pillar
        runs (valid for every never-mutated group) go through the chunked
        :func:`~repro.core.kernels.pillar_overlap_counts` kernel, and the
        few materialized groups are overridden from their live pillar sets.
        Entries of *empty* materialized groups are 0; callers mask
        candidates by size anyway.
        """
        if not self._lazy:
            return None
        if self._pillar_runs is None:
            run_gids = self._ensure_run_gids()
            is_pillar = self._run_lengths == self._heights[run_gids]
            self._pillar_runs = (run_gids[is_pillar], self._run_values[is_pillar])
        gids, values = self._pillar_runs
        counts = kernels.pillar_overlap_counts(
            gids, values, pending, len(self._groups)
        )
        for group_id in self._materialized:
            group = self._groups[group_id]
            counts[group_id] = (
                len(pending & set(group.pillars_view())) if group.size else 0
            )
        return counts

    def group_sizes_array(self) -> np.ndarray | None:
        """Current per-group sizes as an array, or ``None`` off-lazy."""
        if not self._lazy:
            return None
        sizes = self._sizes.copy()
        for group_id in self._materialized:
            sizes[group_id] = self._groups[group_id].size
        return sizes

    # -------------------------------------------------------------- movements

    def move_to_residue(self, group_id: int, value: int) -> int:
        """Move one tuple with sensitive value ``value`` from a group to ``R``.

        Returns the row index of the moved tuple.  This is the only way
        tuples ever change sides; the paper notes tuples are moved to ``R``
        but never taken back.
        """
        row = self.group(group_id).remove_one(value)
        self._residue.add(value, row)
        return row

    def shave_group_bulk(self, group_id: int) -> int | None:
        """Phase one's whole shave of one group as a single bulk operation.

        Equivalent to ``move_to_residue(group_id, min(pillars))`` repeated
        until the group is l-eligible: the stopping height has a closed form
        (:func:`~repro.core.kernels.phase_one_stop_height`), the surviving
        histogram is exactly ``min(c_v, stop)``, and — because
        :meth:`GroupState.remove_one` pops row indices from the tail of the
        ascending per-value lists — the removed rows are exactly the highest
        ``c_v - stop`` indices of each over-tall value.  The group is
        materialized directly in its post-shave form.  Returns the number of
        tuples moved, or ``None`` when the bulk path does not apply (eager
        state, or a group already materialized/mutated) and the caller must
        run the reference loop.
        """
        if not self._lazy or self._groups[group_id] is not None:
            return None
        l = self._l
        size = int(self._sizes[group_id])
        height = int(self._heights[group_id])
        if height * l <= size:
            return 0
        first = int(self._group_run_bounds[group_id])
        last = int(self._group_run_bounds[group_id + 1])
        values = self._run_values[first:last].tolist()
        bounds = self._run_bounds[first : last + 1].tolist()
        lengths = [end - start for start, end in zip(bounds[:-1], bounds[1:])]
        stop, removed = kernels.phase_one_stop_height(lengths, size, height, l)
        order = self._order
        counts: dict[int, int] = {}
        rows: dict[int, list[int]] = {}
        shaved: list[tuple[int, list[int]]] = []
        for value, start, end in zip(values, bounds[:-1], bounds[1:]):
            count = end - start
            keep = count if count <= stop else stop
            if keep:
                counts[value] = keep
                rows[value] = order[start : start + keep].tolist()
            if keep != count:
                shaved.append((value, order[start + keep : end].tolist()))
        group = GroupState.__new__(GroupState)
        group._counts = counts
        group._rows = rows
        group._buckets = None  # materialized on first update / pillar read
        group._height = stop if counts else 0
        group._size = size - removed
        self._groups[group_id] = group
        self._materialized.add(group_id)
        self._pillar_cache.pop(group_id, None)
        self._residue.bulk_append(shaved)
        return removed

    # ------------------------------------------------------------ vocabulary

    def group_is_thin(self, group_id: int) -> bool:
        group = self._groups[group_id]
        if group is not None:
            return group.is_thin(self._l)
        return int(self._sizes[group_id]) == self._l * int(self._heights[group_id])

    def group_is_fat(self, group_id: int) -> bool:
        group = self._groups[group_id]
        if group is not None:
            return group.is_fat(self._l)
        return int(self._sizes[group_id]) >= self._l * int(self._heights[group_id]) + 1

    def conflicting_pillars(self, group_id: int) -> set[int]:
        """``C(Q)``: pillars of the group that are also pillars of ``R``."""
        # Intersecting the read-only views allocates only the result set.
        return set(self.group_pillars_view(group_id) & self._residue.pillars_view())

    def group_is_conflicting(self, group_id: int) -> bool:
        return not self.group_pillars_view(group_id).isdisjoint(
            self._residue.pillars_view()
        )

    def group_is_dead(self, group_id: int) -> bool:
        """Dead = thin and conflicting (cannot shed tuples without harm)."""
        if self.group_size(group_id) == 0:
            return True
        return self.group_is_thin(group_id) and self.group_is_conflicting(group_id)

    def group_is_alive(self, group_id: int) -> bool:
        return not self.group_is_dead(group_id)

    def residue_is_eligible(self) -> bool:
        """Inequality (1): ``|R| >= l * h(R)``."""
        return self._residue.is_l_eligible(self._l)

    # --------------------------------------------------------------- outputs

    def retained_group_rows(self) -> list[list[int]]:
        """Row-index lists of the non-empty QI-groups (zero stars each)."""
        if not self._lazy:
            return [group.rows() for group in self._groups if group.size > 0]
        order = self._order
        row_bounds = self._group_row_bounds.tolist()
        collected: list[list[int]] = []
        for group_id, group in enumerate(self._groups):
            if group is None:
                # Untouched: its rows are one contiguous span of ``order``,
                # already in the (SA run, ascending row) order the eager
                # GroupState.rows() concatenation would produce.
                collected.append(
                    order[row_bounds[group_id] : row_bounds[group_id + 1]].tolist()
                )
            elif group.size > 0:
                collected.append(group.rows())
        return collected

    def retained_group_arrays(self) -> list:
        """Like :meth:`retained_group_rows`, but zero-copy where possible.

        Untouched lazy groups come back as read-only ndarray spans of
        ``order`` instead of Python lists (same element order); materialized
        groups still yield lists.  The vectorized publish path consumes
        either without materializing millions of Python ints.
        """
        if not self._lazy:
            return [group.rows() for group in self._groups if group.size > 0]
        order = self._order
        row_bounds = self._group_row_bounds
        collected: list = []
        for group_id, group in enumerate(self._groups):
            if group is None:
                collected.append(order[row_bounds[group_id] : row_bounds[group_id + 1]])
            elif group.size > 0:
                collected.append(group.rows())
        return collected

    def residue_rows(self) -> list[int]:
        """Row indices currently in the residue set ``R``."""
        return self._residue.rows()

    def removed_tuple_count(self) -> int:
        """``|R|``: the tuple-minimization objective."""
        return self._residue.size
