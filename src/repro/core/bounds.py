"""Lower bounds and approximation-ratio certificates.

The paper's analysis yields cheap, instance-specific lower bounds on the
optimum that make the approximation guarantees *checkable at run time*:

* Corollary 1 (first half): any l-diverse solution removes at least
  ``|R.|`` tuples, where ``R.`` is the residue after phase one;
* Corollary 2: ``OPT >= l * h(R.)``;
* Lemma 2: a λ-approximation for tuple minimization is a ``λ * d``
  approximation for star minimization, and each suppressed tuple contributes
  at least one star, so ``OPT_stars >= OPT_tuples``.

:func:`certificate` packages those bounds together with the achieved
objective values so tests, examples and the experiment harness can report
*proved* upper bounds on the realised approximation ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.phase1 import run_phase_one
from repro.core.state import AlgorithmState
from repro.dataset.table import Table

__all__ = [
    "tuple_lower_bound",
    "star_lower_bound",
    "theoretical_star_ratio",
    "theoretical_tuple_ratio",
    "RatioCertificate",
    "certificate",
]


def tuple_lower_bound(table: Table, l: int) -> int:
    """A lower bound on the optimal number of suppressed tuples (Problem 2).

    Runs phase one on a scratch state and returns
    ``max(|R.|, l * h(R.))`` (Corollaries 1 and 2).
    """
    state = AlgorithmState(table, l)
    report = run_phase_one(state)
    return max(report.residue_size, l * report.residue_height)


def star_lower_bound(table: Table, l: int) -> int:
    """A lower bound on the optimal number of stars (Problem 1).

    Every suppressed tuple carries at least one star, so the tuple bound
    transfers directly.
    """
    return tuple_lower_bound(table, l)


def theoretical_tuple_ratio(l: int) -> int:
    """The worst-case ratio of the TP algorithm for tuple minimization (Theorem 3)."""
    return l


def theoretical_star_ratio(l: int, dimension: int) -> int:
    """The worst-case ratio of the TP algorithm for star minimization (Lemma 2)."""
    return l * dimension


@dataclass(frozen=True)
class RatioCertificate:
    """Achieved objective values together with proved lower bounds."""

    l: int
    dimension: int
    removed_tuples: int
    stars: int
    tuple_bound: int
    star_bound: int

    @property
    def tuple_ratio_upper_bound(self) -> float:
        """A proved upper bound on the realised tuple-minimization ratio."""
        if self.removed_tuples == 0:
            return 1.0
        return self.removed_tuples / self.tuple_bound if self.tuple_bound else float("inf")

    @property
    def star_ratio_upper_bound(self) -> float:
        """A proved upper bound on the realised star-minimization ratio."""
        if self.stars == 0:
            return 1.0
        return self.stars / self.star_bound if self.star_bound else float("inf")


def certificate(table: Table, l: int, removed_tuples: int, stars: int) -> RatioCertificate:
    """Build a :class:`RatioCertificate` for an already-computed solution."""
    tuple_bound = tuple_lower_bound(table, l)
    return RatioCertificate(
        l=l,
        dimension=table.dimension,
        removed_tuples=removed_tuples,
        stars=stars,
        tuple_bound=tuple_bound,
        star_bound=tuple_bound,
    )
