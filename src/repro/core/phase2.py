"""Phase two of the three-phase algorithm (Section 5.3).

Phase two grows ``|R|`` while keeping ``h(R)`` unchanged.  Each iteration
picks the *least frequent alive* sensitive value ``v`` in ``R`` (alive means
some alive QI-group still holds a tuple with value ``v``), finds an alive
group containing ``v`` and either

* removes one tuple with value ``v`` when the group is *fat*, or
* removes one tuple from each of the group's pillars when the group is
  *thin* (a thin alive group is necessarily non-conflicting).

The phase ends as soon as ``R`` becomes l-eligible (additive error at most
``l - 1`` tuples, Corollary 3) or when no alive sensitive value remains, in
which case phase three takes over.

The candidate selection mirrors the candidate list ``C`` of Section 5.5: we
keep a lazily-updated min-heap keyed by ``h(R, v)``.  Entries are refreshed
whenever ``h(R, v)`` changes, and values that stop being alive are discarded
permanently — which is sound because, during phase two, groups can only die
(they never regain tuples and the pillar set of ``R`` only grows).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.state import AlgorithmState
from repro.errors import AlgorithmInvariantError

__all__ = ["PhaseTwoReport", "run_phase_two"]


@dataclass(frozen=True)
class PhaseTwoReport:
    """Outcome of phase two."""

    #: Number of tuples moved to the residue set during this phase.
    moved: int
    #: Number of iterations (candidate selections) executed.
    iterations: int
    #: Whether ``R`` became l-eligible during this phase.
    satisfied: bool


def run_phase_two(state: AlgorithmState) -> PhaseTwoReport:
    """Grow ``R`` without raising ``h(R)`` until eligible or stuck."""
    l = state.l
    residue = state.residue

    # Which groups currently hold each sensitive value.  Sets are pruned
    # lazily; once a value has no alive group left it can never become alive
    # again within phase two.  values_to_groups builds the index with one
    # vectorized pass on the lazy state instead of touching every group.
    groups_with_value = state.values_to_groups()

    heap: list[tuple[int, int]] = [
        (residue.count(value), value) for value in groups_with_value
    ]
    heapq.heapify(heap)
    exhausted: set[int] = set()

    moved = 0
    iterations = 0
    while heap:
        if state.residue_is_eligible():
            return PhaseTwoReport(moved=moved, iterations=iterations, satisfied=True)
        frequency, value = heapq.heappop(heap)
        if value in exhausted:
            continue
        if frequency != residue.count(value):
            # Stale entry: a fresher one was pushed when h(R, value) changed.
            continue

        group_id = _find_alive_group(state, groups_with_value[value], value)
        if group_id is None:
            exhausted.add(value)
            continue

        iterations += 1
        group = state.group(group_id)
        touched: list[int] = []
        if group.is_fat(l):
            state.move_to_residue(group_id, value)
            moved += 1
            touched.append(value)
        else:
            # Thin and alive, hence non-conflicting (Section 5.3).
            pillars = sorted(group.pillars_view())
            if not residue.pillars_view().isdisjoint(pillars):
                raise AlgorithmInvariantError(
                    "phase two selected a thin group that conflicts with R"
                )
            for pillar in pillars:
                state.move_to_residue(group_id, pillar)
                moved += 1
            touched.extend(pillars)

        # Refresh heap entries for every value whose frequency in R changed,
        # and re-arm the picked value if it was not itself moved.
        for changed in touched:
            if changed in groups_with_value and changed not in exhausted:
                heapq.heappush(heap, (residue.count(changed), changed))
        if value not in touched:
            heapq.heappush(heap, (residue.count(value), value))

        if state.residue_is_eligible():
            return PhaseTwoReport(moved=moved, iterations=iterations, satisfied=True)

    return PhaseTwoReport(
        moved=moved,
        iterations=iterations,
        satisfied=state.residue_is_eligible(),
    )


def _find_alive_group(
    state: AlgorithmState,
    candidates: set[int],
    value: int,
) -> int | None:
    """Return an alive group holding ``value``, pruning dead/empty candidates.

    Pruning is permanent, which is safe during phase two: a group that died
    (thin and conflicting) can never come back to life because groups only
    lose tuples and the pillar set of ``R`` only grows while ``h(R)`` stays
    constant (Lemma 5).
    """
    for group_id in sorted(candidates):
        if state.group_count_of(group_id, value) == 0 or state.group_is_dead(group_id):
            candidates.discard(group_id)
            continue
        return group_id
    return None
