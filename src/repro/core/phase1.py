"""Phase one of the three-phase algorithm (Section 5.2).

For each QI-group, repeatedly remove one tuple from a pillar (a most frequent
sensitive value) until the group is l-eligible.  The paper observes that the
end result is independent of tie-breaking: a group only becomes eligible once
every pillar has lost a tuple, so the multiset of removals is unique.  We
nevertheless break ties deterministically (smallest sensitive code) so that
row-level output is reproducible.

If, at the end of the phase, the residue set ``R`` is itself l-eligible, the
whole algorithm stops and the solution is optimal (Corollary 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.state import AlgorithmState

__all__ = ["PhaseOneReport", "run_phase_one"]


@dataclass(frozen=True)
class PhaseOneReport:
    """Outcome of phase one."""

    #: Number of tuples moved to the residue set during this phase.
    moved: int
    #: ``h(R.)``: pillar height of the residue at the end of phase one.  This
    #: value drives the lower bound ``OPT >= l * h(R.)`` of Corollary 2.
    residue_height: int
    #: ``|R.|``: size of the residue at the end of phase one.
    residue_size: int
    #: Whether inequality (1) ``|R| >= l * h(R)`` already holds, i.e. the
    #: algorithm terminates here with an optimal solution.
    satisfied: bool


def run_phase_one(state: AlgorithmState) -> PhaseOneReport:
    """Make every QI-group l-eligible by shaving its pillars.

    One fused pass over the state's size/height arrays finds the ineligible
    groups (:meth:`~repro.core.state.AlgorithmState.ineligible_group_ids`),
    and each is shaved in bulk to its closed-form stopping height
    (:meth:`~repro.core.state.AlgorithmState.shave_group_bulk`) — the paper's
    observation that the removal multiset is tie-break-independent is what
    licenses computing it directly.  Groups the bulk path cannot serve (the
    reference backend, custom state factories, groups mutated before the
    phase) fall back to the one-removal-at-a-time loop the bulk operation is
    proven against.
    """
    l = state.l
    moved = 0
    for group_id in state.ineligible_group_ids():
        bulk_moved = state.shave_group_bulk(group_id)
        if bulk_moved is not None:
            moved += bulk_moved
            continue
        group = state.group(group_id)
        while not group.is_l_eligible(l):
            pillar = min(group.pillars_view())
            state.move_to_residue(group_id, pillar)
            moved += 1
    return PhaseOneReport(
        moved=moved,
        residue_height=state.residue.height,
        residue_size=state.residue.size,
        satisfied=state.residue_is_eligible(),
    )
