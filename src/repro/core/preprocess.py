"""Domain coarsening before TP (the Section 5.6 preprocessing hybrid).

Section 5.6 observes that TP degrades when QI domains are large (most tuples
end up with unique QI vectors) and suggests pre-coarsening the domains with
any single-dimensional generalization before running TP: fewer stars, at the
price of less precise non-star values.  This module implements that
preprocessing as an explicit, auditable transformation:

* :func:`coarsen` maps a table onto taxonomy nodes at a chosen depth per
  attribute, producing a smaller-domain table plus the information needed to
  decode published values back to sub-domains;
* :func:`anonymize_with_coarsening` runs TP (or TP+) on the coarsened table
  and re-expresses the published table over the original schema, with
  non-star cells becoming sub-domain cells (frozensets of original codes).

The trade-off it exposes — number of stars versus the width of the non-star
cells — is exactly the tuning knob discussed in the paper, and the ablation
benchmark sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import vectorized_enabled
from repro.baselines.hierarchy import Taxonomy
from repro.core import hybrid as hybrid_module
from repro.core import three_phase
from repro.dataset.generalized import STAR, GeneralizedTable
from repro.dataset.table import Attribute, Schema, Table

__all__ = ["CoarsenedTable", "coarsen", "anonymize_with_coarsening", "PreprocessedResult"]


@dataclass(frozen=True)
class CoarsenedTable:
    """A table whose QI values are taxonomy nodes at a fixed depth."""

    #: The coarsened table (QI codes index into ``node_ids`` per attribute).
    table: Table
    #: The original table the coarsening was derived from.
    original: Table
    #: Per attribute: the taxonomy used.
    taxonomies: tuple[Taxonomy, ...]
    #: Per attribute: the taxonomy node backing each coarsened code.
    node_ids: tuple[tuple[int, ...], ...]

    def decode_cell(self, position: int, code: int) -> frozenset[int] | int:
        """Original-domain cell for a coarsened code: exact code or sub-domain."""
        taxonomy = self.taxonomies[position]
        node_id = self.node_ids[position][code]
        codes = taxonomy.codes_under(node_id)
        if len(codes) == 1:
            return codes[0]
        return frozenset(codes)


def coarsen(
    table: Table,
    depth: int,
    taxonomies: tuple[Taxonomy, ...] | None = None,
    fanout: int = 3,
) -> CoarsenedTable:
    """Coarsen every QI attribute to the taxonomy nodes at ``depth``.

    ``depth = 0`` collapses every attribute to its root (a single value);
    depths at or beyond an attribute's height leave it untouched.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if taxonomies is None:
        taxonomies = tuple(
            Taxonomy.for_attribute(attribute, fanout=fanout) for attribute in table.schema.qi
        )
    if len(taxonomies) != table.dimension:
        raise ValueError(f"expected {table.dimension} taxonomies, got {len(taxonomies)}")

    node_ids: list[tuple[int, ...]] = []
    code_maps: list[list[int]] = []
    attributes: list[Attribute] = []
    for position, (attribute, taxonomy) in enumerate(zip(table.schema.qi, taxonomies)):
        del position
        nodes = _nodes_at_depth(taxonomy, depth)
        node_for_code = [0] * attribute.size
        for new_code, node_id in enumerate(nodes):
            for code in taxonomy.codes_under(node_id):
                node_for_code[code] = new_code
        node_ids.append(tuple(nodes))
        code_maps.append(node_for_code)
        labels = tuple(
            f"{attribute.name}[{taxonomy.node(node_id).lo}:{taxonomy.node(node_id).hi}]"
            for node_id in nodes
        )
        attributes.append(Attribute(attribute.name, labels))

    schema = Schema(qi=tuple(attributes), sensitive=table.schema.sensitive)
    if vectorized_enabled():
        # Remap every column through its code map with one gather per attribute.
        columns = table.qi_columns
        coarse_columns = np.empty_like(columns)
        for position, code_map in enumerate(code_maps):
            coarse_columns[:, position] = np.asarray(code_map, dtype=np.int32)[
                columns[:, position]
            ]
        coarse = Table.from_arrays(schema, coarse_columns, table.sa_array)
    else:
        qi_rows = [
            tuple(code_maps[position][row[position]] for position in range(table.dimension))
            for row in table.qi_rows
        ]
        coarse = Table(schema, qi_rows, list(table.sa_values))
    return CoarsenedTable(
        table=coarse,
        original=table,
        taxonomies=tuple(taxonomies),
        node_ids=tuple(node_ids),
    )


def _nodes_at_depth(taxonomy: Taxonomy, depth: int) -> list[int]:
    """The frontier of the taxonomy at ``depth`` (leaves stop early)."""
    frontier: list[int] = []

    def walk(node_id: int, level: int) -> None:
        if level == depth or taxonomy.is_leaf(node_id):
            frontier.append(node_id)
            return
        for child_id in taxonomy.children(node_id):
            walk(child_id, level + 1)

    walk(taxonomy.root_id, 0)
    return frontier


@dataclass(frozen=True)
class PreprocessedResult:
    """Outcome of TP / TP+ run after domain coarsening."""

    coarsened: CoarsenedTable
    #: The published table over the *original* schema: exact values where the
    #: coarsened cell was a single original code, sub-domains otherwise, and
    #: stars where TP suppressed.
    generalized: GeneralizedTable
    #: Stars in the published table (same count as on the coarsened table).
    star_count: int
    l: int

    @property
    def subdomain_cell_count(self) -> int:
        """Non-star cells that became sub-domains due to the coarsening."""
        return self.generalized.generalized_cell_count() - self.star_count


def anonymize_with_coarsening(
    table: Table,
    l: int,
    depth: int,
    use_hybrid: bool = True,
    fanout: int = 3,
) -> PreprocessedResult:
    """Coarsen the QI domains, run TP(+) on the result, decode to the original schema."""
    coarsened = coarsen(table, depth, fanout=fanout)
    if use_hybrid:
        published = hybrid_module.anonymize(coarsened.table, l).generalized
    else:
        published = three_phase.anonymize(coarsened.table, l).generalized

    cells = []
    cell_cache: list[dict[int, object]] = [dict() for _ in range(table.dimension)]
    for row in range(len(table)):
        row_cells = []
        for position in range(table.dimension):
            cell = published.cell(row, position)
            if cell is STAR:
                row_cells.append(STAR)
                continue
            cache = cell_cache[position]
            if cell not in cache:
                cache[cell] = coarsened.decode_cell(position, cell)
            row_cells.append(cache[cell])
        cells.append(tuple(row_cells))
    generalized = GeneralizedTable(
        table.schema, cells, list(table.sa_values), list(published.group_ids)
    )
    return PreprocessedResult(
        coarsened=coarsened,
        generalized=generalized,
        star_count=generalized.star_count(),
        l=l,
    )
