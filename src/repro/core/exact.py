"""Brute-force optimal l-diverse generalization for tiny tables.

Star minimization is NP-hard (Theorem 1), so this module simply enumerates
every partition of the rows into QI-groups, keeps the l-diverse ones, and
returns the best under the requested objective.  It is exponential (Bell
numbers) and guarded by a row-count cap; its purpose is to provide ground
truth for the unit and property tests that validate the approximation
guarantees of the TP algorithm (Theorems 2 and 3, Lemma 2).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Table
from repro.errors import IneligibleTableError

__all__ = ["ExactResult", "optimal_generalization", "optimal_star_count", "optimal_tuple_count"]

#: Default maximum table size accepted by the brute-force search.
DEFAULT_MAX_ROWS = 10


@dataclass(frozen=True)
class ExactResult:
    """An optimal l-diverse generalization found by exhaustive search."""

    table: Table
    l: int
    partition: Partition
    generalized: GeneralizedTable
    star_count: int
    suppressed_tuple_count: int


def _set_partitions(items: list[int]) -> Iterator[list[list[int]]]:
    """Enumerate all set partitions of ``items`` (standard recursive scheme)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in _set_partitions(rest):
        # Put ``first`` into each existing block...
        for index in range(len(partial)):
            yield partial[:index] + [[first] + partial[index]] + partial[index + 1:]
        # ...or into a new block of its own.
        yield [[first]] + partial


def _block_is_eligible(table: Table, block: list[int], l: int) -> bool:
    counts = Counter(table.sa_value(row) for row in block)
    return max(counts.values()) * l <= len(block)


def _block_cost(table: Table, block: list[int]) -> tuple[int, int]:
    """(stars, suppressed tuples) contributed by one QI-group."""
    dimension = table.dimension
    starred_attributes = 0
    first = table.qi_row(block[0])
    for position in range(dimension):
        value = first[position]
        if any(table.qi_row(row)[position] != value for row in block[1:]):
            starred_attributes += 1
    stars = starred_attributes * len(block)
    suppressed = len(block) if starred_attributes else 0
    return stars, suppressed


def optimal_generalization(
    table: Table,
    l: int,
    objective: str = "stars",
    max_rows: int = DEFAULT_MAX_ROWS,
) -> ExactResult:
    """Exhaustively find an optimal l-diverse generalization.

    Parameters
    ----------
    table:
        The microdata (at most ``max_rows`` rows).
    l:
        The diversity parameter.
    objective:
        ``"stars"`` for Problem 1 (star minimization) or ``"tuples"`` for
        Problem 2 (tuple minimization).
    max_rows:
        Safety cap; enumeration is exponential in the number of rows.
    """
    if objective not in ("stars", "tuples"):
        raise ValueError(f"objective must be 'stars' or 'tuples', got {objective!r}")
    if len(table) > max_rows:
        raise ValueError(
            f"brute-force search limited to {max_rows} rows, table has {len(table)}"
        )
    if not table.is_l_eligible(l):
        raise IneligibleTableError(f"table is not {l}-eligible; no l-diverse generalization exists")

    best_blocks: list[list[int]] | None = None
    best_key: int | None = None
    best_costs = (0, 0)
    rows = list(range(len(table)))
    for blocks in _set_partitions(rows):
        if not all(_block_is_eligible(table, block, l) for block in blocks):
            continue
        stars = 0
        suppressed = 0
        for block in blocks:
            block_stars, block_suppressed = _block_cost(table, block)
            stars += block_stars
            suppressed += block_suppressed
        key = stars if objective == "stars" else suppressed
        if best_key is None or key < best_key:
            best_key = key
            best_blocks = [list(block) for block in blocks]
            best_costs = (stars, suppressed)

    assert best_blocks is not None  # the single-group partition is always l-diverse
    partition = Partition(best_blocks, len(table))
    generalized = GeneralizedTable.from_partition(table, partition)
    return ExactResult(
        table=table,
        l=l,
        partition=partition,
        generalized=generalized,
        star_count=best_costs[0],
        suppressed_tuple_count=best_costs[1],
    )


def optimal_star_count(table: Table, l: int, max_rows: int = DEFAULT_MAX_ROWS) -> int:
    """The minimum number of stars of any l-diverse generalization (Problem 1)."""
    return optimal_generalization(table, l, objective="stars", max_rows=max_rows).star_count


def optimal_tuple_count(table: Table, l: int, max_rows: int = DEFAULT_MAX_ROWS) -> int:
    """The minimum number of suppressed tuples of any l-diverse generalization (Problem 2)."""
    return optimal_generalization(
        table, l, objective="tuples", max_rows=max_rows
    ).suppressed_tuple_count
