"""l-eligibility and pillar primitives (Definition 2, Section 5.2).

A multiset ``S`` of tuples is *l-eligible* when at most ``|S| / l`` of them
share a sensitive value, i.e. ``l * h(S) <= |S|`` where ``h(S)`` is the
*pillar height* — the multiplicity of the most frequent sensitive value.  The
sensitive values attaining that multiplicity are the *pillars*.

These functions operate on plain ``Mapping[int, int]`` histograms so they can
be used both on raw tables and on intermediate algorithm state, and they are
the single source of truth the rest of the package (and the hypothesis
property tests) rely on.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

__all__ = [
    "pillar_height",
    "pillars",
    "is_l_eligible",
    "is_l_eligible_counts",
    "eligibility_gap",
    "merge_counts",
]


def pillar_height(counts: Mapping[int, int]) -> int:
    """The multiplicity ``h(S)`` of the most frequent sensitive value (0 if empty)."""
    return max(counts.values(), default=0)


def pillars(counts: Mapping[int, int]) -> set[int]:
    """The sensitive values whose multiplicity equals the pillar height."""
    height = pillar_height(counts)
    if height == 0:
        return set()
    return {value for value, count in counts.items() if count == height}


def is_l_eligible_counts(size: int, height: int, l: int) -> bool:
    """l-eligibility from a (size, pillar height) pair: ``l * h <= |S|``."""
    if l < 1:
        raise ValueError(f"l must be >= 1, got {l}")
    return l * height <= size


def is_l_eligible(counts: Mapping[int, int], l: int) -> bool:
    """Whether the multiset described by ``counts`` is l-eligible (Definition 2)."""
    size = sum(counts.values())
    return is_l_eligible_counts(size, pillar_height(counts), l)


def eligibility_gap(counts: Mapping[int, int], l: int) -> int:
    """The gap ``Delta(S) = l * h(S) - |S|`` used in the phase-three analysis (Lemma 9).

    Positive values mean the set is not yet l-eligible; zero or negative
    values mean it is.
    """
    if l < 1:
        raise ValueError(f"l must be >= 1, got {l}")
    return l * pillar_height(counts) - sum(counts.values())


def merge_counts(histograms: Iterable[Mapping[int, int]]) -> Counter[int]:
    """Union of multisets (used to verify Lemma 1 monotonicity in tests)."""
    merged: Counter[int] = Counter()
    for histogram in histograms:
        merged.update(histogram)
    return merged
