"""Phase three of the three-phase algorithm (Section 5.4).

Phase three is the "overhaul": it raises both ``|R|`` and ``h(R)``, but in a
controlled way so that ``|R|`` grows at least ``l`` times faster and the gap
``l * h(R) - |R|`` closes (Lemma 9).  Each round has two steps:

1. Using the greedy SET-COVER heuristic, select a subset of QI-groups whose
   *non*-conflicting pillars cover all current pillars of ``R``; remove one
   tuple from each pillar of every selected group.
2. Re-kill every group that became alive: fat groups shed tuples whose
   sensitive value is not a pillar of ``R``; thin non-conflicting groups shed
   one tuple per pillar.

The round repeats until ``R`` is l-eligible.  The algorithm terminates the
moment eligibility is reached, possibly mid-step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import AlgorithmState
from repro.errors import AlgorithmInvariantError

__all__ = ["PhaseThreeReport", "run_phase_three"]


@dataclass(frozen=True)
class PhaseThreeReport:
    """Outcome of phase three."""

    #: Number of rounds executed (Lemma 9 bounds this by ``h(R..)``).
    rounds: int
    #: Number of tuples moved to the residue set during this phase.
    moved: int


class _Progress:
    """Mutable move counter shared by the helpers of a phase-three run."""

    __slots__ = ("moved",)

    def __init__(self) -> None:
        self.moved = 0

    def record(self) -> None:
        self.moved += 1


def run_phase_three(state: AlgorithmState) -> PhaseThreeReport:
    """Run greedy-cover rounds until the residue set is l-eligible."""
    progress = _Progress()
    rounds = 0
    while not state.residue_is_eligible():
        rounds += 1
        moved_before = progress.moved
        _run_round(state, progress)
        if not state.residue_is_eligible() and progress.moved == moved_before:
            raise AlgorithmInvariantError(
                "phase three made no progress in a round; this contradicts "
                "Lemma 7 and indicates an implementation bug or an ineligible table"
            )
    return PhaseThreeReport(rounds=rounds, moved=progress.moved)


def _run_round(state: AlgorithmState, progress: _Progress) -> None:
    """One round of phase three.  Stops early when ``R`` becomes eligible."""
    # ----------------------------------------------------------- step one
    # "Remove one tuple from each pillar" is an atomic batch: interrupting it
    # half-way would leave the group ineligible, so eligibility of R is only
    # checked between batches (this is also how Lemma 6 / Theorem 3 account
    # for the final overshoot of at most l - 1 tuples).
    selected = _greedy_cover(state)
    for group_id in selected:
        for pillar in sorted(state.group_pillars_view(group_id)):
            state.move_to_residue(group_id, pillar)
            progress.record()
        if state.residue_is_eligible():
            return

    # ----------------------------------------------------------- step two
    # Removing tuples for one group can change the pillar set of R and wake
    # other groups up, so sweep until a full pass leaves every group dead.
    while True:
        progressed = False
        for group_id in range(state.group_count):
            moved_here = _kill_group(state, group_id, progress)
            if state.residue_is_eligible():
                return
            progressed = progressed or moved_here > 0
        if not progressed:
            return


def _greedy_cover(state: AlgorithmState) -> list[int]:
    """Greedy SET COVER over the pillars of ``R`` (step one of a round).

    ``C(Q)`` — the conflicting pillars of ``Q`` — plays the role of the
    *complement* of the set contributed by ``Q``: selecting ``Q`` covers the
    pillars of ``R`` that are **not** pillars of ``Q``.  Following the paper,
    we repeatedly pick the group minimising ``|C(Q) ∩ P|`` and shrink ``P``
    to that intersection until ``P`` is empty.  Lemma 7 guarantees progress.
    """
    pending = state.residue.pillars()
    selected: list[int] = []
    selected_set: set[int] = set()
    sizes = state.group_sizes_array()
    if sizes is not None:
        return _greedy_cover_vectorized(state, pending, sizes)
    candidates = [
        group_id
        for group_id in range(state.group_count)
        if state.group_size(group_id) > 0
    ]
    while pending:
        best_group = None
        best_overlap: set[int] | None = None
        for group_id in candidates:
            if group_id in selected_set:
                continue
            overlap = state.group_pillars_view(group_id) & pending
            if best_overlap is None or len(overlap) < len(best_overlap):
                best_group = group_id
                best_overlap = overlap
                if not overlap:
                    break
        if best_group is None or best_overlap is None or len(best_overlap) == len(pending):
            raise AlgorithmInvariantError(
                "greedy cover cannot make progress over the pillars of R; "
                "Lemma 7 rules this out for l-eligible microdata"
            )
        selected.append(best_group)
        selected_set.add(best_group)
        pending = best_overlap
    return selected


def _greedy_cover_vectorized(
    state: AlgorithmState, pending: set[int], sizes: np.ndarray
) -> list[int]:
    """The same greedy cover as one kernel pass + argmin per iteration.

    The reference loop scans candidates in ascending group id and keeps the
    first group whose overlap is *strictly* smaller than the best so far —
    i.e. the first group attaining the minimum.  ``np.argmin`` returns the
    first occurrence of the minimum over the same ascending order, so the
    selection (and hence every downstream tuple move) is bit-identical; the
    early break on an empty overlap is subsumed because an empty overlap is
    the global minimum.  Excluded groups (empty, or already selected) are
    masked with an overlap count above ``len(pending)``.
    """
    selected: list[int] = []
    excluded = sizes == 0
    while pending:
        overlaps = state.pillar_overlap_counts(pending)
        blocked = len(pending) + 1
        overlaps[excluded] = blocked
        best_group = int(np.argmin(overlaps))
        best_count = int(overlaps[best_group])
        if best_count >= len(pending):
            raise AlgorithmInvariantError(
                "greedy cover cannot make progress over the pillars of R; "
                "Lemma 7 rules this out for l-eligible microdata"
            )
        selected.append(best_group)
        excluded[best_group] = True
        pending = set(state.group_pillars_view(best_group)) & pending
    return selected


def _kill_group(state: AlgorithmState, group_id: int, progress: _Progress) -> int:
    """Step two of a round: shed tuples from one group until it is dead.

    Returns the number of tuples moved; stops immediately if ``R`` becomes
    l-eligible.
    """
    l = state.l
    moved = 0
    # All reads go through the state's lazy-fast queries so the sweep never
    # materializes groups it only inspects; the moves themselves materialize.
    while not state.group_is_dead(group_id):
        if state.group_is_fat(group_id):
            value = _cheapest_non_pillar_value(state, group_id)
            state.move_to_residue(group_id, value)
            progress.record()
            moved += 1
            if state.residue_is_eligible():
                return moved
        else:
            # Thin.  If it conflicted with R it would be dead and the loop
            # guard would have caught it, so it is non-conflicting: shed one
            # tuple from each pillar (an atomic batch — see _run_round; the
            # sorted() copy also shields the iteration from the moves below).
            for pillar in sorted(state.group_pillars_view(group_id)):
                state.move_to_residue(group_id, pillar)
                progress.record()
                moved += 1
            if state.residue_is_eligible():
                return moved
    return moved


def _cheapest_non_pillar_value(state: AlgorithmState, group_id: int) -> int:
    """A sensitive value of the group that is not a pillar of ``R``.

    Such a value always exists while the algorithm is running: the group is
    l-eligible and non-empty, hence holds at least ``l`` distinct sensitive
    values, while ``R`` (not yet l-eligible) has at most ``l - 1`` pillars.
    Among the candidates we pick the one least frequent in ``R`` so that the
    removal also narrows future gaps, breaking ties by sensitive code.
    """
    residue_pillars = state.residue.pillars_view()
    best: tuple[int, int] | None = None
    for value in state.group_values_iter(group_id):
        if value in residue_pillars:
            continue
        key = (state.residue.count(value), value)
        if best is None or key < best:
            best = key
    if best is None:
        raise AlgorithmInvariantError(
            "fat group has no sensitive value outside the pillars of R; "
            "this contradicts l-eligibility of the group"
        )
    return best[1]
