"""Exact optimal 2-diversity for binary sensitive attributes (Section 4).

When the microdata has only ``m = 2`` distinct sensitive values, the only
useful diversity parameter is ``l = 2`` and star minimization is solvable in
polynomial time: there is an optimal 2-diverse generalization in which every
QI-group holds exactly one tuple of each sensitive value, and finding it is a
minimum-weight perfect matching between the two sides.  The edge weight of a
pair is the number of stars required to generalize the two tuples into the
same form, i.e. two stars per QI attribute on which they differ.

This module is both a standalone algorithm (usable whenever ``m = 2``) and a
ground-truth oracle in the tests of the TP algorithm's quality guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Table
from repro.errors import IneligibleTableError

__all__ = ["MatchingResult", "optimal_two_diverse", "pair_star_cost"]


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of :func:`optimal_two_diverse`."""

    table: Table
    partition: Partition
    generalized: GeneralizedTable
    #: The provably minimum number of stars of any 2-diverse generalization.
    star_count: int


def pair_star_cost(table: Table, first: int, second: int) -> int:
    """Stars needed to put rows ``first`` and ``second`` into one QI-group.

    Every QI attribute on which the rows differ must be suppressed in both
    rows, hence contributes two stars.
    """
    row_a = table.qi_row(first)
    row_b = table.qi_row(second)
    return 2 * sum(1 for a, b in zip(row_a, row_b) if a != b)


def optimal_two_diverse(table: Table) -> MatchingResult:
    """Optimal 2-diverse suppression for a table with exactly two SA values.

    Raises
    ------
    IneligibleTableError
        If the table has more or fewer than two distinct sensitive values, or
        the two values do not each cover exactly half of the rows (in which
        case the table is not 2-eligible and no 2-diverse generalization
        exists).
    """
    counts = table.sa_counts()
    if len(counts) != 2:
        raise IneligibleTableError(
            f"optimal_two_diverse requires exactly 2 distinct sensitive values, "
            f"found {len(counts)}"
        )
    (value_a, count_a), (value_b, count_b) = sorted(counts.items())
    if count_a != count_b:
        raise IneligibleTableError(
            "table is not 2-eligible: the two sensitive values must each cover "
            f"half of the rows, found {count_a} and {count_b}"
        )

    side_a = [row for row in range(len(table)) if table.sa_value(row) == value_a]
    side_b = [row for row in range(len(table)) if table.sa_value(row) == value_b]

    cost = np.zeros((len(side_a), len(side_b)), dtype=np.int64)
    for i, row_a in enumerate(side_a):
        qi_a = table.qi_row(row_a)
        for j, row_b in enumerate(side_b):
            qi_b = table.qi_row(row_b)
            cost[i, j] = sum(1 for a, b in zip(qi_a, qi_b) if a != b)
    assignment_rows, assignment_cols = linear_sum_assignment(cost)

    groups = [
        [side_a[i], side_b[j]] for i, j in zip(assignment_rows, assignment_cols)
    ]
    partition = Partition(groups, len(table))
    generalized = GeneralizedTable.from_partition(table, partition)
    return MatchingResult(
        table=table,
        partition=partition,
        generalized=generalized,
        star_count=generalized.star_count(),
    )
