"""The three-phase algorithm ``TP`` (Section 5): driver and public API.

``TP`` solves *tuple minimization* (Problem 2) with approximation ratio ``l``
(Theorem 3); by Lemma 2 the resulting suppression is an ``(l * d)``
approximation for *star minimization* (Problem 1).  The three phases
successively introduce error:

* termination after phase one is **optimal** for tuple minimization
  (Corollary 1), hence a ``d``-approximation for stars;
* termination during phase two adds at most ``l - 1`` tuples (Corollary 3);
* phase three guarantees the multiplicative factor ``l`` (Theorem 3).

The public entry point is :func:`anonymize`, which returns both the
suppression-based generalized table and detailed statistics (phase reached,
tuples removed per phase, lower bounds) used by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import profiling
from repro.backend import vectorized_enabled
from repro.core.groups import GroupState
from repro.core.phase1 import PhaseOneReport, run_phase_one
from repro.core.phase2 import PhaseTwoReport, run_phase_two
from repro.core.phase3 import PhaseThreeReport, run_phase_three
from repro.core.state import AlgorithmState, StateFactory
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Table

__all__ = ["ThreePhaseStats", "ThreePhaseResult", "anonymize", "run_state"]


@dataclass(frozen=True)
class ThreePhaseStats:
    """Execution statistics of a TP run."""

    l: int
    #: 1, 2 or 3: the phase in which the algorithm terminated.
    phase_reached: int
    #: Number of initial QI-groups ``s``.
    initial_group_count: int
    #: Tuples moved to the residue in each phase.
    phase1_moved: int
    phase2_moved: int
    phase3_moved: int
    #: Iterations of phase two and rounds of phase three.
    phase2_iterations: int
    phase3_rounds: int
    #: ``h(R.)`` at the end of phase one, driving the Corollary 2 lower bound.
    residue_height_after_phase1: int
    #: ``|R.|`` at the end of phase one.
    residue_size_after_phase1: int
    #: Final ``|R|``: the tuple-minimization objective value achieved.
    removed_tuples: int

    @property
    def tuple_lower_bound(self) -> int:
        """A lower bound on OPT for tuple minimization.

        Combines Corollary 1 (``OPT >= |R.|``) and Corollary 2
        (``OPT >= l * h(R.)``).
        """
        return max(self.residue_size_after_phase1, self.l * self.residue_height_after_phase1)

    @property
    def empirical_tuple_ratio(self) -> float:
        """``|R| / lower bound`` — an upper estimate of the achieved ratio.

        Returns 1.0 when nothing was removed (the bound and the objective are
        both zero).
        """
        if self.removed_tuples == 0:
            return 1.0
        bound = self.tuple_lower_bound
        return self.removed_tuples / bound if bound else float("inf")


@dataclass(frozen=True)
class ThreePhaseResult:
    """Full outcome of :func:`anonymize`."""

    table: Table
    l: int
    #: The partition defining the published generalization: every untouched
    #: QI-group plus (when non-empty) the residue set as one final QI-group.
    partition: Partition
    #: The suppression-based generalization (Definition 1) of ``partition``.
    generalized: GeneralizedTable
    #: Row indices of the suppressed tuples (the residue set ``R``).
    residue_rows: list[int]
    stats: ThreePhaseStats

    @property
    def star_count(self) -> int:
        """Number of stars in the published table (Problem 1 objective)."""
        return self.generalized.star_count()

    @property
    def suppressed_tuple_count(self) -> int:
        """Number of suppressed tuples (Problem 2 objective)."""
        return self.generalized.suppressed_tuple_count()


def run_state(
    table: Table,
    l: int,
    state_factory: StateFactory = GroupState,
) -> tuple[AlgorithmState, ThreePhaseStats]:
    """Run the three phases and return the raw algorithm state plus stats.

    This is the building block shared by :func:`anonymize` and the TP+ hybrid
    (:mod:`repro.core.hybrid`), which post-processes the residue set instead
    of publishing it as a single QI-group.
    """
    # Touch the table-level grouping before the state-init stage so its cost
    # is attributed to ``encode`` identically on both backends (the reference
    # path historically folded the grouping into state-init, reporting
    # encode: 0.0).  Both calls are cached on the table, so the work is never
    # repeated inside AlgorithmState.
    if vectorized_enabled() and len(table) > 0:
        table.grouping()
    else:
        table.group_by_qi()
    with profiling.profile_stage("state-init"):
        state = AlgorithmState(table, l, state_factory=state_factory)

    with profiling.profile_stage("phase1"):
        phase1: PhaseOneReport = run_phase_one(state)
    phase2: PhaseTwoReport | None = None
    phase3: PhaseThreeReport | None = None

    if phase1.satisfied:
        phase_reached = 1
    else:
        with profiling.profile_stage("phase2"):
            phase2 = run_phase_two(state)
        if phase2.satisfied:
            phase_reached = 2
        else:
            with profiling.profile_stage("phase3"):
                phase3 = run_phase_three(state)
            phase_reached = 3

    stats = ThreePhaseStats(
        l=l,
        phase_reached=phase_reached,
        initial_group_count=state.group_count,
        phase1_moved=phase1.moved,
        phase2_moved=phase2.moved if phase2 else 0,
        phase3_moved=phase3.moved if phase3 else 0,
        phase2_iterations=phase2.iterations if phase2 else 0,
        phase3_rounds=phase3.rounds if phase3 else 0,
        residue_height_after_phase1=phase1.residue_height,
        residue_size_after_phase1=phase1.residue_size,
        removed_tuples=state.removed_tuple_count(),
    )
    return state, stats


def anonymize(
    table: Table,
    l: int,
    state_factory: StateFactory = GroupState,
) -> ThreePhaseResult:
    """Compute an l-diverse suppression of ``table`` with the TP algorithm.

    Parameters
    ----------
    table:
        The microdata.  Must be l-eligible (otherwise
        :class:`~repro.errors.IneligibleTableError` is raised, because no
        l-diverse generalization exists at all).
    l:
        The diversity parameter (``l >= 2``).
    state_factory:
        Group-state implementation; overridden only by the ablation benchmark.

    Returns
    -------
    ThreePhaseResult
        The generalized table, the partition that produced it, the suppressed
        rows and per-phase statistics.
    """
    state, stats = run_state(table, l, state_factory=state_factory)
    with profiling.profile_stage("publish"):
        # Untouched groups come back as zero-copy spans of the state's sort
        # order; Partition normalizes them to lists only if someone reads
        # the public ``groups`` property.
        groups = state.retained_group_arrays()
        residue = sorted(state.residue_rows())
        if residue:
            groups = groups + [residue]
        # Valid by construction: the retained groups and the residue partition
        # the row indices exactly, so skip the O(n) re-validation.
        partition = Partition.trusted(groups, len(table))
        generalized = GeneralizedTable.from_partition(table, partition)
    return ThreePhaseResult(
        table=table,
        l=l,
        partition=partition,
        generalized=generalized,
        residue_rows=residue,
        stats=stats,
    )
