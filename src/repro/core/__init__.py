"""The paper's primary contribution: the three-phase l-diversity algorithm.

Modules
-------

``eligibility``
    l-eligibility and pillar primitives (Definition 2 and Section 5.2).
``groups``
    Multiset state of a QI-group / residue set with O(1) pillar maintenance,
    the Python counterpart of the inverted lists of Section 5.5.
``state``
    The joint algorithm state: all QI-groups plus the residue set ``R``.
``phase1`` / ``phase2`` / ``phase3``
    The three phases of Section 5.
``three_phase``
    The TP driver: runs the phases, assembles the partition, reports stats.
``hybrid``
    TP+: TP followed by heuristic refinement of the residue set.
``matching``
    Exact optimum for ``l = 2`` via minimum-weight perfect matching (Section 4).
``exact``
    Brute-force optimal star/tuple minimization for tiny tables (testing aid).
``bounds``
    Lower bounds and approximation-ratio certificates (Corollary 2, Lemma 2).
"""

from repro.core import bounds, eligibility, exact, hybrid, matching, three_phase

__all__ = ["bounds", "eligibility", "exact", "hybrid", "matching", "three_phase"]
