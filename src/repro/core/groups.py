"""Multiset state of a QI-group or of the residue set ``R``.

Section 5.5 of the paper maintains, for every QI-group ``Q_i`` and for the
residue set ``R``, an inverted-list array whose ``j``-th entry holds the
sensitive values occurring exactly ``j`` times, together with a pointer to
the highest non-empty entry (the pillars).  :class:`GroupState` is the Python
counterpart: additions and removals cost O(1) amortised, and the pillar
height / pillar set are available in O(1).

:class:`NaiveGroupState` implements the same interface by recomputing the
maximum on demand.  It exists solely for the ablation benchmark that
quantifies what the inverted lists buy (``benchmarks/bench_ablation_inverted_lists.py``)
and as an oracle in the property tests.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.core.eligibility import is_l_eligible_counts

__all__ = ["GroupState", "NaiveGroupState"]

#: Shared empty pillar set returned by the non-copying views.
_EMPTY_PILLARS: frozenset[int] = frozenset()


class GroupState:
    """A multiset of (sensitive value, row index) pairs with pillar tracking.

    The same class serves QI-groups (which only ever lose tuples during the
    algorithm) and the residue set ``R`` (which only ever gains tuples), so
    both directions of update are supported.
    """

    __slots__ = ("_counts", "_rows", "_buckets", "_height", "_size")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._rows: dict[int, list[int]] = {}
        # ``None`` means "not materialized yet": bulk construction defers the
        # count -> values inversion until the first update or pillar read,
        # because most QI-groups are born l-eligible and never touched.
        self._buckets: dict[int, set[int]] | None = {}
        self._height = 0
        self._size = 0

    def _materialize_buckets(self) -> None:
        buckets: dict[int, set[int]] = {}
        for value, count in self._counts.items():
            bucket = buckets.get(count)
            if bucket is None:
                buckets[count] = {value}
            else:
                bucket.add(value)
        self._buckets = buckets

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "GroupState":
        """Build a state from ``(sensitive value, row index)`` pairs."""
        state = cls()
        for value, row in pairs:
            state.add(value, row)
        return state

    def bulk_load(self, runs: Iterable[tuple[int, list[int]]]) -> None:
        """Load pre-grouped ``(value, rows)`` runs into an *empty* state.

        Equivalent to calling :meth:`add` once per row but with O(1) dict
        work per distinct value instead of per tuple; the vectorized
        :class:`~repro.core.state.AlgorithmState` initialization produces the
        runs with one lexicographic sort.  Each value must appear in at most
        one run and the state must be empty; the rows list is adopted as-is
        (rows ascending matches the order repeated :meth:`add` would build).
        """
        if self._size:
            raise ValueError("bulk_load requires an empty state")
        counts = self._counts
        rows = self._rows
        height = 0
        size = 0
        for value, value_rows in runs:
            count = len(value_rows)
            if count == 0:
                continue
            counts[value] = count
            rows[value] = value_rows
            if count > height:
                height = count
            size += count
        self._height = height
        self._size = size
        self._buckets = None  # materialized on first update / pillar read

    def bulk_append(self, runs: Iterable[tuple[int, list[int]]]) -> None:
        """Merge pre-grouped ``(value, rows)`` runs into a possibly non-empty state.

        Equivalent to calling :meth:`add` once per row, but with O(1) dict
        work per run and no bucket churn: the inverted lists are invalidated
        wholesale and re-materialized on the next update or pillar read.
        The fused phase-one kernel uses this to pour a whole group's shaved
        tuples into the residue set at once.  A value may appear both in the
        state and in a run (rows are appended); height and size are kept
        exact.
        """
        counts = self._counts
        rows = self._rows
        height = self._height
        size = self._size
        for value, value_rows in runs:
            added = len(value_rows)
            if added == 0:
                continue
            new = counts.get(value, 0) + added
            counts[value] = new
            existing = rows.get(value)
            if existing is None:
                rows[value] = list(value_rows)
            else:
                existing.extend(value_rows)
            if new > height:
                height = new
            size += added
        self._height = height
        self._size = size
        self._buckets = None  # materialized on first update / pillar read

    # ----------------------------------------------------------------- reads

    @property
    def size(self) -> int:
        """Number of tuples currently in the multiset (``|Q|`` or ``|R|``)."""
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """The pillar height ``h(Q)`` (0 when empty)."""
        return self._height

    def count(self, value: int) -> int:
        """The multiplicity ``h(Q, v)`` of sensitive value ``value``."""
        return self._counts.get(value, 0)

    def pillars(self) -> set[int]:
        """The set of pillar sensitive values (a copy; safe to mutate)."""
        if self._height == 0:
            return set()
        if self._buckets is None:
            self._materialize_buckets()
        return set(self._buckets[self._height])

    def pillars_view(self) -> frozenset[int] | set[int]:
        """The pillar set *without* copying — strictly read-only.

        The phases call this in their inner loops (liveness checks, greedy
        cover, conflict tests), where the per-call copy made by
        :meth:`pillars` dominated the cost.  Callers must not mutate the
        result and must not hold it across an :meth:`add`/:meth:`remove_one`.
        """
        if self._height == 0:
            return _EMPTY_PILLARS
        if self._buckets is None:
            self._materialize_buckets()
        return self._buckets[self._height]

    def values_present(self) -> list[int]:
        """Sensitive values with non-zero multiplicity, in ascending order."""
        return sorted(self._counts)

    def values_view(self):
        """Sensitive values with non-zero multiplicity, unordered, no copy.

        A dict-keys view: read-only, invalidated by updates.  Used by the
        phases wherever the selection is order-independent (min-by-key
        scans, seeding sets), avoiding the per-call sort of
        :meth:`values_present`.
        """
        return self._counts.keys()

    def distinct_value_count(self) -> int:
        return len(self._counts)

    def counts(self) -> Counter[int]:
        """A copy of the histogram ``{v: h(Q, v)}``."""
        return Counter(self._counts)

    def rows(self) -> list[int]:
        """All row indices currently in the multiset (unordered)."""
        collected: list[int] = []
        for rows in self._rows.values():
            collected.extend(rows)
        return collected

    def iter_rows(self) -> Iterable[int]:
        """Iterate over the row indices without building a list.

        Read-only and invalidated by updates, like :meth:`values_view`.
        """
        for rows in self._rows.values():
            yield from rows

    def rows_of(self, value: int) -> list[int]:
        """Row indices carrying sensitive value ``value`` (a copy)."""
        return list(self._rows.get(value, ()))

    # ------------------------------------------------------------ eligibility

    def is_l_eligible(self, l: int) -> bool:
        """Definition 2: at most ``|Q| / l`` tuples share a sensitive value."""
        return is_l_eligible_counts(self._size, self._height, l)

    def is_thin(self, l: int) -> bool:
        """Section 5.3: l-eligible with ``|Q| = l * h(Q)`` exactly."""
        return self._size == l * self._height

    def is_fat(self, l: int) -> bool:
        """Section 5.3: l-eligible with at least one tuple of slack."""
        return self._size >= l * self._height + 1

    # ---------------------------------------------------------------- updates

    def add(self, value: int, row: int) -> None:
        """Insert one tuple with sensitive value ``value`` and row index ``row``."""
        if self._buckets is None:
            self._materialize_buckets()
        old = self._counts.get(value, 0)
        new = old + 1
        if old > 0:
            bucket = self._buckets[old]
            bucket.discard(value)
            if not bucket:
                del self._buckets[old]
        self._buckets.setdefault(new, set()).add(value)
        self._counts[value] = new
        self._rows.setdefault(value, []).append(row)
        self._size += 1
        if new > self._height:
            self._height = new

    def remove_one(self, value: int) -> int:
        """Remove one tuple with sensitive value ``value`` and return its row index.

        Raises
        ------
        KeyError
            If no tuple with that sensitive value is present.
        """
        old = self._counts.get(value, 0)
        if old == 0:
            raise KeyError(f"sensitive value {value} not present")
        if self._buckets is None:
            self._materialize_buckets()
        new = old - 1
        bucket = self._buckets[old]
        bucket.discard(value)
        if not bucket:
            del self._buckets[old]
        if new > 0:
            self._buckets.setdefault(new, set()).add(value)
            self._counts[value] = new
        else:
            del self._counts[value]
        row = self._rows[value].pop()
        if not self._rows[value]:
            del self._rows[value]
        self._size -= 1
        if old == self._height and old not in self._buckets:
            # The pillar pointer only ever travels downwards for QI-groups, so
            # this loop costs O(1) amortised over the whole algorithm.
            height = self._height
            while height > 0 and height not in self._buckets:
                height -= 1
            self._height = height
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupState(size={self._size}, height={self._height}, counts={dict(sorted(self._counts.items()))})"


class NaiveGroupState:
    """Reference implementation without bucket maintenance (ablation / oracle).

    Same interface as :class:`GroupState`; ``height`` and ``pillars`` scan the
    histogram on every call.
    """

    __slots__ = ("_counts", "_rows", "_size")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._rows: dict[int, list[int]] = {}
        self._size = 0

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "NaiveGroupState":
        state = cls()
        for value, row in pairs:
            state.add(value, row)
        return state

    def bulk_load(self, runs: Iterable[tuple[int, list[int]]]) -> None:
        if self._size:
            raise ValueError("bulk_load requires an empty state")
        for value, value_rows in runs:
            if not value_rows:
                continue
            self._counts[value] = len(value_rows)
            self._rows[value] = value_rows
            self._size += len(value_rows)

    @property
    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return max(self._counts.values(), default=0)

    def count(self, value: int) -> int:
        return self._counts.get(value, 0)

    def pillars(self) -> set[int]:
        height = self.height
        if height == 0:
            return set()
        return {value for value, count in self._counts.items() if count == height}

    def pillars_view(self) -> set[int] | frozenset[int]:
        # No stored pillar set to expose: recompute (the point of this class
        # is to pay the scan on every read).
        return self.pillars() or _EMPTY_PILLARS

    def values_present(self) -> list[int]:
        return sorted(self._counts)

    def values_view(self):
        return self._counts.keys()

    def distinct_value_count(self) -> int:
        return len(self._counts)

    def counts(self) -> Counter[int]:
        return Counter(self._counts)

    def rows(self) -> list[int]:
        collected: list[int] = []
        for rows in self._rows.values():
            collected.extend(rows)
        return collected

    def iter_rows(self) -> Iterable[int]:
        for rows in self._rows.values():
            yield from rows

    def rows_of(self, value: int) -> list[int]:
        return list(self._rows.get(value, ()))

    def is_l_eligible(self, l: int) -> bool:
        return is_l_eligible_counts(self._size, self.height, l)

    def is_thin(self, l: int) -> bool:
        return self._size == l * self.height

    def is_fat(self, l: int) -> bool:
        return self._size >= l * self.height + 1

    def add(self, value: int, row: int) -> None:
        self._counts[value] = self._counts.get(value, 0) + 1
        self._rows.setdefault(value, []).append(row)
        self._size += 1

    def remove_one(self, value: int) -> int:
        if self._counts.get(value, 0) == 0:
            raise KeyError(f"sensitive value {value} not present")
        self._counts[value] -= 1
        if self._counts[value] == 0:
            del self._counts[value]
        row = self._rows[value].pop()
        if not self._rows[value]:
            del self._rows[value]
        self._size -= 1
        return row
