"""The shared grouping context: one (QI, SA) sort per table, many consumers.

PR 7's profiling showed the million-row pipeline paying for the same
lexicographic structure three times over: the run encoding sorted the table
for state-init, ``group_by_qi`` lexsorted the QI columns again, and the
KL/discernibility metrics ran their own ``np.unique`` passes.  A
:class:`GroupingContext` is that structure computed **once**: the stable
permutation sorting rows by ``(QI vector, SA code)``, the group/run
boundaries over it, and every derived per-group array the phases and metrics
need — all cached on the (immutable) table via :meth:`Table.grouping
<repro.dataset.table.Table.grouping>`.

The sort itself is the dominant cost, so it is engineered separately
(:func:`sort_qi_sa`): the ``d + 1`` lexsort keys are packed into one
mixed-radix int64 composite key (bit-identical ordering, radix-sort
friendly) and argsorted stably — chunked across the kernel thread pool
above :data:`~repro.core.kernels.PARALLEL_THRESHOLD` when the pool has real
parallelism.  Callers that already know the permutation (the ``order.npy``
sidecar of a :class:`~repro.engine.columnstore.ColumnStore`) pass it in and
skip the sort entirely; the ``sort`` profiling sub-stage is recorded only
when a sort actually ran, which is what the warm-start CI guard asserts.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import profiling
from repro.core import kernels

__all__ = ["GroupingContext", "sort_qi_sa"]


def sort_qi_sa(
    columns: np.ndarray,
    sa: np.ndarray,
    qi_sizes: Sequence[int],
    sa_size: int,
    keys: np.ndarray | None = None,
) -> np.ndarray:
    """The stable permutation sorting rows by ``(QI vector, SA code)``.

    Equivalent to ``np.lexsort((sa, columns[:, d-1], ..., columns[:, 0]))``
    — and bit-identical to it — but via one composite int64 key and a single
    packed value sort (:func:`~repro.core.kernels.stable_sort_pairs`):
    ~2.5x faster than the multi-key lexsort at 10^6 rows, and another ~5x
    on the sort itself when the packed words fit.  Falls back to the
    lexsort when the combined domains overflow 62 bits (no realistic
    census-style domain does).  A caller that already packed the composite keys passes them via
    ``keys`` (``None`` means "pack here").  The actual sort is wrapped in
    the ``sort`` profiling sub-stage so warm starts (a persisted
    permutation) are observable by its absence.
    """
    with profiling.profile_stage("sort"):
        if keys is None:
            keys = kernels.composite_codes(columns, sa, qi_sizes, sa_size)
        if keys is not None:
            order, _ = kernels.stable_sort_pairs(keys, _key_span(qi_sizes, sa_size))
            return order
        dimension = columns.shape[1]
        return np.lexsort(
            (sa,) + tuple(columns[:, position] for position in reversed(range(dimension)))
        )


def _key_span(qi_sizes: Sequence[int], sa_size: int) -> int:
    """Exclusive upper bound of the composite ``(QI, SA)`` key packing."""
    span = int(sa_size)
    for size in qi_sizes:
        span *= int(size)
    return span


class GroupingContext:
    """The run encoding of one table plus every derived array, shared.

    The five core arrays are exactly the historical
    :meth:`~repro.dataset.table.Table.qi_sa_runs_arrays` contract:

    * ``group_keys`` — ``(s, d)`` int32, the distinct QI vectors ascending;
    * ``group_run_bounds`` — ``(s + 1,)`` boundaries of each group's runs;
    * ``run_bounds`` — ``(r + 1,)`` row boundaries of the maximal constant
      ``(QI, SA)`` runs inside ``order``;
    * ``run_values`` — ``(r,)`` SA code per run;
    * ``order`` — ``(n,)`` stable permutation sorting rows by
      ``(QI vector, SA code)`` (row indices ascend within ties).

    Derived arrays (run lengths, per-group row bounds, sizes/heights, run
    group ids) are computed lazily and cached, so state-init, publish and
    the fused metrics all read the same objects instead of re-deriving
    them.  Everything is read-only by convention.
    """

    __slots__ = (
        "group_keys",
        "group_run_bounds",
        "run_bounds",
        "run_values",
        "order",
        "_run_lengths",
        "_group_row_bounds",
        "_sizes",
        "_heights",
        "_run_group_ids",
    )

    def __init__(
        self,
        group_keys: np.ndarray,
        group_run_bounds: np.ndarray,
        run_bounds: np.ndarray,
        run_values: np.ndarray,
        order: np.ndarray,
    ) -> None:
        self.group_keys = group_keys
        self.group_run_bounds = group_run_bounds
        self.run_bounds = run_bounds
        self.run_values = run_values
        self.order = order
        self._run_lengths: np.ndarray | None = None
        self._group_row_bounds: np.ndarray | None = None
        self._sizes: np.ndarray | None = None
        self._heights: np.ndarray | None = None
        self._run_group_ids: np.ndarray | None = None

    # ------------------------------------------------------------ construction

    @classmethod
    def build(
        cls,
        columns: np.ndarray,
        sa: np.ndarray,
        qi_sizes: Sequence[int],
        sa_size: int,
        order: np.ndarray | None = None,
    ) -> "GroupingContext":
        """Build the context from columnar codes, sorting unless ``order`` is given.

        A supplied ``order`` (the warm-start path) must be the stable
        ``(QI, SA)`` permutation of exactly these rows; only the boundary
        scan runs then, and no ``sort`` profiling stage is recorded.

        The boundary scan is key-derived when the composite packing fits
        62 bits (always, for census-style domains): the packed key is
        injective over ``(QI vector, SA code)``, so adjacent sorted keys
        differ exactly at run boundaries and their ``// sa_size`` quotients
        (the packed QI prefix) differ exactly at group boundaries.  That
        replaces the O(n·d) ``columns[order]`` gather-and-compare of the
        reference scan with one chunkable int64 gather plus O(n) compares —
        the QI vectors and SA codes are then gathered only at the ``s``
        group starts and ``r`` run starts.  Both the packing and the key
        gather run on the kernel pool above ``PARALLEL_THRESHOLD``
        (``encode-chunks`` profiling sub-stage); :meth:`build_reference` is
        the retained serial oracle.
        """
        n, dimension = columns.shape
        if n == 0:
            return cls(
                np.zeros((0, dimension), dtype=np.int32),
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.zeros(0, dtype=np.int32),
                np.zeros(0, dtype=np.intp),
            )
        with profiling.profile_stage("encode-chunks"):
            keys = kernels.composite_codes(columns, sa, qi_sizes, sa_size)
        if keys is None:
            if order is None:
                order = sort_qi_sa(columns, sa, qi_sizes, sa_size)
            else:
                order = np.asarray(order, dtype=np.intp)
            return cls._build_from_wide_scan(columns, sa, order)
        if order is None:
            with profiling.profile_stage("sort"):
                order, sorted_keys = kernels.stable_sort_pairs(
                    keys, _key_span(qi_sizes, sa_size)
                )
        else:
            order = np.asarray(order, dtype=np.intp)
            with profiling.profile_stage("encode-chunks"):
                sorted_keys = kernels.take(keys, order)
        if n == 1:
            new_group = np.zeros(0, dtype=bool)
            new_run = new_group
        else:
            new_run = sorted_keys[1:] != sorted_keys[:-1]
            qi_codes = sorted_keys // sa_size
            new_group = qi_codes[1:] != qi_codes[:-1]
        group_starts = np.concatenate(([0], np.flatnonzero(new_group) + 1))
        run_starts = np.concatenate(([0], np.flatnonzero(new_run) + 1))
        run_bounds = np.concatenate((run_starts, [n])).astype(np.int64)
        group_run_bounds = np.concatenate(
            (np.searchsorted(run_starts, group_starts), [run_starts.shape[0]])
        ).astype(np.int64)
        return cls(
            columns[order[group_starts]],
            group_run_bounds,
            run_bounds,
            sa[order[run_starts]],
            order,
        )

    @classmethod
    def _build_from_wide_scan(
        cls, columns: np.ndarray, sa: np.ndarray, order: np.ndarray
    ) -> "GroupingContext":
        """Boundary scan over the full gathered QI matrix (the serial path).

        Used when the composite packing overflows 62 bits, and as the body
        of :meth:`build_reference`.
        """
        n = columns.shape[0]
        ordered_columns = columns[order]
        ordered_sa = sa[order]
        if n == 1:
            new_group = np.zeros(0, dtype=bool)
        else:
            new_group = np.any(ordered_columns[1:] != ordered_columns[:-1], axis=1)
        new_run = new_group | (ordered_sa[1:] != ordered_sa[:-1])
        group_starts = np.concatenate(([0], np.flatnonzero(new_group) + 1))
        run_starts = np.concatenate(([0], np.flatnonzero(new_run) + 1))
        run_bounds = np.concatenate((run_starts, [n])).astype(np.int64)
        group_run_bounds = np.concatenate(
            (np.searchsorted(run_starts, group_starts), [run_starts.shape[0]])
        ).astype(np.int64)
        return cls(
            ordered_columns[group_starts],
            group_run_bounds,
            run_bounds,
            ordered_sa[run_starts],
            order,
        )

    @classmethod
    def build_reference(
        cls,
        columns: np.ndarray,
        sa: np.ndarray,
        qi_sizes: Sequence[int],
        sa_size: int,
        order: np.ndarray | None = None,
    ) -> "GroupingContext":
        """Oracle for :meth:`build`: the serial full-width boundary scan."""
        n, dimension = columns.shape
        if n == 0:
            return cls(
                np.zeros((0, dimension), dtype=np.int32),
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.zeros(0, dtype=np.int32),
                np.zeros(0, dtype=np.intp),
            )
        if order is None:
            order = sort_qi_sa(columns, sa, qi_sizes, sa_size)
        else:
            order = np.asarray(order, dtype=np.intp)
        return cls._build_from_wide_scan(columns, sa, order)

    # ----------------------------------------------------------------- basics

    @property
    def n(self) -> int:
        """Number of rows."""
        return self.order.shape[0]

    @property
    def group_count(self) -> int:
        """Number ``s`` of distinct QI vectors."""
        return self.group_keys.shape[0]

    @property
    def run_count(self) -> int:
        """Number ``r`` of maximal constant ``(QI, SA)`` runs."""
        return self.run_values.shape[0]

    def arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The five core arrays in the historical ``qi_sa_runs_arrays`` order."""
        return (
            self.group_keys,
            self.group_run_bounds,
            self.run_bounds,
            self.run_values,
            self.order,
        )

    # ------------------------------------------------------------ derivations

    @property
    def run_lengths(self) -> np.ndarray:
        """``(r,)`` length of every ``(QI, SA)`` run."""
        if self._run_lengths is None:
            self._run_lengths = np.diff(self.run_bounds)
        return self._run_lengths

    @property
    def group_row_bounds(self) -> np.ndarray:
        """``(s + 1,)`` row-span boundaries of each group inside ``order``."""
        if self._group_row_bounds is None:
            self._group_row_bounds = self.run_bounds[self.group_run_bounds]
        return self._group_row_bounds

    def group_sizes_heights(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-group tuple counts and pillar heights (one fused pass, cached)."""
        if self._sizes is None:
            self._sizes, self._heights = kernels.group_sizes_heights(
                self.run_lengths, self.group_run_bounds
            )
        return self._sizes, self._heights

    @property
    def run_group_ids(self) -> np.ndarray:
        """``(r,)`` group id of every run."""
        if self._run_group_ids is None:
            self._run_group_ids = np.repeat(
                np.arange(self.group_count, dtype=np.int64),
                np.diff(self.group_run_bounds),
            )
        return self._run_group_ids

    def group_by_qi(self) -> dict[tuple[int, ...], list[int]]:
        """``{QI vector: ascending row indices}`` derived without a second lexsort.

        The context's ``order`` sorts by ``(QI, SA)``, so within a group the
        rows are SA-ordered, not index-ordered.  Scattering each row's group
        id and stably argsorting that (a radix sort over ``s`` values)
        restores ascending row indices per group — the exact contract of the
        reference grouping — while reusing the boundaries already computed.
        Keys come out in ascending QI order, matching the historical
        vectorized grouping.
        """
        if self.n == 0:
            return {}
        bounds = self.group_row_bounds
        row_group = np.empty(self.n, dtype=np.int64)
        row_group[self.order] = np.repeat(
            np.arange(self.group_count, dtype=np.int64), np.diff(bounds)
        )
        by_group = kernels.stable_argsort(row_group)
        keys = self.group_keys.tolist()
        ordered = by_group.tolist()
        bounds_list = bounds.tolist()
        return {
            tuple(key): ordered[start:end]
            for key, start, end in zip(keys, bounds_list[:-1], bounds_list[1:])
        }
