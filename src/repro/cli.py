"""Command-line interface.

Five sub-commands:

``ldiversity anonymize``
    Anonymize a CSV file with one of the registered algorithms — optionally
    sharded over a process pool — and write the published table back to CSV
    (stars rendered as ``*``).
``ldiversity evaluate``
    Anonymize a CSV file with several algorithms and print the standard
    metrics side by side.
``ldiversity experiment``
    Re-run one of the paper's figures (or the phase-3 frequency census) at a
    chosen scale and print the resulting series.
``ldiversity algorithms`` / ``ldiversity metrics``
    List the registered algorithms / metrics with their capability metadata.

Every choice set is derived from a single source of truth — the engine's
registries for algorithms and metrics, :data:`repro.experiments.figures.FIGURES`
for experiments, :meth:`repro.experiments.config.ExperimentConfig.presets`
for scales — so the help text can never drift from what is implemented.
"""

from __future__ import annotations

import argparse
import csv
import sys
from collections.abc import Sequence

from repro.engine import CsvSource, Engine, RunPlan, algorithm_registry, metric_registry
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import format_records, record_from_report
from repro.text import format_fixed_width

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ldiversity",
        description="l-diversity anonymization (EDBT 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    anonymize = subparsers.add_parser("anonymize", help="anonymize a CSV file")
    _add_io_arguments(anonymize)
    anonymize.add_argument(
        "--algorithm",
        choices=sorted(algorithm_registry.names()),
        default="TP+",
        help="anonymization algorithm (default: TP+)",
    )
    anonymize.add_argument("--output", required=True, help="path of the published CSV")
    anonymize.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the table into N QI-prefix shards and merge the results (default: 1)",
    )
    anonymize.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for sharded runs (default: 1 = sequential)",
    )
    anonymize.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="stream the input CSV in chunks of this many rows",
    )

    evaluate = subparsers.add_parser("evaluate", help="compare algorithms on a CSV file")
    _add_io_arguments(evaluate)
    evaluate.add_argument(
        "--algorithms",
        default="TP,TP+,Hilbert",
        help="comma-separated list of algorithms (default: TP,TP+,Hilbert)",
    )
    evaluate.add_argument(
        "--kl", action="store_true", help="also compute the KL-divergence utility metric"
    )

    experiment = subparsers.add_parser("experiment", help="re-run one of the paper's figures")
    experiment.add_argument(
        "name",
        choices=sorted(figures.FIGURES) + ["phase3"],
        help="which experiment to run",
    )
    experiment.add_argument("--dataset", choices=["SAL", "OCC"], default="SAL")
    experiment.add_argument(
        "--scale", choices=sorted(ExperimentConfig.presets()), default="smoke"
    )
    experiment.add_argument(
        "--csv", default=None, help="also write the series to this CSV file"
    )

    subparsers.add_parser("algorithms", help="list the registered algorithms")
    subparsers.add_parser("metrics", help="list the registered metrics")
    return parser


def _add_io_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="input CSV file with a header row")
    parser.add_argument("--qi", required=True, help="comma-separated quasi-identifier columns")
    parser.add_argument("--sa", required=True, help="sensitive attribute column")
    parser.add_argument("--l", type=int, required=True, help="diversity parameter l (>= 2)")


def _csv_source(arguments: argparse.Namespace) -> CsvSource:
    qi_names = tuple(name.strip() for name in arguments.qi.split(",") if name.strip())
    return CsvSource(arguments.input, qi_names, arguments.sa)


def _command_anonymize(arguments: argparse.Namespace) -> int:
    report = Engine().run(
        RunPlan(
            source=_csv_source(arguments),
            algorithm=arguments.algorithm,
            l=arguments.l,
            shards=arguments.shards,
            workers=arguments.workers,
            chunk_rows=arguments.chunk_rows,
        )
    )
    generalized = report.generalized
    names = list(generalized.schema.qi_names) + [generalized.schema.sensitive.name]
    with open(arguments.output, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=names)
        writer.writeheader()
        for row in generalized.decoded_records():
            writer.writerow({name: _render(row[name]) for name in names})
    print(format_records([record_from_report(report, dataset=arguments.input)]))
    if len(report.shard_sizes) > 1:
        print(f"sharded over {len(report.shard_sizes)} shards: {list(report.shard_sizes)}")
    print(f"published table written to {arguments.output}")
    return 0


def _render(value: object) -> object:
    if isinstance(value, tuple):
        return "{" + "|".join(str(item) for item in value) + "}"
    return value


def _command_evaluate(arguments: argparse.Namespace) -> int:
    engine = Engine()
    table = _csv_source(arguments).load()
    names = [name.strip() for name in arguments.algorithms.split(",") if name.strip()]
    metrics = ("kl",) if arguments.kl else ()
    records = [
        record_from_report(
            engine.run_table(table, name, arguments.l, metrics=metrics),
            dataset=arguments.input,
        )
        for name in names
    ]
    print(format_records(records))
    return 0


def _command_experiment(arguments: argparse.Namespace) -> int:
    config = ExperimentConfig.presets()[arguments.scale]()
    if arguments.name == "phase3":
        result = figures.phase3_frequency(dataset=arguments.dataset, config=config)
        print(result.format())
        return 0
    figure = figures.FIGURES[arguments.name](dataset=arguments.dataset, config=config)
    print(figure.format())
    if arguments.csv:
        figure.to_csv(arguments.csv)
        print(f"series written to {arguments.csv}")
    return 0


def _command_algorithms() -> int:
    rows = [
        (
            info.name,
            info.complexity,
            info.approximation,
            "yes" if info.supports_sharding else "no",
            "yes" if info.deterministic else "no",
            info.description,
        )
        for info in algorithm_registry.entries()
    ]
    _print_table(
        ["algorithm", "complexity", "approximation", "sharding", "deterministic", "description"],
        rows,
    )
    return 0


def _command_metrics() -> int:
    rows = [
        (
            info.name,
            "table + published" if info.needs_source else "published",
            info.better,
            info.description,
        )
        for info in metric_registry.entries()
    ]
    _print_table(["metric", "inputs", "better", "description"], rows)
    return 0


def _print_table(headers: list[str], rows: list[tuple[str, ...]]) -> None:
    print(format_fixed_width(headers, rows))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "anonymize":
        return _command_anonymize(arguments)
    if arguments.command == "evaluate":
        return _command_evaluate(arguments)
    if arguments.command == "experiment":
        return _command_experiment(arguments)
    if arguments.command == "algorithms":
        return _command_algorithms()
    if arguments.command == "metrics":
        return _command_metrics()
    parser.error(f"unknown command {arguments.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
