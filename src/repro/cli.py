"""Command-line interface.

Sub-commands:

``ldiversity anonymize``
    Anonymize a CSV file with one of the registered algorithms and export
    the published table with a :class:`~repro.engine.sinks.CsvSink`.
    Shards / workers / backend left unspecified are chosen by the
    cost-based planner; runs are memoized in the workspace's persistent
    :class:`~repro.service.store.RunStore`, so repeating an invocation in a
    fresh process replays the stored result (``--no-store`` opts out).
    ``--stream`` switches to the bounded-memory CSV-to-CSV pipeline for
    inputs larger than RAM.
``ldiversity plan``
    Explain what the planner would choose for a workload (and why), without
    running it.
``ldiversity jobs submit / list / show / cancel``
    Run through the job service, which appends an auditable lifecycle record
    of every submission to the workspace ledger; ``cancel`` moves a
    queued/running job (e.g. left behind by a crashed server) to
    ``cancelled``.
``ldiversity serve``
    Boot the asyncio anonymization server (:mod:`repro.server`) on a host /
    port with a bounded worker pool, queue-depth backpressure and optional
    per-client rate limiting.
``ldiversity verify``
    Independently check any published CSV with the streaming verifier (exit
    code 1 on a violation).  ``--privacy`` selects the model — including the
    check-only t-closeness — so files can be audited against entropy /
    recursive (c,l) / (alpha,k) / k-anonymity / t-closeness, not just
    frequency l-diversity.
``ldiversity evaluate``
    Anonymize a CSV file with several algorithms and print the standard
    metrics side by side.
``ldiversity experiment``
    Re-run one of the paper's figures (or the phase-3 frequency census) at a
    chosen scale and print the resulting series.
``ldiversity algorithms`` / ``ldiversity metrics`` / ``ldiversity privacy``
    List the registered algorithms / metrics / privacy models with their
    capability metadata and parameter schemas.

Privacy models (``anonymize``, ``plan``, ``jobs submit``, ``verify``): plain
``--l N`` keeps meaning frequency l-diversity; ``--privacy`` plus the
model's parameter flags requests any registered spec, e.g.::

    ldiversity anonymize ... --privacy entropy-l --l 3
    ldiversity anonymize ... --privacy recursive-cl --c 2 --l 3
    ldiversity verify   ... --privacy t-closeness --t 0.3

Every choice set is derived from a single source of truth — the engine's
registries for algorithms and metrics, the privacy registry for ``--privacy``,
:data:`repro.experiments.figures.FIGURES` for experiments,
:meth:`repro.experiments.config.ExperimentConfig.presets` for scales — so the
help text can never drift from what is implemented.
"""

from __future__ import annotations

import argparse
import csv
import sys
from collections.abc import Sequence

from repro.engine import (
    CsvSink,
    CsvSource,
    Engine,
    ResultCache,
    RunPlan,
    algorithm_registry,
    metric_registry,
)
from repro.errors import UnknownEntryError
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import format_records, record_from_report
from repro.privacy.spec import PrivacySpec, privacy_registry
from repro.text import format_fixed_width

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro._version import __version__

    parser = argparse.ArgumentParser(
        prog="ldiversity",
        description="l-diversity anonymization (EDBT 2010 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    anonymize = subparsers.add_parser("anonymize", help="anonymize a CSV file")
    _add_io_arguments(anonymize)
    _add_privacy_arguments(anonymize)
    _add_algorithm_argument(anonymize)
    anonymize.add_argument(
        "--output", default=None, help="write the published table to this CSV file"
    )
    _add_execution_arguments(anonymize)
    _add_workspace_arguments(anonymize)
    anonymize.add_argument(
        "--stream",
        action="store_true",
        help="bounded-memory CSV-to-CSV pipeline (requires --output; rows come "
        "back in QI-sorted shard order, not input order)",
    )
    anonymize.add_argument(
        "--mmap",
        action="store_true",
        help="run off memory-mapped int32 column buffers: --input may be a "
        "column-store directory, or a CSV which is converted once to a "
        "sibling <input>.colstore directory and reused afterwards",
    )

    bench = subparsers.add_parser(
        "bench", help="record the BENCH_scale raw-speed trajectory"
    )
    bench.add_argument("--output", default="BENCH_scale.json")
    bench.add_argument(
        "--sizes", default="100000,1000000", help="comma-separated row counts"
    )
    bench.add_argument("--dataset", choices=["SAL", "OCC"], default="SAL")
    bench.add_argument("--bench-algorithm", default="TP+", dest="bench_algorithm")
    bench.add_argument("--l", type=int, default=6)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--qi-scale", type=float, default=0.24)
    bench.add_argument(
        "--repeats", type=int, default=1, help="runs per point; the minimum is kept"
    )
    bench.add_argument(
        "--reference-max-n",
        type=int,
        default=1_000_000,
        help="skip the pure-Python reference backend above this n",
    )

    plan = subparsers.add_parser(
        "plan", help="explain the planner's execution choice for a workload"
    )
    _add_io_arguments(plan)
    _add_privacy_arguments(plan)
    _add_algorithm_argument(plan)
    _add_execution_arguments(plan)

    jobs = subparsers.add_parser("jobs", help="submit and inspect persistent jobs")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    submit = jobs_sub.add_parser("submit", help="run a job and record it in the ledger")
    _add_io_arguments(submit)
    _add_privacy_arguments(submit)
    _add_algorithm_argument(submit)
    submit.add_argument(
        "--output", default=None, help="write the published table to this CSV file"
    )
    _add_execution_arguments(submit)
    _add_workspace_arguments(submit)
    jobs_list = jobs_sub.add_parser("list", help="list the recorded jobs")
    _add_workspace_arguments(jobs_list)
    show = jobs_sub.add_parser("show", help="show one recorded job in full")
    show.add_argument("job_id", help="job id as printed by `jobs list`")
    _add_workspace_arguments(show)
    cancel = jobs_sub.add_parser("cancel", help="cancel a queued/running job")
    cancel.add_argument("job_id", help="job id as printed by `jobs list`")
    _add_workspace_arguments(cancel)

    verify = subparsers.add_parser(
        "verify",
        help="check a published CSV against a privacy model (streaming)",
    )
    _add_io_arguments(verify)
    _add_privacy_arguments(verify, check_only=True)

    serve = subparsers.add_parser(
        "serve", help="run the asynchronous anonymization HTTP server"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8350, help="bind port (0 = ephemeral, printed on boot)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="process-pool width draining the job queue"
    )
    serve.add_argument(
        "--queue-cap",
        type=int,
        default=16,
        help="queued-job bound; submissions beyond it get 429 + Retry-After",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client submissions per second (default: unlimited)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=None,
        help="per-client burst size (default: max(1, rate))",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="reject request bodies larger than this with 413",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help="directory server-side csv sources may read from; without it, "
        "{'kind': 'csv'} sources are rejected with 403 (clients can still "
        "upload CSV bodies)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds; a timed-out attempt is "
        "killed and retried (default: unlimited)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempt budget before a crash-looping job is quarantined "
        "(failed terminally)",
    )
    serve.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        help="base of the exponential backoff between retry attempts, "
        "in seconds",
    )
    serve.add_argument(
        "--no-replay",
        action="store_true",
        help="skip re-enqueueing the ledger's non-terminal jobs at boot "
        "(default: replay them — the crash-recovery contract)",
    )
    serve.add_argument(
        "--log-format",
        choices=["text", "json"],
        default="text",
        help="log output format: human-readable text (default) or one JSON "
        "object per line carrying request/job ids (for log pipelines)",
    )
    _add_workspace_arguments(serve)

    evaluate = subparsers.add_parser("evaluate", help="compare algorithms on a CSV file")
    _add_io_arguments(evaluate)
    evaluate.add_argument(
        "--l", type=int, required=True, help="diversity parameter l (>= 2)"
    )
    evaluate.add_argument(
        "--algorithms",
        default="TP,TP+,Hilbert",
        help="comma-separated list of algorithms (default: TP,TP+,Hilbert)",
    )
    evaluate.add_argument(
        "--kl", action="store_true", help="also compute the KL-divergence utility metric"
    )

    experiment = subparsers.add_parser("experiment", help="re-run one of the paper's figures")
    experiment.add_argument(
        "name",
        choices=sorted(figures.FIGURES) + ["phase3"],
        help="which experiment to run",
    )
    experiment.add_argument("--dataset", choices=["SAL", "OCC"], default="SAL")
    experiment.add_argument(
        "--scale", choices=sorted(ExperimentConfig.presets()), default="smoke"
    )
    experiment.add_argument(
        "--csv", default=None, help="also write the series to this CSV file"
    )

    subparsers.add_parser("algorithms", help="list the registered algorithms")
    subparsers.add_parser("metrics", help="list the registered metrics")
    subparsers.add_parser("privacy", help="list the registered privacy models")
    return parser


def _add_io_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="input CSV file with a header row")
    parser.add_argument("--qi", required=True, help="comma-separated quasi-identifier columns")
    parser.add_argument("--sa", required=True, help="sensitive attribute column")


def _add_privacy_arguments(
    parser: argparse.ArgumentParser, check_only: bool = False
) -> None:
    """The privacy-model flags, derived from the privacy registry.

    ``--l`` alone keeps the historical meaning (frequency l-diversity);
    ``--privacy`` selects another registered model, whose parameters come
    from the matching flags below.  ``check_only`` additionally offers the
    models that can be audited but not enforced (t-closeness) — only the
    ``verify`` command sets it.
    """
    names = [
        info.name
        for info in privacy_registry.entries()
        if check_only or info.enforceable
    ]
    parser.add_argument(
        "--privacy",
        choices=sorted(names),
        default="frequency-l",
        help="privacy model to target (default: frequency-l; see "
        "`ldiversity privacy` for parameters)",
    )
    parser.add_argument(
        "--l", type=float, default=None,
        help="diversity parameter l (frequency-l / entropy-l / recursive-cl)",
    )
    parser.add_argument(
        "--c", type=float, default=None, help="recursive-(c,l) multiplier c"
    )
    parser.add_argument(
        "--alpha", type=float, default=None, help="(alpha,k) frequency bound alpha"
    )
    parser.add_argument(
        "--k", type=int, default=None, help="(alpha,k) / k-anonymity group floor k"
    )
    if check_only:
        parser.add_argument(
            "--t", type=float, default=None, help="t-closeness distance threshold t"
        )


def _privacy_spec(arguments: argparse.Namespace) -> PrivacySpec:
    """Build the requested spec from the CLI flags, validated by the registry."""
    info = privacy_registry.get(arguments.privacy)
    supplied = {
        name: value
        for name in ("l", "c", "alpha", "k", "t")
        if (value := getattr(arguments, name, None)) is not None
    }
    params = {}
    for name, schema in info.params_schema.items():
        if name not in supplied:
            raise ValueError(f"--privacy {info.name} requires --{name}")
        value = supplied.pop(name)
        if schema["type"] == "integer":
            if float(value) != int(value):
                raise ValueError(
                    f"--{name} must be an integer for {info.name}, got {value}"
                )
            value = int(value)
        params[name] = value
    if supplied:
        flags = ", ".join(f"--{name}" for name in sorted(supplied))
        raise ValueError(f"{flags} does not apply to --privacy {info.name}")
    return info.cls(**params)


def _add_algorithm_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--algorithm",
        choices=sorted(algorithm_registry.names()),
        default="TP+",
        help="anonymization algorithm (default: TP+)",
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="split the table into N QI-prefix shards and merge the results "
        "(default: cost-based planner)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for sharded runs (default: cost-based planner)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "reference"],
        default=None,
        help="data-plane backend (default: process default; auto = planner)",
    )
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="stream the input CSV in chunks of this many rows",
    )


def _add_workspace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workspace",
        default=None,
        help="workspace directory for the persistent run store and job ledger "
        "(default: $REPRO_WORKSPACE or ~/.cache/ldiversity)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the persistent run store",
    )


def _csv_source(arguments: argparse.Namespace) -> CsvSource:
    qi_names = tuple(name.strip() for name in arguments.qi.split(",") if name.strip())
    return CsvSource(arguments.input, qi_names, arguments.sa)


def _plan_source(arguments: argparse.Namespace):
    """The plan's data source: the CSV, or its column store under ``--mmap``.

    With ``--mmap``, an ``--input`` that is already a column-store directory
    is opened as-is; a CSV input is converted once to ``<input>.colstore``
    (chunked, out-of-core) and the store is reused by every later run.
    """
    if not getattr(arguments, "mmap", False):
        return _csv_source(arguments)
    from repro.engine import ColumnStore, ColumnStoreSource

    if ColumnStore.is_store_dir(arguments.input):
        return ColumnStoreSource(arguments.input)
    store_dir = arguments.input + ".colstore"
    if not ColumnStore.is_store_dir(store_dir):
        qi_names = tuple(
            name.strip() for name in arguments.qi.split(",") if name.strip()
        )
        ColumnStore.convert_csv(arguments.input, store_dir, qi_names, arguments.sa)
        print(f"column store written to {store_dir}", file=sys.stderr)
    return ColumnStoreSource(store_dir)


def _engine(arguments: argparse.Namespace) -> Engine:
    """An engine whose cache reads through the workspace run store."""
    if getattr(arguments, "no_store", False):
        return Engine(cache=ResultCache())
    from repro.service import Workspace

    store = Workspace(arguments.workspace).run_store()
    return Engine(cache=ResultCache(store=store))


def _run_plan(arguments: argparse.Namespace, spec: PrivacySpec) -> RunPlan:
    return RunPlan(
        source=_plan_source(arguments),
        algorithm=arguments.algorithm,
        l=spec.anonymize_l(),
        privacy=spec,
        shards=arguments.shards,
        workers=arguments.workers,
        backend=arguments.backend,
        chunk_rows=arguments.chunk_rows,
    )


def _cache_line(report) -> str:
    if report.store_hit:
        return "served from the persistent run store (cross-process hit)"
    if report.cache_hit:
        return "served from the in-memory result cache"
    return "computed (result cached for future runs)"


def _command_anonymize(arguments: argparse.Namespace) -> int:
    try:
        spec = _privacy_spec(arguments)
    except (ValueError, UnknownEntryError) as error:
        print(error, file=sys.stderr)
        return 2
    if arguments.stream:
        if arguments.mmap:
            print("--stream and --mmap are mutually exclusive", file=sys.stderr)
            return 2
        return _command_anonymize_stream(arguments, spec)
    report = _engine(arguments).run(_run_plan(arguments, spec))
    if arguments.output:
        with CsvSink(arguments.output) as sink:
            sink.write_table(report.generalized)
    print(format_records([record_from_report(report, dataset=arguments.input)]))
    if spec.kind != "frequency-l":
        merges = (
            f" ({report.enforcement_merges} groups merged by enforcement)"
            if report.enforcement_merges
            else ""
        )
        print(f"privacy: {spec.describe()} enforced and verified{merges}")
    if len(report.shard_sizes) > 1:
        print(f"sharded over {len(report.shard_sizes)} shards: {list(report.shard_sizes)}")
    if report.decision is not None and arguments.shards is None:
        print(
            f"planner: shards={report.decision.shards} workers={report.decision.workers} "
            f"backend={report.decision.backend}"
        )
    print(_cache_line(report))
    if arguments.output:
        print(f"published table written to {arguments.output}")
    return 0


def _command_anonymize_stream(
    arguments: argparse.Namespace, spec: PrivacySpec
) -> int:
    if not arguments.output:
        print("--stream requires --output", file=sys.stderr)
        return 2
    if arguments.workers is not None and arguments.workers > 1:
        print(
            "note: --stream processes shards sequentially to bound memory; "
            "--workers is ignored",
            file=sys.stderr,
        )
    from repro.service import stream_anonymize

    report = stream_anonymize(
        _csv_source(arguments),
        arguments.output,
        algorithm=arguments.algorithm,
        l=spec.anonymize_l(),
        privacy=spec,
        shards=arguments.shards,
        chunk_rows=arguments.chunk_rows or 50_000,
        backend=arguments.backend,
    )
    print(report.format())
    print(f"published table written to {arguments.output}")
    return 0


def _command_bench(arguments: argparse.Namespace) -> int:
    from repro.service.benchscale import BenchScaleConfig, write_bench_scale

    sizes = tuple(int(part) for part in arguments.sizes.split(",") if part.strip())
    if not sizes:
        print("--sizes must name at least one row count", file=sys.stderr)
        return 2
    config = BenchScaleConfig(
        sizes=sizes,
        dataset=arguments.dataset,
        algorithm=arguments.bench_algorithm,
        l=arguments.l,
        seed=arguments.seed,
        qi_scale=arguments.qi_scale,
        repeats=arguments.repeats,
        reference_max_n=arguments.reference_max_n,
    )
    write_bench_scale(arguments.output, config)
    return 0


def _command_plan(arguments: argparse.Namespace) -> int:
    from repro.service import default_planner

    try:
        spec = _privacy_spec(arguments)
    except (ValueError, UnknownEntryError) as error:
        print(error, file=sys.stderr)
        return 2
    info = algorithm_registry.get(arguments.algorithm)
    source = _csv_source(arguments)
    schema = source.resolved_schema()
    with open(arguments.input, newline="") as handle:
        n = sum(1 for _row in csv.DictReader(handle))
    decision = default_planner().decide(
        info,
        n=n,
        d=schema.dimension,
        l=spec.anonymize_l(),
        shards=arguments.shards,
        workers=arguments.workers,
        backend=arguments.backend,
        privacy=spec,
    )
    print(
        f"workload: n={n} d={schema.dimension} l={spec.anonymize_l()} "
        f"privacy={spec.describe()} algorithm={info.name}"
    )
    print(decision.explain())
    return 0


def _job_service(arguments: argparse.Namespace):
    from repro.service import JobService, Workspace

    workspace = Workspace(arguments.workspace)
    if getattr(arguments, "no_store", False):
        # Still record the job in the ledger, but run on an isolated
        # in-memory cache so nothing is read from or written to the store.
        return JobService(workspace, engine=Engine(cache=ResultCache()))
    return JobService(workspace)


def _command_jobs(arguments: argparse.Namespace) -> int:
    if arguments.jobs_command == "submit":
        try:
            spec = _privacy_spec(arguments)
        except (ValueError, UnknownEntryError) as error:
            print(error, file=sys.stderr)
            return 2
        service = _job_service(arguments)
        record, report = service.submit(
            _run_plan(arguments, spec), output=arguments.output or None
        )
        print(format_records([record_from_report(report, dataset=arguments.input)]))
        print(f"job {record.id}: {record.status} ({_cache_line(report)})")
        if record.output:
            print(f"published table written to {record.output}")
        return 0
    if arguments.jobs_command == "list":
        records = _job_service(arguments).list()
        if not records:
            print("no jobs recorded")
            return 0
        headers = ["job", "status", "algorithm", "l", "n", "stars", "seconds", "served", "input"]
        print(format_fixed_width(headers, [list(record.summary_row()) for record in records]))
        return 0
    if arguments.jobs_command == "show":
        import dataclasses

        try:
            record = _job_service(arguments).get(arguments.job_id)
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 1
        for key, value in dataclasses.asdict(record).items():
            print(f"{key}: {value}")
        return 0
    if arguments.jobs_command == "cancel":
        from repro.service.jobs import JobStateError

        service = _job_service(arguments)
        try:
            record = service.cancel(arguments.job_id)
        except (KeyError, JobStateError) as error:
            print(str(error), file=sys.stderr)
            return 1
        print(f"job {record.id}: {record.status}")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def _command_verify(arguments: argparse.Namespace) -> int:
    from repro.service import verify_csv_satisfies

    try:
        spec = _privacy_spec(arguments)
    except (ValueError, UnknownEntryError) as error:
        print(error, file=sys.stderr)
        return 2
    qi_names = tuple(name.strip() for name in arguments.qi.split(",") if name.strip())
    satisfied = verify_csv_satisfies(arguments.input, qi_names, arguments.sa, spec)
    if satisfied:
        print(f"OK: {arguments.input} satisfies {spec.describe()}")
        return 0
    print(
        f"FAIL: {arguments.input} violates {spec.describe()} (or holds no rows)",
        file=sys.stderr,
    )
    return 1


def _command_serve(arguments: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.obs.log import configure_logging
    from repro.server import AnonymizationServer

    # Recovery events (retries, pool restarts, replay, quarantine) log at
    # INFO/WARNING on the repro.server logger; surface them on stderr so an
    # operator watching the process sees the self-healing happen.
    # ``--log-format json`` swaps in the structured JSON-lines formatter.
    configure_logging(arguments.log_format)
    server = AnonymizationServer(
        workspace=arguments.workspace,
        workers=arguments.workers,
        queue_cap=arguments.queue_cap,
        rate_limit=arguments.rate_limit,
        rate_burst=arguments.rate_burst,
        max_body_bytes=arguments.max_body_bytes,
        use_store=not arguments.no_store,
        data_dir=arguments.data_dir,
        job_timeout_seconds=arguments.job_timeout,
        max_attempts=arguments.max_attempts,
        retry_backoff_seconds=arguments.retry_backoff,
        replay=not arguments.no_replay,
    )

    async def _serve() -> None:
        host, port = await server.start(arguments.host, arguments.port)
        print(
            f"serving on http://{host}:{port} "
            f"(workers={arguments.workers} queue_cap={arguments.queue_cap} "
            f"workspace={server.workspace.root})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signal_number, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await stop.wait()
        print("shutting down (draining running jobs)...", flush=True)
        await server.shutdown(drain_seconds=5.0)

    asyncio.run(_serve())
    print("server stopped", flush=True)
    return 0


def _command_evaluate(arguments: argparse.Namespace) -> int:
    engine = Engine()
    table = _csv_source(arguments).load()
    names = [name.strip() for name in arguments.algorithms.split(",") if name.strip()]
    metrics = ("kl",) if arguments.kl else ()
    records = [
        record_from_report(
            engine.run_table(table, name, arguments.l, metrics=metrics),
            dataset=arguments.input,
        )
        for name in names
    ]
    print(format_records(records))
    return 0


def _command_experiment(arguments: argparse.Namespace) -> int:
    config = ExperimentConfig.presets()[arguments.scale]()
    if arguments.name == "phase3":
        result = figures.phase3_frequency(dataset=arguments.dataset, config=config)
        print(result.format())
        return 0
    figure = figures.FIGURES[arguments.name](dataset=arguments.dataset, config=config)
    print(figure.format())
    if arguments.csv:
        figure.to_csv(arguments.csv)
        print(f"series written to {arguments.csv}")
    return 0


def _command_algorithms() -> int:
    rows = [
        (
            info.name,
            info.complexity,
            info.approximation,
            "yes" if info.supports_sharding else "no",
            "yes" if info.deterministic else "no",
            info.description,
        )
        for info in algorithm_registry.entries()
    ]
    _print_table(
        ["algorithm", "complexity", "approximation", "sharding", "deterministic", "description"],
        rows,
    )
    return 0


def _command_privacy() -> int:
    def render_params(schema: dict) -> str:
        parts = []
        for name, constraints in sorted(schema.items()):
            bounds = ", ".join(
                f"{key} {value}"
                for key, value in constraints.items()
                if key != "type"
            )
            parts.append(f"{name}: {constraints['type']}" + (f" ({bounds})" if bounds else ""))
        return "; ".join(parts)

    rows = [
        (
            info.name,
            render_params(info.params_schema),
            "enforce + verify" if info.enforceable else "verify only",
            "yes" if info.name == "frequency-l" else "no",
            info.description,
        )
        for info in privacy_registry.entries()
    ]
    _print_table(["privacy model", "parameters", "usable for", "default", "description"], rows)
    return 0


def _command_metrics() -> int:
    rows = [
        (
            info.name,
            "table + published" if info.needs_source else "published",
            info.better,
            info.description,
        )
        for info in metric_registry.entries()
    ]
    _print_table(["metric", "inputs", "better", "description"], rows)
    return 0


def _print_table(headers: list[str], rows: list[tuple[str, ...]]) -> None:
    print(format_fixed_width(headers, rows))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "anonymize":
        return _command_anonymize(arguments)
    if arguments.command == "bench":
        return _command_bench(arguments)
    if arguments.command == "plan":
        return _command_plan(arguments)
    if arguments.command == "jobs":
        return _command_jobs(arguments)
    if arguments.command == "verify":
        return _command_verify(arguments)
    if arguments.command == "serve":
        return _command_serve(arguments)
    if arguments.command == "evaluate":
        return _command_evaluate(arguments)
    if arguments.command == "experiment":
        return _command_experiment(arguments)
    if arguments.command == "algorithms":
        return _command_algorithms()
    if arguments.command == "metrics":
        return _command_metrics()
    if arguments.command == "privacy":
        return _command_privacy()
    parser.error(f"unknown command {arguments.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
