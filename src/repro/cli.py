"""Command-line interface.

Three sub-commands:

``ldiversity anonymize``
    Anonymize a CSV file with one of the implemented algorithms and write the
    published table back to CSV (stars rendered as ``*``).
``ldiversity evaluate``
    Anonymize a CSV file with several algorithms and print the standard
    metrics side by side.
``ldiversity experiment``
    Re-run one of the paper's figures (or the phase-3 frequency census) at a
    chosen scale and print the resulting series.
"""

from __future__ import annotations

import argparse
import csv
import sys
from collections.abc import Sequence

from repro.dataset.table import Table
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ALGORITHMS, format_records, run_algorithm

__all__ = ["main", "build_parser"]

_FIGURES = {
    "figure2": figures.figure2,
    "figure3": figures.figure3,
    "figure4": figures.figure4,
    "figure5": figures.figure5,
    "figure6": figures.figure6,
    "figure7": figures.figure7,
    "figure8": figures.figure8,
}

_SCALES = {
    "smoke": ExperimentConfig.smoke,
    "default": ExperimentConfig.default,
    "paper": ExperimentConfig.paper_scale,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ldiversity",
        description="l-diversity anonymization (EDBT 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    anonymize = subparsers.add_parser("anonymize", help="anonymize a CSV file")
    _add_io_arguments(anonymize)
    anonymize.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="TP+",
        help="anonymization algorithm (default: TP+)",
    )
    anonymize.add_argument("--output", required=True, help="path of the published CSV")

    evaluate = subparsers.add_parser("evaluate", help="compare algorithms on a CSV file")
    _add_io_arguments(evaluate)
    evaluate.add_argument(
        "--algorithms",
        default="TP,TP+,Hilbert",
        help="comma-separated list of algorithms (default: TP,TP+,Hilbert)",
    )
    evaluate.add_argument(
        "--kl", action="store_true", help="also compute the KL-divergence utility metric"
    )

    experiment = subparsers.add_parser("experiment", help="re-run one of the paper's figures")
    experiment.add_argument(
        "name",
        choices=sorted(_FIGURES) + ["phase3"],
        help="which experiment to run",
    )
    experiment.add_argument("--dataset", choices=["SAL", "OCC"], default="SAL")
    experiment.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    experiment.add_argument(
        "--csv", default=None, help="also write the series to this CSV file"
    )
    return parser


def _add_io_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="input CSV file with a header row")
    parser.add_argument("--qi", required=True, help="comma-separated quasi-identifier columns")
    parser.add_argument("--sa", required=True, help="sensitive attribute column")
    parser.add_argument("--l", type=int, required=True, help="diversity parameter l (>= 2)")


def _load_table(arguments: argparse.Namespace) -> Table:
    qi_names = [name.strip() for name in arguments.qi.split(",") if name.strip()]
    return Table.from_csv(arguments.input, qi_names, arguments.sa)


def _command_anonymize(arguments: argparse.Namespace) -> int:
    table = _load_table(arguments)
    record = run_algorithm(arguments.algorithm, table, arguments.l)
    output = ALGORITHMS[arguments.algorithm](table, arguments.l)
    names = list(table.schema.qi_names) + [table.schema.sensitive.name]
    with open(arguments.output, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=names)
        writer.writeheader()
        for row in output.generalized.decoded_records():
            writer.writerow({name: _render(row[name]) for name in names})
    print(format_records([record]))
    print(f"published table written to {arguments.output}")
    return 0


def _render(value: object) -> object:
    if isinstance(value, tuple):
        return "{" + "|".join(str(item) for item in value) + "}"
    return value


def _command_evaluate(arguments: argparse.Namespace) -> int:
    table = _load_table(arguments)
    names = [name.strip() for name in arguments.algorithms.split(",") if name.strip()]
    records = [
        run_algorithm(name, table, arguments.l, dataset=arguments.input, with_kl=arguments.kl)
        for name in names
    ]
    print(format_records(records))
    return 0


def _command_experiment(arguments: argparse.Namespace) -> int:
    config = _SCALES[arguments.scale]()
    if arguments.name == "phase3":
        result = figures.phase3_frequency(dataset=arguments.dataset, config=config)
        print(result.format())
        return 0
    figure = _FIGURES[arguments.name](dataset=arguments.dataset, config=config)
    print(figure.format())
    if arguments.csv:
        figure.to_csv(arguments.csv)
        print(f"series written to {arguments.csv}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "anonymize":
        return _command_anonymize(arguments)
    if arguments.command == "evaluate":
        return _command_evaluate(arguments)
    if arguments.command == "experiment":
        return _command_experiment(arguments)
    parser.error(f"unknown command {arguments.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
