"""The NP-hardness construction of Section 4.

* :mod:`repro.hardness.three_dm` — 3-dimensional matching instances, a
  brute-force solver, and random instance generators;
* :mod:`repro.hardness.reduction` — the reduction that turns a 3DM instance
  into a microdata table whose optimal 3-diverse generalization has exactly
  ``3 n (d - 1)`` stars iff the 3DM instance is a "yes" instance;
* :mod:`repro.hardness.verify` — checks of Properties 1–4 and of both
  directions of Lemma 3 on concrete instances;
* :mod:`repro.hardness.kdm` — the generalized construction from
  l-dimensional matching, covering every l > 3 (Theorem 1's full statement).
"""

from repro.hardness.kdm import KDMInstance, reduce_kdm_to_l_diversity, solve_kdm
from repro.hardness.reduction import ReducedInstance, reduce_to_l_diversity
from repro.hardness.three_dm import ThreeDMInstance, random_instance, solve_3dm
from repro.hardness.verify import (
    matching_to_generalization,
    minimum_star_threshold,
    verify_construction_properties,
    verify_lemma3,
)

__all__ = [
    "KDMInstance",
    "ReducedInstance",
    "ThreeDMInstance",
    "matching_to_generalization",
    "minimum_star_threshold",
    "random_instance",
    "reduce_kdm_to_l_diversity",
    "reduce_to_l_diversity",
    "solve_3dm",
    "solve_kdm",
    "verify_construction_properties",
    "verify_lemma3",
]
