"""Verifiers for the hardness construction (Properties 1–4, Lemma 3).

These routines make the Section-4 reduction *executable*: they check the
structural properties the proof relies on, convert a 3DM matching into the
corresponding 3-diverse generalization with ``3 n (d - 1)`` stars (the
"only-if" direction of Lemma 3), and — for small instances — confirm the "if"
direction by exhaustive search over generalizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exact import optimal_star_count
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.hardness.reduction import ReducedInstance
from repro.hardness.three_dm import solve_3dm

__all__ = [
    "verify_construction_properties",
    "matching_to_generalization",
    "minimum_star_threshold",
    "Lemma3Report",
    "verify_lemma3",
]


def verify_construction_properties(reduced: ReducedInstance) -> None:
    """Check the structural properties of the constructed table.

    * Property 1: every QI attribute has exactly three rows with value 0;
    * the table has exactly ``m`` distinct sensitive values;
    * rows representing values from different dimensions have different
      sensitive values;
    * the alphabet (union of all attribute domains) has size ``m + 1``.

    Raises ``AssertionError`` with a descriptive message on violation.
    """
    table = reduced.table
    m = reduced.m
    n = reduced.instance.n
    d = reduced.instance.point_count

    for position in range(d):
        zeros = sum(1 for row in range(len(table)) if table.qi_row(row)[position] == 0)
        assert zeros == 3, f"attribute A{position + 1} has {zeros} zeros, expected 3 (Property 1)"

    assert table.distinct_sa_count == m, (
        f"table has {table.distinct_sa_count} distinct sensitive values, expected m={m}"
    )

    sa_by_dimension: dict[int, set[int]] = {0: set(), 1: set(), 2: set()}
    for row, (dimension, _value) in enumerate(reduced.row_values):
        sa_by_dimension[dimension].add(table.sa_value(row))
    for first in range(3):
        for second in range(first + 1, 3):
            overlap = sa_by_dimension[first] & sa_by_dimension[second]
            assert not overlap, (
                f"dimensions {first} and {second} share sensitive values {overlap}"
            )

    alphabet = set()
    for attribute in table.schema.qi:
        alphabet.update(attribute.values)
    alphabet.update(table.schema.sensitive.values)
    assert len(alphabet) == m + 1, f"alphabet has {len(alphabet)} symbols, expected m+1={m + 1}"

    assert len(table) == 3 * n, f"table has {len(table)} rows, expected 3n={3 * n}"


def minimum_star_threshold(reduced: ReducedInstance) -> int:
    """``3 n (d - 1)``: Property 4's lower bound, attained iff 3DM is a yes-instance."""
    return reduced.star_threshold


def matching_to_generalization(
    reduced: ReducedInstance, matching: tuple[int, ...]
) -> GeneralizedTable:
    """Lemma 3, "only-if" direction: a matching yields a 3-diverse generalization.

    For every selected point ``p_i`` the corresponding QI-group contains the
    three rows with value 0 on attribute ``A_i``; the result has exactly
    ``3 n (d - 1)`` stars.
    """
    instance = reduced.instance
    table = reduced.table
    if not instance.is_matching(matching):
        raise ValueError("the given point indices do not form a perfect 3D matching")
    groups = []
    for point_index in matching:
        rows = [
            row for row in range(len(table)) if table.qi_row(row)[point_index] == 0
        ]
        groups.append(rows)
    partition = Partition(groups, len(table))
    return GeneralizedTable.from_partition(table, partition)


@dataclass(frozen=True)
class Lemma3Report:
    """Outcome of :func:`verify_lemma3` on one instance."""

    has_matching: bool
    star_threshold: int
    #: Stars of the generalization built from the matching (yes-instances only).
    constructed_stars: int | None
    #: Optimal star count found by exhaustive search (small instances only).
    optimal_stars: int | None
    #: Whether the instance confirms the equivalence of Lemma 3 as far as it
    #: could be checked.
    consistent: bool


def verify_lemma3(reduced: ReducedInstance, exhaustive_row_limit: int = 9) -> Lemma3Report:
    """Check Lemma 3 on a concrete reduced instance.

    For yes-instances the matching is converted to a generalization and its
    star count compared with the threshold.  For instances small enough
    (``3 n <= exhaustive_row_limit``) the optimal star count is additionally
    computed exhaustively, which checks the "if" direction as well.
    """
    matching = solve_3dm(reduced.instance)
    threshold = reduced.star_threshold
    constructed_stars: int | None = None
    optimal: int | None = None
    consistent = True

    if matching is not None:
        generalized = matching_to_generalization(reduced, matching)
        constructed_stars = generalized.star_count()
        consistent = consistent and constructed_stars == threshold and generalized.is_l_diverse(3)

    if len(reduced.table) <= exhaustive_row_limit:
        optimal = optimal_star_count(reduced.table, l=3, max_rows=exhaustive_row_limit)
        if matching is not None:
            consistent = consistent and optimal == threshold
        else:
            consistent = consistent and optimal > threshold

    return Lemma3Report(
        has_matching=matching is not None,
        star_threshold=threshold,
        constructed_stars=constructed_stars,
        optimal_stars=optimal,
        consistent=consistent,
    )
