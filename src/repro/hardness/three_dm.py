"""3-dimensional matching (3DM) — the NP-hard source problem of Section 4.

An instance consists of three disjoint, equally sized dimensions
``D1, D2, D3`` (each of size ``n``) and a set ``S`` of ``d >= n`` distinct
points in ``D1 x D2 x D3``.  The question is whether some ``S' ⊆ S`` of size
``n`` covers every coordinate exactly once (a perfect 3-dimensional
matching).

Coordinates are represented as integers ``0..n-1`` per dimension; the paper's
example (Figure 1a) is provided as :func:`paper_example_instance`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

__all__ = ["ThreeDMInstance", "solve_3dm", "random_instance", "paper_example_instance"]


@dataclass(frozen=True)
class ThreeDMInstance:
    """A 3DM instance with ``n`` values per dimension and points ``S``."""

    n: int
    points: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        seen = set()
        for point in self.points:
            if len(point) != 3:
                raise ValueError(f"point {point!r} is not three-dimensional")
            if any(not 0 <= coordinate < self.n for coordinate in point):
                raise ValueError(f"point {point!r} has a coordinate outside [0, {self.n})")
            if point in seen:
                raise ValueError(f"duplicate point {point!r}")
            seen.add(point)
        if len(self.points) < self.n:
            raise ValueError(
                f"a matching of size {self.n} needs at least {self.n} points, "
                f"got {len(self.points)}"
            )

    @property
    def point_count(self) -> int:
        """The number ``d`` of points (which becomes the QI dimensionality)."""
        return len(self.points)

    def is_matching(self, selected: tuple[int, ...] | list[int]) -> bool:
        """Whether the selected point indices form a perfect 3D matching."""
        if len(selected) != self.n:
            return False
        for dimension in range(3):
            coordinates = {self.points[index][dimension] for index in selected}
            if len(coordinates) != self.n:
                return False
        return True


def solve_3dm(instance: ThreeDMInstance) -> tuple[int, ...] | None:
    """Exact backtracking solver; returns point indices of a matching or ``None``.

    Exponential in the worst case (3DM is NP-complete); intended for the
    small instances used to validate the reduction.
    """
    n = instance.n
    points = instance.points
    # Index points by their first coordinate so the search branches on D1.
    by_first: dict[int, list[int]] = {value: [] for value in range(n)}
    for index, point in enumerate(points):
        by_first[point[0]].append(index)

    used_second = [False] * n
    used_third = [False] * n
    chosen: list[int] = []

    def backtrack(first_value: int) -> bool:
        if first_value == n:
            return True
        for index in by_first[first_value]:
            _, second, third = points[index]
            if used_second[second] or used_third[third]:
                continue
            used_second[second] = True
            used_third[third] = True
            chosen.append(index)
            if backtrack(first_value + 1):
                return True
            chosen.pop()
            used_second[second] = False
            used_third[third] = False
        return False

    if backtrack(0):
        return tuple(chosen)
    return None


def random_instance(
    n: int,
    extra_points: int = 2,
    seed: int = 0,
    solvable: bool = True,
) -> ThreeDMInstance:
    """Generate a random 3DM instance.

    Parameters
    ----------
    n:
        Size of each dimension.
    extra_points:
        Number of distracting points added on top of the base construction.
    seed:
        RNG seed.
    solvable:
        When true, a hidden perfect matching is planted so the instance is a
        guaranteed "yes" instance; when false the instance is returned as
        drawn (it may or may not admit a matching).
    """
    rng = random.Random(seed)
    points: set[tuple[int, int, int]] = set()
    if solvable:
        second = list(range(n))
        third = list(range(n))
        rng.shuffle(second)
        rng.shuffle(third)
        for first in range(n):
            points.add((first, second[first], third[first]))
    else:
        while len(points) < n:
            points.add((rng.randrange(n), rng.randrange(n), rng.randrange(n)))
    attempts = 0
    while len(points) < n + extra_points and attempts < 100 * (n + extra_points):
        points.add((rng.randrange(n), rng.randrange(n), rng.randrange(n)))
        attempts += 1
    ordered = tuple(sorted(points))
    return ThreeDMInstance(n=n, points=ordered)


def paper_example_instance() -> ThreeDMInstance:
    """The Figure 1a example: ``n = 4`` and six points.

    With ``D1 = {1, 2, 3, 4}``, ``D2 = {a, b, c, d}``, ``D3 = {α, β, γ, δ}``
    encoded as 0-based indices, the points are
    ``p1 = (1, a, δ), p2 = (1, b, γ), p3 = (2, c, α), p4 = (2, b, α),
    p5 = (3, b, γ), p6 = (4, d, β)`` and ``{p1, p3, p5, p6}`` is a matching.
    """
    points = (
        (0, 0, 3),  # p1 = (1, a, δ)
        (0, 1, 2),  # p2 = (1, b, γ)
        (1, 2, 0),  # p3 = (2, c, α)
        (1, 1, 0),  # p4 = (2, b, α)
        (2, 1, 2),  # p5 = (3, b, γ)
        (3, 3, 1),  # p6 = (4, d, β)
    )
    return ThreeDMInstance(n=4, points=points)


def enumerate_matchings(instance: ThreeDMInstance) -> list[tuple[int, ...]]:
    """All perfect matchings of a (small) instance, for exhaustive testing."""
    matchings = []
    for combination in itertools.combinations(range(instance.point_count), instance.n):
        if instance.is_matching(combination):
            matchings.append(combination)
    return matchings
