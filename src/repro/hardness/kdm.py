"""Generalized hardness construction: l-dimensional matching for any l >= 3.

Section 4 of the paper proves NP-hardness for l = 3 via 3-dimensional
matching and then notes that "extending the analysis in a straightforward
manner", optimal l-diversity is NP-hard for every l > 3 through a reduction
from l-dimensional matching [17].  This module implements that extension:

* :class:`KDMInstance` — a k-dimensional matching instance (k disjoint
  dimensions of size ``n`` each, a set of ``d >= n`` distinct k-dimensional
  points);
* :func:`solve_kdm` — exact backtracking solver (exponential; used to
  validate small instances);
* :func:`reduce_kdm_to_l_diversity` — the generalized gadget: a table with
  ``k * n`` rows and one QI attribute per point, such that the instance has a
  perfect matching iff the table admits a k-diverse generalization with
  exactly ``k * n * (d - 1)`` stars;
* :func:`matching_to_generalization` — the constructive ("only-if")
  direction.

The sensitive-value assignment follows the same requirements as the paper's
three-case rule (exactly ``m`` distinct values overall, rows of different
dimensions never share a value) but uses a uniform scheme that works for
every ``k``; for ``k = 3`` the paper's original rule is available in
:mod:`repro.hardness.reduction`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Attribute, Schema, Table

__all__ = [
    "KDMInstance",
    "solve_kdm",
    "ReducedKDMInstance",
    "reduce_kdm_to_l_diversity",
    "matching_to_generalization",
]


@dataclass(frozen=True)
class KDMInstance:
    """A k-dimensional matching instance (k >= 3)."""

    k: int
    n: int
    points: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.k < 3:
            raise ValueError(f"k must be >= 3, got {self.k}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        seen = set()
        for point in self.points:
            if len(point) != self.k:
                raise ValueError(f"point {point!r} is not {self.k}-dimensional")
            if any(not 0 <= coordinate < self.n for coordinate in point):
                raise ValueError(f"point {point!r} has a coordinate outside [0, {self.n})")
            if point in seen:
                raise ValueError(f"duplicate point {point!r}")
            seen.add(point)
        if len(self.points) < self.n:
            raise ValueError(
                f"a matching of size {self.n} needs at least {self.n} points, "
                f"got {len(self.points)}"
            )

    @property
    def point_count(self) -> int:
        """The number ``d`` of points (the QI dimensionality of the gadget)."""
        return len(self.points)

    def is_matching(self, selected: tuple[int, ...] | list[int]) -> bool:
        """Whether the selected point indices form a perfect k-dimensional matching."""
        if len(selected) != self.n:
            return False
        for dimension in range(self.k):
            coordinates = {self.points[index][dimension] for index in selected}
            if len(coordinates) != self.n:
                return False
        return True


def solve_kdm(instance: KDMInstance) -> tuple[int, ...] | None:
    """Exact backtracking solver for small k-dimensional matching instances."""
    n = instance.n
    k = instance.k
    points = instance.points
    by_first: dict[int, list[int]] = {value: [] for value in range(n)}
    for index, point in enumerate(points):
        by_first[point[0]].append(index)

    used = [[False] * n for _ in range(k)]
    chosen: list[int] = []

    def backtrack(first_value: int) -> bool:
        if first_value == n:
            return True
        for index in by_first[first_value]:
            point = points[index]
            if any(used[dimension][point[dimension]] for dimension in range(1, k)):
                continue
            for dimension in range(1, k):
                used[dimension][point[dimension]] = True
            chosen.append(index)
            if backtrack(first_value + 1):
                return True
            chosen.pop()
            for dimension in range(1, k):
                used[dimension][point[dimension]] = False
        return False

    if backtrack(0):
        return tuple(chosen)
    return None


@dataclass(frozen=True)
class ReducedKDMInstance:
    """Output of the generalized reduction."""

    instance: KDMInstance
    table: Table
    #: The diversity parameter of the target problem (= k).
    l: int
    #: Number of distinct sensitive values used.
    m: int
    #: ``k * n * (d - 1)``: the separating star count.
    star_threshold: int
    #: Per row (0-based): the ``(dimension, value)`` it represents.
    row_values: tuple[tuple[int, int], ...]


def _sensitive_values(k: int, n: int, m: int) -> list[int]:
    """Assign sensitive values 1..m to the k*n rows, one dimension block at a time.

    Requirements (as in the paper's rule): exactly ``m`` distinct values are
    used, and rows belonging to different dimensions never share a value.
    Values are distributed as evenly as possible over the ``k`` blocks; within
    a block the first rows take fresh values and the remaining rows repeat the
    block's last value.
    """
    if not k <= m <= k * n:
        raise ValueError(f"m must satisfy k <= m <= k*n, got m={m} for k={k}, n={n}")
    base, extra = divmod(m, k)
    values: list[int] = []
    next_value = 1
    for block in range(k):
        distinct_here = base + (1 if block < extra else 0)
        block_values = list(range(next_value, next_value + distinct_here))
        next_value += distinct_here
        for position in range(n):
            if position < distinct_here:
                values.append(block_values[position])
            else:
                values.append(block_values[-1])
    return values


def reduce_kdm_to_l_diversity(
    instance: KDMInstance, m: int | None = None
) -> ReducedKDMInstance:
    """Build the l-diversity gadget table for an l(=k)-dimensional matching instance."""
    k = instance.k
    n = instance.n
    d = instance.point_count
    if m is None:
        m = min(2 * k, k * n)
    sensitive_values = _sensitive_values(k, n, m)

    qi_attributes = tuple(Attribute(f"A{i + 1}", tuple(range(m + 1))) for i in range(d))
    sensitive = Attribute("B", tuple(range(1, m + 1)))
    schema = Schema(qi=qi_attributes, sensitive=sensitive)

    qi_rows: list[tuple[int, ...]] = []
    sa_codes: list[int] = []
    row_values: list[tuple[int, int]] = []
    for j in range(k * n):
        dimension = j // n
        value = j % n
        row_values.append((dimension, value))
        u = sensitive_values[j]
        row = tuple(
            0 if point[dimension] == value else u for point in instance.points
        )
        qi_rows.append(row)
        sa_codes.append(sensitive.encode(u))

    table = Table(schema, qi_rows, sa_codes)
    return ReducedKDMInstance(
        instance=instance,
        table=table,
        l=k,
        m=m,
        star_threshold=k * n * (d - 1),
        row_values=tuple(row_values),
    )


def matching_to_generalization(
    reduced: ReducedKDMInstance, matching: tuple[int, ...]
) -> GeneralizedTable:
    """The constructive direction: a matching yields a k-diverse generalization
    with exactly ``k * n * (d - 1)`` stars."""
    instance = reduced.instance
    table = reduced.table
    if not instance.is_matching(matching):
        raise ValueError("the given point indices do not form a perfect matching")
    groups = []
    for point_index in matching:
        rows = [row for row in range(len(table)) if table.qi_row(row)[point_index] == 0]
        groups.append(rows)
    partition = Partition(groups, len(table))
    return GeneralizedTable.from_partition(table, partition)
