"""The Section-4 reduction from 3-dimensional matching to 3-diverse suppression.

Given a 3DM instance with dimensions of size ``n`` and ``d`` points, the
reduction builds a microdata table ``T`` with

* one QI attribute ``A_i`` per point ``p_i`` (so the QI dimensionality is ``d``),
* ``3 n`` rows, the ``j``-th corresponding to the ``j``-th domain value
  ``v_j`` (values of ``D1`` first, then ``D2``, then ``D3``),
* a sensitive value ``u`` chosen per row so that ``T`` contains exactly ``m``
  distinct sensitive values and rows from different dimensions never share a
  sensitive value, and
* ``t_j[A_i] = 0`` when ``v_j`` is a coordinate of ``p_i`` and ``t_j[A_i] = u``
  otherwise.

Lemma 3: the 3DM instance has a perfect matching iff ``T`` admits a 3-diverse
generalization with exactly ``3 n (d - 1)`` stars.  The construction uses an
alphabet of only ``m + 1`` symbols (``0..m``), which is the strengthened
hardness claimed by Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.table import Attribute, Schema, Table
from repro.hardness.three_dm import ThreeDMInstance

__all__ = ["ReducedInstance", "reduce_to_l_diversity", "sensitive_value_for_row"]


@dataclass(frozen=True)
class ReducedInstance:
    """The output of the reduction, bundling the table with its provenance."""

    instance: ThreeDMInstance
    table: Table
    #: Number of distinct sensitive values used by the construction.
    m: int
    #: ``3 n (d - 1)``: the star count that separates "yes" from "no" instances.
    star_threshold: int
    #: For each row ``j`` (0-based), the pair ``(dimension, value)`` of the
    #: domain value ``v_{j+1}`` it represents (dimension in ``{0, 1, 2}``).
    row_values: tuple[tuple[int, int], ...]


def sensitive_value_for_row(j: int, n: int, m: int) -> int:
    """The sensitive value ``u`` of the ``j``-th row (1-based), per Section 4.

    The choice guarantees (i) exactly ``m`` distinct sensitive values overall
    and (ii) rows representing values of different dimensions never share a
    sensitive value.
    """
    if not 1 <= j <= 3 * n:
        raise ValueError(f"row index {j} out of range for n={n}")
    if j <= m - 2:
        return j
    if m - 1 > 2 * n:
        return m - 1 if j <= 3 * n - 1 else m
    if m - 1 > n:
        return m - 1 if j <= 2 * n else m
    if j <= n:
        return m - 2
    if j <= 2 * n:
        return m - 1
    return m


def reduce_to_l_diversity(instance: ThreeDMInstance, m: int | None = None) -> ReducedInstance:
    """Build the microdata table of the Section-4 reduction.

    Parameters
    ----------
    instance:
        The 3DM instance.
    m:
        The number of distinct sensitive values to use.  Must satisfy
        ``3 <= m <= 3 n``; defaults to ``min(8, 3 n)`` (the paper's Figure 1
        uses ``m = 8``).
    """
    n = instance.n
    d = instance.point_count
    if m is None:
        m = min(8, 3 * n)
    if not 3 <= m <= 3 * n:
        raise ValueError(f"m must satisfy 3 <= m <= 3n = {3 * n}, got {m}")

    # QI attributes take values in {0, 1, .., m}; the SA takes values in {1, .., m}.
    qi_attributes = tuple(
        Attribute(f"A{i + 1}", tuple(range(m + 1))) for i in range(d)
    )
    sensitive = Attribute("B", tuple(range(1, m + 1)))
    schema = Schema(qi=qi_attributes, sensitive=sensitive)

    qi_rows: list[tuple[int, ...]] = []
    sa_codes: list[int] = []
    row_values: list[tuple[int, int]] = []
    for j in range(1, 3 * n + 1):
        dimension = (j - 1) // n
        value = (j - 1) % n
        row_values.append((dimension, value))
        u = sensitive_value_for_row(j, n, m)
        row = []
        for point in instance.points:
            if point[dimension] == value:
                row.append(0)
            else:
                row.append(u)
        qi_rows.append(tuple(row))
        sa_codes.append(sensitive.encode(u))

    table = Table(schema, qi_rows, sa_codes)
    return ReducedInstance(
        instance=instance,
        table=table,
        m=m,
        star_threshold=3 * n * (d - 1),
        row_values=tuple(row_values),
    )
