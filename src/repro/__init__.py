"""Reproduction of *The Hardness and Approximation Algorithms for L-Diversity*.

This package implements, from scratch, the system described in Xiao, Yi and
Tao (EDBT 2010):

* the three-phase approximation algorithm ``TP`` for l-diverse suppression
  (:mod:`repro.core.three_phase`) and the hybrid ``TP+``
  (:mod:`repro.core.hybrid`);
* exact algorithms used to validate the approximation guarantees
  (:mod:`repro.core.matching`, :mod:`repro.core.exact`);
* the NP-hardness reduction from 3-dimensional matching
  (:mod:`repro.hardness`);
* the Hilbert and TDS baselines of the paper's evaluation
  (:mod:`repro.baselines`);
* the census-like synthetic datasets, utility metrics and experiment harness
  that regenerate every figure of the evaluation section
  (:mod:`repro.dataset`, :mod:`repro.metrics`, :mod:`repro.experiments`);
* the pluggable execution engine — algorithm/metric registries, dataset
  adapters, QI-prefix sharding and result caching (:mod:`repro.engine`).

Quickstart
----------

>>> from repro import datasets, three_phase
>>> table = datasets.hospital_microdata()
>>> result = three_phase.anonymize(table, l=2)
>>> result.generalized.is_l_diverse(2)
True
"""

from repro import engine
from repro._version import __version__
from repro.core import exact, hybrid, matching, three_phase
from repro.core.three_phase import ThreePhaseResult, anonymize
from repro.dataset import examples as datasets
from repro.dataset.generalized import STAR, GeneralizedTable, Partition
from repro.dataset.table import Attribute, Schema, Table
from repro.engine import Engine, RunPlan

__all__ = [
    "Attribute",
    "Engine",
    "GeneralizedTable",
    "Partition",
    "RunPlan",
    "STAR",
    "Schema",
    "Table",
    "ThreePhaseResult",
    "anonymize",
    "datasets",
    "engine",
    "exact",
    "hybrid",
    "matching",
    "three_phase",
    "__version__",
]
