"""Data-plane backend selection: vectorized NumPy versus pure-Python reference.

The hot paths of the data plane — QI-grouping, suppression (Definition 1),
Hilbert key computation and the information-loss metrics — exist in two
provably-equivalent implementations:

* a **vectorized** NumPy implementation operating on the columnar code
  arrays carried by :class:`~repro.dataset.table.Table` (the default), and
* a **reference** pure-Python implementation, retained both as the oracle for
  the property tests (mirroring the ``GroupState`` / ``NaiveGroupState``
  ablation pattern of Section 5.5) and as the baseline that
  ``scripts/bench_baseline.py`` measures speedups against.

The switch is a process-wide flag so that an *end-to-end* run (a whole figure
driver) can be executed on either backend without touching call sites:

>>> from repro.backend import use_backend
>>> with use_backend("reference"):
...     ...  # every hot path now takes the pure-Python route

Workers forked by the parallel experiment harness inherit the flag.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["BACKENDS", "current_backend", "set_backend", "use_backend", "vectorized_enabled"]

#: The recognized backend names.
BACKENDS = ("numpy", "reference")

_backend = os.environ.get("REPRO_BACKEND", "numpy")
if _backend not in BACKENDS:  # pragma: no cover - misconfiguration guard
    raise ValueError(f"REPRO_BACKEND must be one of {BACKENDS}, got {_backend!r}")


def current_backend() -> str:
    """The name of the active data-plane backend."""
    return _backend


def set_backend(name: str) -> None:
    """Select the data-plane backend (``"numpy"`` or ``"reference"``)."""
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    _backend = name


@contextmanager
def use_backend(name: str):
    """Temporarily switch the data-plane backend."""
    previous = current_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def vectorized_enabled() -> bool:
    """Whether hot paths should take the vectorized NumPy route."""
    return _backend == "numpy"
