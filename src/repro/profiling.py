"""Lightweight, opt-in stage profiling for the anonymization pipeline.

The raw-speed work (ROADMAP item 3) needs the remaining pure-Python hot
spots *measured*, not guessed.  Setting ``REPRO_PROFILE=1`` makes the
pipeline record wall-clock seconds per stage (``load`` / ``encode`` /
``phase1``..``phase3`` / ``publish`` / ``merge`` / ``metrics``) into a
process-wide accumulator that the engine snapshots into
:attr:`~repro.engine.core.RunReport.profile` and ``scripts/bench_scale.py``
turns into the per-stage attribution of ``BENCH_scale.json``.  Setting
``REPRO_PROFILE=cprofile`` additionally wraps the anonymize stage in
:mod:`cProfile` and prints the hottest functions to stderr.

When the variable is unset the hooks cost one truthiness check and a shared
null context manager — nothing on the hot path allocates or syscalls.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager, nullcontext

__all__ = [
    "enabled",
    "cprofile_enabled",
    "maybe_cprofile",
    "profile_stage",
    "record",
    "reset",
    "snapshot",
    "set_enabled",
]

_MODE = os.environ.get("REPRO_PROFILE", "")
_enabled = _MODE not in ("", "0")
_lock = threading.Lock()
_stages: dict[str, float] = {}
_NULL = nullcontext()


def enabled() -> bool:
    """Whether stage timing is active (``REPRO_PROFILE`` set and non-zero)."""
    return _enabled


def cprofile_enabled() -> bool:
    """Whether the anonymize stage should also run under :mod:`cProfile`."""
    return _enabled and _MODE.lower() == "cprofile"


def set_enabled(value: bool, mode: str = "1") -> None:
    """Programmatically toggle profiling (tests and the bench driver)."""
    global _enabled, _MODE
    _enabled = bool(value)
    _MODE = mode if value else ""


def record(stage_name: str, seconds: float) -> None:
    """Add ``seconds`` to a stage's accumulator."""
    with _lock:
        _stages[stage_name] = _stages.get(stage_name, 0.0) + seconds


def reset() -> None:
    """Clear the accumulator (the engine calls this at the start of a run)."""
    with _lock:
        _stages.clear()


def snapshot() -> dict[str, float]:
    """A copy of the per-stage seconds accumulated since the last reset."""
    with _lock:
        return dict(_stages)


@contextmanager
def _timed(stage_name: str):
    started = time.perf_counter()
    try:
        yield
    finally:
        record(stage_name, time.perf_counter() - started)


def profile_stage(stage_name: str):
    """Context manager timing one pipeline stage when profiling is enabled.

    Returns a shared null context when profiling is off, so instrumented
    code pays a single function call and no allocation.
    """
    if not _enabled:
        return _NULL
    return _timed(stage_name)


@contextmanager
def _cprofiled(label: str, top: int):
    import cProfile
    import io
    import pstats
    import sys

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        print(f"[repro cprofile] {label}:\n{buffer.getvalue()}", file=sys.stderr)


def maybe_cprofile(label: str, top: int = 25):
    """Run the wrapped block under :mod:`cProfile` when ``REPRO_PROFILE=cprofile``.

    The hottest ``top`` functions (by cumulative time) are printed to stderr;
    a shared null context is returned in every other mode.
    """
    if not cprofile_enabled():
        return _NULL
    return _cprofiled(label, top)
