"""Python SDK for the anonymization server (:mod:`repro.server`).

A thin, dependency-free HTTP client over :mod:`urllib.request` implementing
the server's citizenship contract:

* **retry with backoff and full jitter** — ``429``/``503`` responses are
  retried after the server's ``Retry-After`` (falling back to capped
  exponential backoff), with a uniform random jitter spread over the current
  backoff step so N clients rejected together do not retry together (the
  classic thundering-herd failure of deterministic schedules); connection
  refusals retry the same way, which also makes
  :meth:`Client.wait_until_ready` a one-liner for boot races.  The jitter
  source is seedable (``jitter_seed``) so tests stay deterministic;
* **job lifecycle** — :meth:`Client.submit` (inline rows, CSV text/file, or
  a synthetic spec), :meth:`Client.wait` (poll until terminal),
  :meth:`Client.result` / :meth:`Client.result_csv`, :meth:`Client.cancel`;
* **introspection** — :meth:`Client.health`, :meth:`Client.algorithms`,
  :meth:`Client.metrics`, :meth:`Client.privacy_models`, :meth:`Client.plan`.

Submissions accept ``privacy={"kind": "entropy-l", "l": 3}`` (or a
:class:`~repro.privacy.spec.PrivacySpec`) to target any registered privacy
model; plain ``l=`` keeps meaning frequency l-diversity.

Example::

    from repro.client import Client

    client = Client("http://127.0.0.1:8350", client_id="analytics")
    job_id = client.submit(rows=rows, qi=["Age", "Zip"], sa="Disease", l=4)
    record = client.wait(job_id)
    assert record["status"] == "done"
    table = client.result(job_id)          # {"header": [...], "rows": [...]}
"""

from __future__ import annotations

import http.client
import json
import logging
import random
import time
import urllib.error
import urllib.request
from typing import Callable

from repro.errors import ReproError
from repro.obs.trace import new_request_id

__all__ = ["BackpressureError", "Client", "ClientError", "JobFailedError"]

_LOG = logging.getLogger("repro.client")

#: Statuses after which a job will never change again.
TERMINAL_STATUSES = ("done", "failed", "cancelled")


class ClientError(ReproError):
    """An HTTP error response from the server (after retries, if any)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BackpressureError(ClientError):
    """The server kept answering 429/503 until the retry budget ran out."""


class JobFailedError(ReproError):
    """A waited-on job reached a terminal state other than ``done``."""

    def __init__(self, record: dict) -> None:
        super().__init__(
            f"job {record.get('id')} {record.get('status')}: {record.get('error', '')}"
        )
        self.record = record


class Client:
    """HTTP client for one anonymization server."""

    def __init__(
        self,
        base_url: str,
        client_id: str | None = None,
        timeout: float = 30.0,
        retries: int = 6,
        backoff_seconds: float = 0.1,
        max_backoff_seconds: float = 5.0,
        max_retry_after_seconds: float = 60.0,
        sleep: Callable[[float], None] = time.sleep,
        jitter_seed: int | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.max_backoff_seconds = max_backoff_seconds
        self.max_retry_after_seconds = max_retry_after_seconds
        self._sleep = sleep
        #: Private PRNG for retry jitter — seeded for deterministic tests,
        #: and never the process-global `random` so library users' seeding
        #: is not disturbed.
        self._jitter = random.Random(jitter_seed)
        #: 429/503 responses absorbed by retries (useful in load tests).
        self.backpressure_events = 0
        #: The ``X-Request-Id`` of the most recent exchange — the join key
        #: for server logs and ``GET /v1/jobs/{id}/trace``.
        self.last_request_id: str | None = None

    # ---------------------------------------------------------------- plumbing

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
        retry: bool = True,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange with retry-on-backpressure; returns (status, headers, body).

        A request id is minted once per logical exchange and re-sent on every
        retry of it — the id identifies the *work*, so the server can
        correlate a client's whole backoff episode into one story.  Give-ups
        are logged and raised **with their final cause chained**: the last
        429/503 ``HTTPError`` or connection failure rides along as
        ``__cause__`` instead of being discarded.
        """
        url = self.base_url + path
        request_id = new_request_id()
        self.last_request_id = request_id
        headers = {"X-Request-Id": request_id}
        if body is not None:
            headers["Content-Type"] = content_type
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        attempts = self.retries if retry else 0
        delay = self.backoff_seconds
        for attempt in range(attempts + 1):
            request = urllib.request.Request(url, data=body, headers=headers, method=method)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.status, dict(response.headers), response.read()
            except urllib.error.HTTPError as error:
                payload = error.read()
                if error.code in (429, 503):
                    if attempt < attempts:
                        self.backpressure_events += 1
                        wait = self._jittered_wait(
                            delay, self._retry_after(dict(error.headers))
                        )
                        delay = min(delay * 2, self.max_backoff_seconds)
                        self._sleep(wait)
                        continue
                    if attempts:  # budget spent on backpressure alone
                        _LOG.warning(
                            "giving up on %s %s after %d attempts "
                            "(HTTP %d, request %s)",
                            method,
                            path,
                            attempt + 1,
                            error.code,
                            request_id,
                            extra={
                                "request_id": request_id,
                                "status": error.code,
                                "attempts": attempt + 1,
                            },
                        )
                        raise BackpressureError(
                            error.code,
                            f"{self._message(payload)} "
                            f"(gave up after {attempt + 1} attempts, "
                            f"request {request_id})",
                        ) from error
                raise ClientError(error.code, self._message(payload)) from None
            except (OSError, http.client.HTTPException) as error:
                # URLError covers refused connections; a connection that dies
                # *mid-exchange* (server killed between request and response)
                # escapes urlopen as a raw ConnectionResetError or
                # http.client.RemoteDisconnected instead.  All of them mean
                # the same thing here: the server is unreachable right now.
                if attempt < attempts:
                    self._sleep(self._jittered_wait(delay, None))
                    delay = min(delay * 2, self.max_backoff_seconds)
                    continue
                reason = getattr(error, "reason", None) or error
                if attempts:
                    _LOG.warning(
                        "giving up on %s %s after %d attempts (%s, request %s)",
                        method,
                        path,
                        attempt + 1,
                        reason,
                        request_id,
                        extra={
                            "request_id": request_id,
                            "attempts": attempt + 1,
                            "error": str(reason),
                        },
                    )
                raise ClientError(
                    0, f"connection failed: {reason} (request {request_id})"
                ) from error
        raise AssertionError("unreachable: the final attempt returns or raises")

    def _jittered_wait(self, delay: float, retry_after: float | None) -> float:
        """Full jitter over the current backoff step (AWS-style).

        ``uniform(0, delay)`` alone when the client is backing off on its own
        schedule; *added to* the server's ``Retry-After`` ask when one was
        given — jittering below the ask would deliberately retry before the
        server said a slot could exist, undercutting the backpressure
        contract, so the ask is a floor and the jitter only spreads clients
        out above it.
        """
        jitter = self._jitter.uniform(0.0, delay)
        if retry_after is None:
            return jitter
        return retry_after + jitter

    def _retry_after(self, headers: dict[str, str]) -> float | None:
        """The server's ``Retry-After`` (sanity-capped), else ``None``.

        ``max_backoff_seconds`` only bounds the client's *own* exponential
        schedule — clamping the server's ask to it would deliberately retry
        early and undercut the backpressure contract.  The separate (much
        larger) ``max_retry_after_seconds`` cap just guards against a
        misconfigured server parking clients forever.
        """
        for name, value in headers.items():
            if name.lower() == "retry-after":
                try:
                    return min(max(float(value), 0.0), self.max_retry_after_seconds)
                except ValueError:
                    break
        return None

    @staticmethod
    def _message(payload: bytes) -> str:
        try:
            return json.loads(payload.decode("utf-8")).get("error", payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return payload.decode("utf-8", "replace")

    def _json(self, method: str, path: str, payload: dict | None = None, retry: bool = True) -> dict:
        body = None
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        _status, _headers, raw = self._request(method, path, body=body, retry=retry)
        return json.loads(raw.decode("utf-8")) if raw else {}

    # ------------------------------------------------------------ introspection

    def health(self) -> dict:
        return self._json("GET", "/v1/health")

    def wait_until_ready(self, timeout: float = 10.0, poll_seconds: float = 0.1) -> dict:
        """Poll ``/v1/health`` until the server answers (boot race helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self._json("GET", "/v1/health", retry=False)
            except ClientError as error:
                if error.status != 0 or time.monotonic() >= deadline:
                    raise
            self._sleep(poll_seconds)

    def algorithms(self) -> list[dict]:
        return self._json("GET", "/v1/algorithms")["algorithms"]

    def metrics(self) -> list[dict]:
        return self._json("GET", "/v1/metrics")["metrics"]

    def telemetry_text(self) -> str:
        """The server's operational telemetry (Prometheus text format)."""
        _status, _headers, raw = self._request("GET", "/v1/telemetry")
        return raw.decode("utf-8")

    def privacy_models(self) -> list[dict]:
        """The server's registered privacy models with their parameter schemas."""
        return self._json("GET", "/v1/privacy")["privacy_models"]

    def plan(self, n: int, l: int, algorithm: str = "TP+", d: int = 1, **fields) -> dict:
        payload = {"n": n, "l": l, "algorithm": algorithm, "d": d, **fields}
        return self._json("POST", "/v1/plan", payload)

    # ---------------------------------------------------------------- lifecycle

    def submit(
        self,
        l: int | None = None,
        algorithm: str = "TP+",
        rows: list | None = None,
        columns: list[str] | None = None,
        qi: list[str] | None = None,
        sa: str | None = None,
        source: dict | None = None,
        csv_text: str | None = None,
        csv_path: str | None = None,
        metrics: list[str] | None = None,
        shards: int | None = None,
        backend: str | None = None,
        seed: int = 0,
        include_rows: bool = True,
        privacy: dict | object | None = None,
    ) -> str:
        """Submit one job (inline rows, a CSV body, or a source spec); returns its id.

        Exactly one of ``rows``, ``source``, ``csv_text`` or ``csv_path`` must
        be given.  ``rows`` may be dicts (keyed by column name) or lists with
        ``columns``; CSV submissions upload the text with ``qi``/``sa``/``l``
        as query parameters.  ``privacy`` selects a privacy model — a
        :class:`~repro.privacy.spec.PrivacySpec` or its dict encoding (e.g.
        ``{"kind": "entropy-l", "l": 3}``, see ``GET /v1/privacy``); without
        one, ``l`` is required and means frequency l-diversity, the
        historical contract.  ``include_rows=False`` is for metrics-only
        workloads: the server skips building/keeping the published table and
        only :meth:`job_metrics` is available afterwards.
        """
        provided = [x is not None for x in (rows, source, csv_text, csv_path)]
        if sum(provided) != 1:
            raise ValueError("provide exactly one of rows / source / csv_text / csv_path")
        if l is None and privacy is None:
            raise ValueError("provide l (frequency l-diversity) or privacy")
        if privacy is not None and hasattr(privacy, "to_dict"):
            privacy = privacy.to_dict()
        if csv_path is not None:
            with open(csv_path) as handle:
                csv_text = handle.read()
        if csv_text is not None:
            if not qi or not sa:
                raise ValueError("csv submissions require qi and sa")
            from urllib.parse import urlencode

            params: dict[str, str] = {
                "qi": ",".join(qi),
                "sa": sa,
                "algorithm": algorithm,
                "seed": str(seed),
            }
            if l is not None:
                params["l"] = str(l)
            if privacy is not None:
                params["privacy"] = json.dumps(privacy, separators=(",", ":"))
            if metrics:
                params["metrics"] = ",".join(metrics)
            if shards is not None:
                params["shards"] = str(shards)
            if backend is not None:
                params["backend"] = backend
            if not include_rows:
                params["include_rows"] = "false"
            _status, _headers, raw = self._request(
                "POST",
                "/v1/jobs?" + urlencode(params),
                body=csv_text.encode("utf-8"),
                content_type="text/csv",
            )
            return json.loads(raw.decode("utf-8"))["id"]
        payload: dict = {"algorithm": algorithm, "seed": seed}
        if l is not None:
            payload["l"] = l
        if privacy is not None:
            payload["privacy"] = privacy
        if not include_rows:
            payload["include_rows"] = False
        if metrics:
            payload["metrics"] = list(metrics)
        if shards is not None:
            payload["shards"] = shards
        if backend is not None:
            payload["backend"] = backend
        if rows is not None:
            payload["rows"] = rows
            payload["qi"] = list(qi or ())
            payload["sa"] = sa
            if columns is not None:
                payload["columns"] = list(columns)
        else:
            payload["source"] = source
        return self._json("POST", "/v1/jobs", payload)["id"]

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 120.0, poll_seconds: float = 0.05) -> dict:
        """Poll until the job reaches a terminal status; returns its record.

        Raises :class:`JobFailedError` when that status is not ``done`` and
        :class:`TimeoutError` when the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["status"] in TERMINAL_STATUSES:
                if record["status"] != "done":
                    raise JobFailedError(record)
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {record['status']} after {timeout}s")
            self._sleep(poll_seconds)

    def result(self, job_id: str) -> dict:
        """The JSON result payload of a done job (header, rows, metrics, tiers)."""
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def result_csv(self, job_id: str) -> str:
        """The published table of a done job as CSV text."""
        _status, _headers, raw = self._request(
            "GET", f"/v1/jobs/{job_id}/result?format=csv"
        )
        return raw.decode("utf-8")

    def job_metrics(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/metrics")

    def trace(self, job_id: str) -> dict:
        """The span tree of a recent job (``{"id", "request_id", "spans"}``)."""
        return self._json("GET", f"/v1/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel", {})

    def submit_and_wait(self, timeout: float = 120.0, **submit_fields) -> tuple[dict, dict]:
        """Submit, wait for ``done``, fetch the result; returns (record, result).

        For ``include_rows=False`` submissions the second element is the
        ``/metrics`` payload instead — the server keeps no table to return.
        """
        job_id = self.submit(**submit_fields)
        record = self.wait(job_id, timeout=timeout)
        if submit_fields.get("include_rows", True):
            return record, self.result(job_id)
        return record, self.job_metrics(job_id)
