"""Unified telemetry for the serving stack (:mod:`repro.obs`).

Three small, stdlib-only layers that every other subsystem reports through:

* :mod:`repro.obs.metrics` — labeled Counters, Gauges and fixed-bucket
  Histograms in a lock-guarded :class:`~repro.obs.metrics.MetricsRegistry`
  with Prometheus text-format exposition (``GET /v1/telemetry``);
* :mod:`repro.obs.trace` — request/trace ids minted by the client (or at
  ingress), echoed as ``X-Request-Id``, and cheap per-job span records
  (submit → queue-wait → attempt(s) → engine stages → publish) held in a
  bounded :class:`~repro.obs.trace.TraceStore` behind
  ``GET /v1/jobs/{id}/trace``;
* :mod:`repro.obs.log` — an opt-in JSON-lines log formatter carrying
  request id, job id, route and outcome (``serve --log-format json``).

The package deliberately imports nothing from the engine or server layers,
so any module — client, CLI, pool worker — can report through it without
layering cycles.
"""

from repro.obs.log import JsonLogFormatter, configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.trace import Span, TraceStore, new_request_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "Span",
    "TraceStore",
    "configure_logging",
    "new_request_id",
    "parse_prometheus_text",
]
