"""Structured (JSON-lines) logging for the serving stack.

Opt-in: ``repro serve --log-format json`` installs
:class:`JsonLogFormatter` on the root handler, after which every log record
renders as one JSON object per line::

    {"ts": "2026-08-08T12:00:00.123Z", "level": "warning",
     "logger": "repro.server", "message": "request failed",
     "request_id": "9f0c...", "route": "/v1/submit", "status": 503}

Context fields travel the normal :mod:`logging` way — pass them via
``extra=`` and the formatter lifts any it recognises into the JSON object::

    log.warning("request failed", extra={"request_id": rid, "status": 503})

The default ``--log-format text`` keeps the plain human-readable formatter,
so nothing changes for interactive use.
"""

from __future__ import annotations

import io
import json
import logging
import time
import traceback

__all__ = ["CONTEXT_FIELDS", "JsonLogFormatter", "configure_logging"]

#: ``extra=`` keys lifted verbatim into the JSON object when present.
CONTEXT_FIELDS = (
    "request_id",
    "job_id",
    "route",
    "method",
    "status",
    "outcome",
    "client",
    "attempts",
    "seconds",
    "error",
)

_TEXT_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"


class JsonLogFormatter(logging.Formatter):
    """Render each record as a single JSON line (UTC timestamps)."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict = {
            "ts": self.formatTime(record),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for name in CONTEXT_FIELDS:
            value = record.__dict__.get(name)
            if value is not None:
                entry[name] = value
        if record.exc_info and record.exc_info[0] is not None:
            buffer = io.StringIO()
            traceback.print_exception(*record.exc_info, file=buffer)
            entry["exception"] = buffer.getvalue().rstrip("\n")
        return json.dumps(entry, default=str)

    def formatTime(self, record: logging.LogRecord, datefmt: str | None = None) -> str:
        base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
        return f"{base}.{int(record.msecs):03d}Z"


def configure_logging(log_format: str = "text", level: int = logging.INFO) -> None:
    """Install the process-wide log formatter.

    ``log_format`` is ``"text"`` (human-readable, the default) or ``"json"``
    (one JSON object per line via :class:`JsonLogFormatter`).  Replaces any
    handlers configured earlier, so it is safe to call from tests.
    """
    if log_format not in ("text", "json"):
        raise ValueError(f"unknown log format: {log_format!r}")
    logging.basicConfig(level=level, format=_TEXT_FORMAT, force=True)
    if log_format == "json":
        for handler in logging.getLogger().handlers:
            handler.setFormatter(JsonLogFormatter())
