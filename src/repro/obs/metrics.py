"""Operational metrics: labeled counters, gauges, histograms, Prometheus text.

A :class:`MetricsRegistry` owns a set of named instruments; the server
exposes one registry per process over ``GET /v1/telemetry`` in the
Prometheus text exposition format (version 0.0.4).  Design constraints, in
order:

* **exactness under concurrency** — every mutation happens under the
  instrument's lock, so increments racing in from drainer tasks, executor
  callback threads and the event-loop thread are never lost (the historical
  hand-rolled ``stats`` dicts and bare ``pool.retries += 1`` ints gave no
  such guarantee);
* **near-zero cost when never scraped** — an increment is a dict update
  under an uncontended lock; nothing allocates per label set after the
  first observation and nothing renders until a scrape asks;
* **picklable snapshots** — :meth:`MetricsRegistry.snapshot` resolves every
  sample (callback gauges included) into plain dicts/floats, so a snapshot
  can cross a process boundary or be compared structurally in tests.

Instrument getters are idempotent: asking for an existing name returns the
existing instrument (and raises if the kind or label names disagree), so
independent subsystems can share a registry without coordination.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

#: Default histogram buckets: request/stage latencies from 1ms to 1min.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (+Inf, ints bare)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(names: tuple[str, ...], values: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Instrument:
    """Shared plumbing: name/help/label validation and the sample lock."""

    kind = ""

    def __init__(self, name: str, help: str, labels: Iterable[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.label_names = tuple(labels)
        for label in self.label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Instrument):
    """A monotonically increasing sum, optionally partitioned by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Iterable[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every label combination (handy for quick assertions)."""
        with self._lock:
            return sum(self._values.values())

    def _samples(self) -> list[dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in items
        ]

    def _render(self) -> list[str]:
        return [
            f"{self.name}"
            f"{_render_labels(self.label_names, tuple(s['labels'].values()))}"
            f" {_format_value(s['value'])}"
            for s in self._samples()
        ]


class Gauge(_Instrument):
    """A value that can go up and down — or be computed at scrape time.

    :meth:`set_function` binds a callback resolved on every scrape/snapshot,
    which is how cheap live values (queue depth, running jobs) are exported
    without a writer having to keep them in sync.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Iterable[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}
        self._functions: dict[tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._functions.pop(key, None)
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_function(self, function: Callable[[], float], **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values.pop(key, None)
            self._functions[key] = function

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            function = self._functions.get(key)
            if function is None:
                return self._values.get(key, 0.0)
        return float(function())

    def _samples(self) -> list[dict]:
        with self._lock:
            static = sorted(self._values.items())
            functions = sorted(self._functions.items())
        samples = [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in static
        ]
        # Callbacks run outside the lock: they may read other locked state
        # (pool properties) and must not be able to deadlock a scrape.
        samples.extend(
            {"labels": dict(zip(self.label_names, key)), "value": float(function())}
            for key, function in functions
        )
        samples.sort(key=lambda s: tuple(s["labels"].values()))
        return samples

    def _render(self) -> list[str]:
        return [
            f"{self.name}"
            f"{_render_labels(self.label_names, tuple(s['labels'].values()))}"
            f" {_format_value(s['value'])}"
            for s in self._samples()
        ]


class Histogram(_Instrument):
    """Fixed-bucket distribution of observations (cumulative on exposition)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} has duplicate buckets")
        self.buckets = bounds
        #: key -> [per-bucket counts..., +Inf count, sum]
        self._series: dict[tuple[str, ...], list[float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [0.0] * (len(self.buckets) + 2)
            series[index] += 1.0
            series[-1] += value

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return int(sum(series[:-1])) if series else 0

    def sum(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series[-1] if series else 0.0

    def _samples(self) -> list[dict]:
        with self._lock:
            items = sorted((key, list(series)) for key, series in self._series.items())
        samples = []
        for key, series in items:
            cumulative = []
            running = 0.0
            for count in series[:-1]:
                running += count
                cumulative.append(running)
            samples.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "buckets": {
                        bound: cumulative[index]
                        for index, bound in enumerate(self.buckets)
                    },
                    "count": running,
                    "sum": series[-1],
                }
            )
        return samples

    def _render(self) -> list[str]:
        lines = []
        for sample in self._samples():
            values = tuple(sample["labels"].values())
            for bound, count in sample["buckets"].items():
                labels = _render_labels(
                    self.label_names, values, extra=(("le", _format_value(bound)),)
                )
                lines.append(f"{self.name}_bucket{labels} {_format_value(count)}")
            labels = _render_labels(self.label_names, values, extra=(("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {_format_value(sample['count'])}")
            plain = _render_labels(self.label_names, values)
            lines.append(f"{self.name}_sum{plain} {_format_value(sample['sum'])}")
            lines.append(f"{self.name}_count{plain} {_format_value(sample['count'])}")
        return lines


class MetricsRegistry:
    """A named set of instruments with one text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}

    # ------------------------------------------------------------ instruments

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labels))

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, tuple(labels), buckets=buckets
        )

    def get(self, name: str) -> _Instrument:
        with self._lock:
            return self._metrics[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -------------------------------------------------------------- exposition

    def snapshot(self) -> dict[str, dict]:
        """Every instrument resolved into plain picklable dicts."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: {
                "kind": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "samples": metric._samples(),
            }
            for name, metric in metrics
        }

    def render(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    A deliberately small parser covering what :meth:`MetricsRegistry.render`
    emits (and what real exporters emit for these instrument kinds) — used
    by the smoke scripts to assert counters moved across a run.  Labels are
    returned as a sorted tuple of ``(name, value)`` pairs so sample keys
    hash and compare structurally.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = re.match(
            r"([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$", line
        )
        if match is None:
            raise ValueError(f"unparseable exposition line {line!r}")
        name, raw_labels, raw_value = match.groups()
        labels: list[tuple[str, str]] = []
        if raw_labels:
            for part in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', raw_labels):
                label_name, label_value = part
                label_value = (
                    label_value.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((label_name, label_value))
        value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        samples[(name, tuple(sorted(labels)))] = value
    return samples
