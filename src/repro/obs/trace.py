"""Request tracing: ids minted at the edge, cheap span records per job.

A **request id** is minted by :class:`repro.client.Client` (or by the server
at ingress when a request arrives without one), travels as the
``X-Request-Id`` header, is echoed on every response, persisted on the job's
ledger record, carried into the pool worker inside the job spec and surfaces
again in the engine's :class:`~repro.engine.core.RunReport` — one join key
from ``Client.submit`` to the engine's innermost stage timers.

A **span** is a named wall-clock interval with optional parent and
attributes; the server records one per lifecycle step::

    submit                      the HTTP submission handler
    queue-wait                  enqueue -> attempt start (per attempt)
    attempt-N                   one executor run of the job
      engine:<stage>            bridged from the worker's profiling snapshot
    publish                     recording the terminal result

The :class:`TraceStore` holds the spans of the most recent jobs in a bounded
LRU (traces are diagnostics, not durable state — a restarted server serves
traces for the jobs *it* ran).  All methods take the store lock, so the
event-loop thread and executor threads can record concurrently without
corrupting a trace.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["Span", "TraceStore", "new_request_id"]


def new_request_id() -> str:
    """A fresh 32-hex-character request/trace id."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class Span:
    """One named wall-clock interval inside a job's trace."""

    name: str
    #: Wall-clock start (``time.time()`` epoch seconds); 0.0 when the
    #: recorder only knew the duration (bridged engine stages).
    start: float = 0.0
    seconds: float = 0.0
    #: Name of the enclosing span (``None`` for top-level lifecycle spans).
    parent: str | None = None
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "parent": self.parent,
            "attributes": dict(self.attributes),
        }


class TraceStore:
    """Bounded in-memory span storage, keyed by job id."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: job id -> {"request_id": str, "spans": [Span], "marks": {name: t}}
        self._traces: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def begin(self, job_id: str, request_id: str) -> None:
        """Start (or restart) the trace of one job, evicting the oldest."""
        with self._lock:
            self._traces[job_id] = {
                "request_id": request_id,
                "spans": [],
                "marks": {},
            }
            self._traces.move_to_end(job_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def add(self, job_id: str, span: Span) -> None:
        """Append one span; silently ignored for unknown (evicted) jobs."""
        with self._lock:
            trace = self._traces.get(job_id)
            if trace is not None:
                trace["spans"].append(span)

    def mark(self, job_id: str, name: str, when: float | None = None) -> None:
        """Stamp a named instant (e.g. ``queued``) used to time later spans."""
        with self._lock:
            trace = self._traces.get(job_id)
            if trace is not None:
                trace["marks"][name] = time.time() if when is None else when

    def mark_at(self, job_id: str, name: str) -> float | None:
        with self._lock:
            trace = self._traces.get(job_id)
            return trace["marks"].get(name) if trace is not None else None

    def request_id(self, job_id: str) -> str | None:
        with self._lock:
            trace = self._traces.get(job_id)
            return trace["request_id"] if trace is not None else None

    def get(self, job_id: str) -> dict | None:
        """The trace of one job as a plain dict, or ``None`` when unknown."""
        with self._lock:
            trace = self._traces.get(job_id)
            if trace is None:
                return None
            return {
                "request_id": trace["request_id"],
                "spans": [span.to_dict() for span in trace["spans"]],
            }
