"""Additional anonymization principles (extension beyond the paper's figures).

Section 2 of the paper surveys the SA-aware principles that followed
k-anonymity; Section 7 lists "hardness and approximation for other privacy
principles" as future work.  This module implements *verification* for the
most common of those principles so that the tables produced by the package's
algorithms can be audited against them:

* entropy l-diversity and recursive (c, l)-diversity — the two stricter
  instantiations of "well-represented" from Machanavajjhala et al. [31];
* (alpha, k)-anonymity — Wong et al. [46];
* t-closeness — Li et al. [29], with the variational-distance instantiation
  for categorical sensitive attributes.

These are checkers, not publication algorithms: the frequency-based
l-diversity of the paper remains the optimization target.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.dataset.generalized import GeneralizedTable

__all__ = [
    "satisfies_entropy_l_diversity",
    "satisfies_recursive_cl_diversity",
    "satisfies_alpha_k_anonymity",
    "satisfies_t_closeness",
    "max_t_closeness_distance",
]

#: Floating-point slack applied to every boundary comparison.  Shared with
#: :mod:`repro.privacy.spec` (which imports it), so the first-class spec
#: checks and these standalone checkers can never disagree on boundary
#: histograms.
TOLERANCE = 1e-12


def _group_histograms(generalized: GeneralizedTable) -> list[Counter[int]]:
    return [
        Counter(generalized.sa_value(row) for row in rows)
        for rows in generalized.groups().values()
    ]


def satisfies_entropy_l_diversity(generalized: GeneralizedTable, l: float) -> bool:
    """Entropy l-diversity: every group's SA entropy is at least ``log(l)``."""
    if l <= 0:
        raise ValueError(f"l must be positive, got {l}")
    threshold = math.log(l)
    for histogram in _group_histograms(generalized):
        total = sum(histogram.values())
        entropy = -sum(
            (count / total) * math.log(count / total) for count in histogram.values()
        )
        if entropy + TOLERANCE < threshold:
            return False
    return True


def satisfies_recursive_cl_diversity(
    generalized: GeneralizedTable, c: float, l: int
) -> bool:
    """Recursive (c, l)-diversity: ``r_1 < c * (r_l + r_{l+1} + ... + r_m)``.

    ``r_i`` denotes the i-th largest SA frequency within a group.  Groups with
    fewer than ``l`` distinct sensitive values fail by definition.
    """
    if l < 1:
        raise ValueError(f"l must be >= 1, got {l}")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    for histogram in _group_histograms(generalized):
        frequencies = sorted(histogram.values(), reverse=True)
        if len(frequencies) < l:
            return False
        tail = sum(frequencies[l - 1:])
        if frequencies[0] >= c * tail:
            return False
    return True


def satisfies_alpha_k_anonymity(
    generalized: GeneralizedTable, alpha: float, k: int
) -> bool:
    """(alpha, k)-anonymity: groups of size >= k with every SA frequency <= alpha."""
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    for histogram in _group_histograms(generalized):
        total = sum(histogram.values())
        if total < k:
            return False
        if max(histogram.values()) > alpha * total + TOLERANCE:
            return False
    return True


def max_t_closeness_distance(generalized: GeneralizedTable) -> float:
    """The largest variational distance between a group's SA distribution and the table's.

    For categorical sensitive attributes the Earth Mover's Distance with the
    uniform ground metric reduces to the total variation distance
    ``0.5 * sum_v |P_group(v) - P_table(v)|``.
    """
    overall = Counter(generalized.sa_values)
    n = len(generalized)
    if n == 0:
        return 0.0
    worst = 0.0
    for histogram in _group_histograms(generalized):
        total = sum(histogram.values())
        distance = 0.5 * sum(
            abs(histogram.get(value, 0) / total - overall[value] / n) for value in overall
        )
        worst = max(worst, distance)
    return worst


def satisfies_t_closeness(generalized: GeneralizedTable, t: float) -> bool:
    """t-closeness: no group's SA distribution deviates from the table's by more than ``t``."""
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    return max_t_closeness_distance(generalized) <= t + TOLERANCE
