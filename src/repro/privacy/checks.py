"""Verification of anonymization principles on published tables."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dataset.generalized import GeneralizedTable

__all__ = [
    "DiversityReport",
    "adversary_confidence",
    "diversity_report",
    "verify_k_anonymity",
    "verify_l_diversity",
]


@dataclass(frozen=True)
class DiversityReport:
    """Per-group diversity statistics of a published table."""

    #: Number of QI-groups.
    group_count: int
    #: Smallest group size (the ``k`` for which the table is k-anonymous).
    min_group_size: int
    #: Largest within-group frequency of a single sensitive value, as a
    #: fraction of the group size (the best confidence an adversary who has
    #: located an individual's QI-group can achieve).
    max_confidence: float
    #: The largest ``l`` for which the table is l-diverse.
    achieved_l: int


def verify_l_diversity(generalized: GeneralizedTable, l: int) -> bool:
    """Whether the published table satisfies l-diversity (Definition 2)."""
    return generalized.is_l_diverse(l)


def verify_k_anonymity(generalized: GeneralizedTable, k: int) -> bool:
    """Whether every QI-group of the published table has at least ``k`` rows."""
    return generalized.is_k_anonymous(k)


def diversity_report(generalized: GeneralizedTable) -> DiversityReport:
    """Summarise the privacy level actually achieved by a published table."""
    groups = generalized.groups()
    if not groups:
        return DiversityReport(group_count=0, min_group_size=0, max_confidence=0.0, achieved_l=0)
    min_size = min(len(rows) for rows in groups.values())
    max_confidence = 0.0
    achieved_l = len(generalized)
    for rows in groups.values():
        counts = Counter(generalized.sa_value(row) for row in rows)
        top = max(counts.values())
        max_confidence = max(max_confidence, top / len(rows))
        achieved_l = min(achieved_l, len(rows) // top)
    return DiversityReport(
        group_count=len(groups),
        min_group_size=min_size,
        max_confidence=max_confidence,
        achieved_l=achieved_l,
    )


def adversary_confidence(generalized: GeneralizedTable) -> float:
    """Worst-case probability of inferring an individual's sensitive value.

    Equals ``1 / achieved_l`` rounded up to the actual worst group frequency;
    e.g. a 2-diverse table yields at most 0.5 (Section 1 of the paper).
    """
    return diversity_report(generalized).max_confidence
