"""Linking / homogeneity attack simulation (Section 1 of the paper).

The standard adversary model: the attacker knows (i) the exact QI values of
every individual in the microdata and (ii) that each individual has a record
in the published table.  Given a published (generalized) table, the attacker
matches an individual's QI values against the generalized cells, collects the
consistent published rows, and infers the individual's sensitive value as the
most frequent sensitive value among those rows.

The simulation reports, over all individuals, how often that inference is
correct and how confident it is — i.e. it quantifies the homogeneity attack
that breaks k-anonymity (Table 2 of the paper) and that l-diversity bounds by
``1 / l``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dataset.generalized import GeneralizedTable, cell_contains
from repro.dataset.table import Table

__all__ = ["AttackReport", "simulate_linking_attack"]


@dataclass(frozen=True)
class AttackReport:
    """Aggregate outcome of a simulated linking attack."""

    #: Number of individuals attacked (the table cardinality).
    individuals: int
    #: Fraction of individuals whose sensitive value the adversary guesses
    #: correctly when predicting the most frequent consistent value.
    correct_inference_rate: float
    #: Average confidence of the adversary's best guess.
    mean_confidence: float
    #: Worst-case confidence over all individuals.
    max_confidence: float
    #: Fraction of individuals for which the adversary's confidence exceeds
    #: the l-diversity bound ``1 / l`` would allow (0 for a truly l-diverse
    #: publication when ``l`` is passed; see :func:`simulate_linking_attack`).
    above_threshold_rate: float


def simulate_linking_attack(
    table: Table,
    generalized: GeneralizedTable,
    confidence_threshold: float | None = None,
) -> AttackReport:
    """Attack ``generalized`` with full QI background knowledge from ``table``.

    Parameters
    ----------
    table:
        The original microdata (provides each individual's true QI and SA).
    generalized:
        The published table (same row order as ``table``).
    confidence_threshold:
        When given (e.g. ``1 / l``), also report how many individuals the
        adversary can attack with strictly higher confidence.
    """
    if len(table) != len(generalized):
        raise ValueError("table and generalization must have the same number of rows")
    n = len(table)
    if n == 0:
        return AttackReport(0, 0.0, 0.0, 0.0, 0.0)

    domain_sizes = [attribute.size for attribute in table.schema.qi]
    groups = generalized.groups()
    # For suppression-style outputs every row of a group shares its cells, so
    # match once per group and reuse the group's SA histogram.
    group_cells = {
        group_id: generalized.row_cells(rows[0]) for group_id, rows in groups.items()
    }
    group_histograms = {
        group_id: Counter(generalized.sa_value(row) for row in rows)
        for group_id, rows in groups.items()
    }

    correct = 0
    total_confidence = 0.0
    max_confidence = 0.0
    above_threshold = 0
    for row in range(n):
        qi = table.qi_row(row)
        consistent: Counter[int] = Counter()
        for group_id, cells in group_cells.items():
            if all(
                cell_contains(cells[position], qi[position], domain_sizes[position])
                for position in range(len(qi))
            ):
                consistent.update(group_histograms[group_id])
        if not consistent:
            # Cannot happen for a correct generalization: the individual's own
            # published row is always consistent with its true QI values.
            continue
        guess, count = max(consistent.items(), key=lambda item: (item[1], -item[0]))
        confidence = count / sum(consistent.values())
        total_confidence += confidence
        max_confidence = max(max_confidence, confidence)
        if guess == table.sa_value(row):
            correct += 1
        if confidence_threshold is not None and confidence > confidence_threshold + 1e-12:
            above_threshold += 1

    return AttackReport(
        individuals=n,
        correct_inference_rate=correct / n,
        mean_confidence=total_confidence / n,
        max_confidence=max_confidence,
        above_threshold_rate=above_threshold / n,
    )
