"""First-class privacy models: the :class:`PrivacySpec` hierarchy and registry.

Section 7 of the paper names "hardness and approximation for other privacy
principles" as the open direction, and :mod:`repro.privacy.principles`
already *checks* several of them — but historically every layer of the stack
threaded a bare ``l: int`` and could only request frequency l-diversity.
This module promotes the scalar into a first-class abstraction:

* :class:`FrequencyLDiversity` — the paper's optimization target and the
  default everywhere (``l=`` keeps working as sugar for it);
* :class:`EntropyLDiversity` and :class:`RecursiveCLDiversity` — the two
  stricter "well-represented" instantiations of Machanavajjhala et al.;
* :class:`AlphaKAnonymity` — Wong et al.'s (alpha, k)-anonymity;
* :class:`KAnonymity` — the SA-blind degenerate case (group sizes only);
* :class:`TCloseness` — Li et al.'s t-closeness, registered **check-only**:
  it constrains each group against the *table-wide* SA distribution, so it
  can be audited (``ldiversity verify --privacy t-closeness``) but not
  requested as an anonymization target.

Every spec is a frozen, picklable dataclass with a canonical serialization
(:meth:`PrivacySpec.to_dict` / :func:`privacy_from_dict`) and a canonical
:meth:`PrivacySpec.token` used in cache/store keys, and answers three
questions uniformly over SA histograms (``value -> count`` mappings):

* :meth:`PrivacySpec.check` — does one published QI-group satisfy the spec?
* :meth:`PrivacySpec.eligible` — can a table/shard with this SA histogram be
  anonymized under the spec at all (the generalization of l-eligibility)?
* :meth:`PrivacySpec.group_floor` — the minimum rows per group the spec
  implies (the generalization of ``l`` in the sharding merge bound).

The core algorithms optimize frequency l-diversity; each spec names the
frequency parameter they should run at (:meth:`PrivacySpec.anonymize_l`) and
:func:`enforce_spec` provides the post-anonymization **repair pass**: when
the requested spec is stricter than the frequency guarantee the algorithms
produce, offending QI-groups are re-merged (adjacent in group order, the
same greedy repair as shard eligibility) until every group passes — the
single-group fallback coincides with the spec's eligibility condition, so a
run that passed :meth:`eligible` always repairs successfully.  Specs the
frequency guarantee already implies (:meth:`PrivacySpec.implied_by_frequency`
— everything except recursive (c, l)-diversity with ``c <= 1``) skip the
pass entirely: the published table is bit-identical to the pre-spec code
path, and a violating group surfaces as a verification error (an algorithm
or merge-invariant bug) instead of being silently repaired.

:class:`PrivacyRegistry` mirrors the algorithm/metric registries: the single
source of truth the CLI flags, the HTTP ``privacy`` payload validation and
``GET /v1/privacy`` introspection are all derived from.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

from repro.backend import vectorized_enabled
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Attribute, Schema, Table
from repro.errors import DuplicateRegistrationError, UnknownEntryError, VerificationError
from repro.privacy.principles import TOLERANCE as _EPSILON

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "AlphaKAnonymity",
    "EntropyLDiversity",
    "FrequencyLDiversity",
    "KAnonymity",
    "PrivacyModelInfo",
    "PrivacyRegistry",
    "PrivacySpec",
    "RecursiveCLDiversity",
    "TCloseness",
    "enforce_spec",
    "group_histograms",
    "privacy_from_dict",
    "privacy_registry",
    "resolve_privacy",
]

def group_histograms(generalized: GeneralizedTable) -> list[Counter]:
    """Per-QI-group sensitive-value histograms of a published table.

    Histograms come out in the same first-appearance group order as
    ``generalized.groups()``.  On the vectorized backend the Counters are
    assembled from the table's sparse per-(group, SA) count triples — one
    columnar pass instead of a Python Counter fill per group.
    """
    if vectorized_enabled() and len(generalized):
        gids = generalized.group_ids_array()
        if int(gids.min()) >= 0:
            triple_gids, values, counts = generalized.group_sa_counts()
            starts = np.concatenate(
                ([0], np.flatnonzero(triple_gids[1:] != triple_gids[:-1]) + 1)
            )
            ends = np.concatenate((starts[1:], [triple_gids.shape[0]]))
            # First forward occurrence of each group id: reversed fancy
            # assignment leaves the smallest row index in each slot, which
            # ranks the blocks in the groups() first-appearance order.
            position = np.empty(int(gids.max()) + 1, dtype=np.int64)
            position[gids[::-1]] = np.arange(gids.shape[0] - 1, -1, -1)
            appearance = np.argsort(position[triple_gids[starts]], kind="stable")
            values_list = values.tolist()
            counts_list = counts.tolist()
            starts_list = starts.tolist()
            ends_list = ends.tolist()
            return [
                Counter(
                    dict(
                        zip(
                            values_list[starts_list[block] : ends_list[block]],
                            counts_list[starts_list[block] : ends_list[block]],
                        )
                    )
                )
                for block in appearance.tolist()
            ]
    sa_values = generalized.sa_values
    return [
        Counter(sa_values[row] for row in rows)
        for rows in generalized.groups().values()
    ]


def _sa_total(generalized: GeneralizedTable) -> Counter:
    """The table-wide SA histogram (one bincount on the vectorized backend)."""
    if vectorized_enabled() and len(generalized):
        codes = generalized.sa_codes()
        if int(codes.min()) >= 0:
            counts = np.bincount(codes)
            present = np.flatnonzero(counts)
            return Counter(dict(zip(present.tolist(), counts[present].tolist())))
    return Counter(generalized.sa_values)


@dataclass(frozen=True)
class PrivacySpec:
    """Base class of all privacy models.

    Subclasses are frozen dataclasses whose fields are the model parameters;
    they must set :attr:`kind` and implement :meth:`check`,
    :meth:`group_floor` and (unless check-only) :meth:`anonymize_l`.
    """

    #: Registry name of the model ("frequency-l", "entropy-l", ...).
    kind: ClassVar[str] = ""
    #: Whether the model can be requested as an anonymization target.  A
    #: check-only model (t-closeness) is still usable for auditing.
    enforceable: ClassVar[bool] = True
    #: Whether the model ignores the sensitive attribute entirely
    #: (k-anonymity); SA-blind models anonymize a surrogate table whose SA
    #: values are all distinct, turning frequency-l into a pure size floor.
    sa_blind: ClassVar[bool] = False

    # ------------------------------------------------------------- semantics

    def check(self, histogram: Mapping, total: Mapping | None = None) -> bool:
        """Whether one published QI-group with this SA histogram satisfies the spec.

        ``total`` is the table-wide SA histogram; only models defined
        relative to the overall distribution (t-closeness) consult it.
        """
        raise NotImplementedError

    def group_floor(self) -> int:
        """The minimum number of rows per QI-group the spec implies."""
        raise NotImplementedError

    def anonymize_l(self) -> int:
        """The frequency-l parameter the core algorithms should run at.

        Chosen so the frequency guarantee implies the spec whenever it can
        (alpha-k, k-anonymity) and gives :func:`enforce_spec` the best
        starting point otherwise (entropy / recursive diversity).
        """
        raise NotImplementedError

    def implied_by_frequency(self) -> bool:
        """Whether frequency l-diversity at :meth:`anonymize_l` provably
        implies this spec's per-group condition.

        For implied specs the enforcement pass is skipped entirely: a
        violating group can only mean a broken algorithm or merge invariant,
        which must surface as a verification error, never be silently
        repaired away.  The only registered spec that is *not* implied is
        recursive (c, l)-diversity with ``c <= 1``.
        """
        return True

    def eligible(self, histogram: Mapping, size: int) -> bool:
        """Whether a table/shard with this SA histogram admits a satisfying
        generalization (the spec-generalized l-eligibility condition).

        The default requires frequency-eligibility at :meth:`anonymize_l`
        (so the core algorithms can run) *and* :meth:`check` of the whole
        histogram (so the repair pass's single-group fallback passes).
        """
        if size <= 0:
            return False
        if histogram and max(histogram.values()) * self.anonymize_l() > size:
            return False
        return self.check(histogram, total=histogram)

    def check_generalized(self, generalized: GeneralizedTable) -> bool:
        """Whether every QI-group of a published table satisfies the spec."""
        total = _sa_total(generalized)
        return all(
            self.check(histogram, total) for histogram in group_histograms(generalized)
        )

    def prepare_table(self, table: Table) -> Table:
        """The table the core algorithms should run on (identity by default).

        SA-blind models return a surrogate with an all-distinct sensitive
        column, under which frequency l-diversity degenerates to a pure
        group-size floor.
        """
        return table

    # --------------------------------------------------------- serialization

    def params(self) -> dict:
        """The model parameters as a plain dict (dataclass fields)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    def to_dict(self) -> dict:
        """Canonical JSON-ready encoding: ``{"kind": ..., **params}``."""
        return {"kind": self.kind, **self.params()}

    def token(self) -> str:
        """Canonical string encoding used in cache/store keys.

        Deterministic across processes: parameters are sorted by name and
        numbers are normalized at construction time (see ``_as_float``).
        """
        params = ",".join(
            f"{name}={value}" for name, value in sorted(self.params().items())
        )
        return f"{self.kind}({params})"

    def describe(self) -> str:
        """Human-readable name of the spec (same as the canonical token)."""
        return self.token()


def _as_int(name: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    return value


def _as_float(name: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class FrequencyLDiversity(PrivacySpec):
    """The paper's frequency l-diversity: ``max SA frequency * l <= group size``."""

    l: int

    kind: ClassVar[str] = "frequency-l"

    def __post_init__(self) -> None:
        if _as_int("l", self.l) < 1:
            raise ValueError(f"l must be >= 1, got {self.l}")

    def check(self, histogram: Mapping, total: Mapping | None = None) -> bool:
        if not histogram:
            return False
        return max(histogram.values()) * self.l <= sum(histogram.values())

    def check_generalized(self, generalized: GeneralizedTable) -> bool:
        return generalized.is_l_diverse(self.l)

    def group_floor(self) -> int:
        return self.l

    def anonymize_l(self) -> int:
        return self.l


@dataclass(frozen=True)
class EntropyLDiversity(PrivacySpec):
    """Entropy l-diversity: every group's SA entropy is at least ``log(l)``.

    ``l`` may be non-integral (the threshold is continuous).  Strictly
    stronger than frequency l-diversity is *not* guaranteed by the core
    algorithms, so runs under this spec rely on the repair pass.
    """

    l: float

    kind: ClassVar[str] = "entropy-l"

    def __post_init__(self) -> None:
        value = _as_float("l", self.l)
        if value <= 0:
            raise ValueError(f"l must be positive, got {self.l}")
        object.__setattr__(self, "l", value)

    def check(self, histogram: Mapping, total: Mapping | None = None) -> bool:
        if not histogram:
            return False
        size = sum(histogram.values())
        entropy = -sum(
            (count / size) * math.log(count / size) for count in histogram.values()
        )
        return entropy + _EPSILON >= math.log(self.l)

    def group_floor(self) -> int:
        # log(l) entropy needs at least ceil(l) distinct values, hence rows.
        return max(1, math.ceil(self.l))

    def anonymize_l(self) -> int:
        return max(2, math.ceil(self.l))


@dataclass(frozen=True)
class RecursiveCLDiversity(PrivacySpec):
    """Recursive (c, l)-diversity: ``r_1 < c * (r_l + ... + r_m)``."""

    c: float
    l: int

    kind: ClassVar[str] = "recursive-cl"

    def __post_init__(self) -> None:
        if _as_float("c", self.c) <= 0:
            raise ValueError(f"c must be positive, got {self.c}")
        object.__setattr__(self, "c", float(self.c))
        if _as_int("l", self.l) < 1:
            raise ValueError(f"l must be >= 1, got {self.l}")

    def check(self, histogram: Mapping, total: Mapping | None = None) -> bool:
        frequencies = sorted(histogram.values(), reverse=True)
        if len(frequencies) < self.l:
            return False
        tail = sum(frequencies[self.l - 1:])
        return frequencies[0] < self.c * tail

    def implied_by_frequency(self) -> bool:
        # max <= size/l gives r1 <= r_l + ... + r_m (the tail holds at least
        # the l-th through last frequencies, which sum to >= size - (l-1)*r1
        # >= r1), so r1 < c * tail holds for every c > 1 but can fail at
        # c <= 1 — the one spec that genuinely needs the repair pass.
        return self.c > 1

    def group_floor(self) -> int:
        return self.l

    def anonymize_l(self) -> int:
        return max(2, self.l)


@dataclass(frozen=True)
class AlphaKAnonymity(PrivacySpec):
    """(alpha, k)-anonymity: groups of >= k rows, every SA frequency <= alpha.

    Frequency l-diversity at ``l = max(k, ceil(1/alpha))`` implies this
    spec, so the repair pass is a proven no-op for it.
    """

    alpha: float
    k: int

    kind: ClassVar[str] = "alpha-k"

    def __post_init__(self) -> None:
        value = _as_float("alpha", self.alpha)
        if not 0 < value <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        object.__setattr__(self, "alpha", value)
        if _as_int("k", self.k) < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def check(self, histogram: Mapping, total: Mapping | None = None) -> bool:
        if not histogram:
            return False
        size = sum(histogram.values())
        if size < self.k:
            return False
        return max(histogram.values()) <= self.alpha * size + _EPSILON

    def group_floor(self) -> int:
        return max(self.k, math.ceil(1.0 / self.alpha))

    def anonymize_l(self) -> int:
        return max(2, self.k, math.ceil(1.0 / self.alpha))


@dataclass(frozen=True)
class KAnonymity(PrivacySpec):
    """k-anonymity: every QI-group holds at least ``k`` rows (SA-blind).

    The degenerate case of the hierarchy: the sensitive column plays no
    role, so the core algorithms run on a surrogate table whose SA values
    are all distinct — frequency l-diversity at ``l = max(2, k)`` on that
    table is exactly a group-size floor — and the published table is
    rebuilt from the output partition against the original table.
    """

    k: int

    kind: ClassVar[str] = "k-anonymity"
    sa_blind: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if _as_int("k", self.k) < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def check(self, histogram: Mapping, total: Mapping | None = None) -> bool:
        return sum(histogram.values()) >= self.k

    def check_generalized(self, generalized: GeneralizedTable) -> bool:
        return generalized.is_k_anonymous(self.k)

    def eligible(self, histogram: Mapping, size: int) -> bool:
        # SA-blind: any table with enough rows for one group is anonymizable.
        return size >= self.anonymize_l()

    def group_floor(self) -> int:
        return self.k

    def anonymize_l(self) -> int:
        return max(2, self.k)

    def prepare_table(self, table: Table) -> Table:
        surrogate = Attribute("__row__", tuple(range(max(len(table), 1))))
        schema = Schema(qi=table.schema.qi, sensitive=surrogate)
        return Table.from_arrays(
            schema, table.qi_columns, np.arange(len(table), dtype=np.int32)
        )


@dataclass(frozen=True)
class TCloseness(PrivacySpec):
    """t-closeness (variational distance), registered **check-only**.

    Defined relative to the table-wide SA distribution, so it cannot be
    enforced shard-locally; it is available to every verification surface
    (``ldiversity verify --privacy t-closeness --t 0.3``) but rejected as an
    anonymization target.
    """

    t: float

    kind: ClassVar[str] = "t-closeness"
    enforceable: ClassVar[bool] = False

    def __post_init__(self) -> None:
        value = _as_float("t", self.t)
        if value < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        object.__setattr__(self, "t", value)

    def check(self, histogram: Mapping, total: Mapping | None = None) -> bool:
        if not histogram:
            return False
        if total is None:
            raise ValueError(
                "t-closeness needs the table-wide SA histogram (total=...)"
            )
        size = sum(histogram.values())
        n = sum(total.values())
        if n == 0:
            return True
        distance = 0.5 * sum(
            abs(histogram.get(value, 0) / size - count / n)
            for value, count in total.items()
        )
        return distance <= self.t + _EPSILON

    def group_floor(self) -> int:
        return 1

    def implied_by_frequency(self) -> bool:
        return False  # never enforced anyway: the model is check-only

    def anonymize_l(self) -> int:
        raise ValueError(
            "t-closeness is a check-only privacy model; it cannot be "
            "requested as an anonymization target"
        )

    def eligible(self, histogram: Mapping, size: int) -> bool:
        return size > 0


# ------------------------------------------------------------------ registry


@dataclass(frozen=True)
class PrivacyModelInfo:
    """A registered privacy model plus its parameter schema."""

    name: str
    cls: type[PrivacySpec]
    #: Parameter name -> JSON-schema-flavoured constraints ("type" of
    #: "integer" or "number" plus bounds); every parameter is required.
    params_schema: dict[str, dict]
    enforceable: bool = True
    description: str = ""


class PrivacyRegistry:
    """Name -> :class:`PrivacyModelInfo` mapping, mirroring the algorithm
    and metric registries (single source of truth for CLI flags, HTTP
    payload validation and ``GET /v1/privacy``)."""

    kind = "privacy model"

    def __init__(self) -> None:
        self._entries: dict[str, PrivacyModelInfo] = {}

    def register(
        self, params: dict[str, dict], description: str = ""
    ) -> Callable[[type[PrivacySpec]], type[PrivacySpec]]:
        """Class decorator: register a spec class under its ``kind``."""

        def decorate(cls: type[PrivacySpec]) -> type[PrivacySpec]:
            if not cls.kind:
                raise ValueError(f"{cls.__name__} does not declare a kind")
            if cls.kind in self._entries:
                raise DuplicateRegistrationError(
                    f"{self.kind} {cls.kind!r} is already registered"
                )
            field_names = {field.name for field in dataclasses.fields(cls)}
            if set(params) != field_names:
                raise ValueError(
                    f"{cls.__name__} params schema {sorted(params)} does not "
                    f"match its fields {sorted(field_names)}"
                )
            self._entries[cls.kind] = PrivacyModelInfo(
                name=cls.kind,
                cls=cls,
                params_schema=params,
                enforceable=cls.enforceable,
                description=description,
            )
            return cls

        return decorate

    def get(self, name: str) -> PrivacyModelInfo:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entries(self) -> list[PrivacyModelInfo]:
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


privacy_registry = PrivacyRegistry()

privacy_registry.register(
    {"l": {"type": "integer", "minimum": 1}},
    description="frequency l-diversity (the paper's target; the default)",
)(FrequencyLDiversity)
privacy_registry.register(
    {"l": {"type": "number", "exclusiveMinimum": 0}},
    description="entropy l-diversity: per-group SA entropy >= log(l)",
)(EntropyLDiversity)
privacy_registry.register(
    {
        "c": {"type": "number", "exclusiveMinimum": 0},
        "l": {"type": "integer", "minimum": 1},
    },
    description="recursive (c, l)-diversity: r1 < c * (r_l + ... + r_m)",
)(RecursiveCLDiversity)
privacy_registry.register(
    {
        "alpha": {"type": "number", "exclusiveMinimum": 0, "maximum": 1},
        "k": {"type": "integer", "minimum": 1},
    },
    description="(alpha, k)-anonymity: group size >= k, SA frequencies <= alpha",
)(AlphaKAnonymity)
privacy_registry.register(
    {"k": {"type": "integer", "minimum": 1}},
    description="k-anonymity: group size >= k (sensitive-attribute-blind)",
)(KAnonymity)
privacy_registry.register(
    {"t": {"type": "number", "minimum": 0}},
    description="t-closeness (variational distance); check-only",
)(TCloseness)


def privacy_from_dict(payload: Mapping) -> PrivacySpec:
    """Build a spec from its canonical dict encoding, validated against the registry."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"privacy spec must be an object, got {payload!r}")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise ValueError(f"privacy spec needs a 'kind' string, got {kind!r}")
    info = privacy_registry.get(kind)  # raises UnknownEntryError
    params = {key: value for key, value in payload.items() if key != "kind"}
    unknown = sorted(set(params) - set(info.params_schema))
    if unknown:
        raise ValueError(
            f"privacy model {kind!r} does not take parameters {unknown}; "
            f"known: {sorted(info.params_schema)}"
        )
    missing = sorted(set(info.params_schema) - set(params))
    if missing:
        raise ValueError(f"privacy model {kind!r} requires parameters {missing}")
    for name, schema in info.params_schema.items():
        value = params[name]
        if schema["type"] == "integer":
            params[name] = _as_int(name, value)
        else:
            params[name] = _as_float(name, value)
    return info.cls(**params)


def resolve_privacy(
    privacy: "PrivacySpec | Mapping | int | None", l: int | None = None
) -> PrivacySpec:
    """Resolve the ``privacy`` field of a plan/request to a concrete spec.

    ``None`` keeps the historical contract: a bare ``l`` is sugar for
    :class:`FrequencyLDiversity`.  An ``int`` is the same sugar for call
    sites that thread one scalar (sharding helpers), a mapping is the wire
    encoding, and a spec passes through unchanged.
    """
    if privacy is None:
        if l is None:
            raise ValueError("resolve_privacy needs either a privacy spec or l")
        return FrequencyLDiversity(int(l))
    if isinstance(privacy, PrivacySpec):
        return privacy
    if isinstance(privacy, bool):
        raise ValueError(f"cannot interpret {privacy!r} as a privacy spec")
    if isinstance(privacy, int):
        return FrequencyLDiversity(privacy)
    if isinstance(privacy, Mapping):
        return privacy_from_dict(privacy)
    raise ValueError(f"cannot interpret {privacy!r} as a privacy spec")


# ------------------------------------------------------------------- enforce


def enforce_spec(
    table: Table, generalized: GeneralizedTable, spec: PrivacySpec
) -> tuple[GeneralizedTable, int]:
    """Post-anonymization repair: merge offending QI-groups until every group
    satisfies ``spec``.

    Returns ``(published, merges)``.  When every group already passes — the
    guaranteed case for the default frequency spec and for specs implied by
    the frequency guarantee — the *same* :class:`GeneralizedTable` object is
    returned with ``merges == 0``, so the default path stays bit-identical.

    Offending groups are merged with their neighbour in ascending group-id
    order (the same greedy repair as shard eligibility) and the published
    table is rebuilt from the merged partition against the source ``table``.
    The single-group fallback is exactly the spec's eligibility condition,
    so a table that passed :meth:`PrivacySpec.eligible` always repairs;
    :class:`~repro.errors.VerificationError` is raised otherwise.
    """
    groups = generalized.groups()
    sa_values = generalized.sa_values
    total = Counter(sa_values)
    clusters: list[tuple[list[int], Counter]] = []
    for group_id in sorted(groups):
        rows = list(groups[group_id])
        clusters.append((rows, Counter(sa_values[row] for row in rows)))
    if all(spec.check(histogram, total) for _, histogram in clusters):
        return generalized, 0

    merges = 0

    def merge_into_last(
        repaired: list[tuple[list[int], Counter]], cluster: tuple[list[int], Counter]
    ) -> None:
        nonlocal merges
        rows, histogram = repaired[-1]
        repaired[-1] = (rows + cluster[0], histogram + cluster[1])
        merges += 1

    while len(clusters) > 1:
        merged_any = False
        repaired: list[tuple[list[int], Counter]] = []
        for cluster in clusters:
            if repaired and not spec.check(repaired[-1][1], total):
                merge_into_last(repaired, cluster)
                merged_any = True
            else:
                repaired.append(cluster)
        if len(repaired) > 1 and not spec.check(repaired[-1][1], total):
            last = repaired.pop()
            merge_into_last(repaired, last)
            merged_any = True
        clusters = repaired
        if not merged_any:
            break
    if not all(spec.check(histogram, total) for _, histogram in clusters):
        raise VerificationError(
            f"published table cannot be repaired to satisfy {spec.describe()}: "
            "even fully merged groups violate it"
        )
    partition = Partition.trusted([rows for rows, _ in clusters], len(generalized))
    return GeneralizedTable.from_partition(table, partition), merges
