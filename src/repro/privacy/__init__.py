"""Privacy verification and attack simulation.

* :mod:`repro.privacy.checks` — verify that published tables satisfy
  l-diversity / k-anonymity and quantify the worst-case adversary confidence;
* :mod:`repro.privacy.attack` — simulate the linking and homogeneity attacks
  of Section 1 against a published table, given an adversary who knows every
  individual's QI values;
* :mod:`repro.privacy.principles` — checkers for the related SA-aware
  principles surveyed in Section 2 (entropy / recursive l-diversity,
  (alpha, k)-anonymity, t-closeness).
"""

from repro.privacy.attack import AttackReport, simulate_linking_attack
from repro.privacy.checks import (
    DiversityReport,
    adversary_confidence,
    diversity_report,
    verify_k_anonymity,
    verify_l_diversity,
)
from repro.privacy.principles import (
    max_t_closeness_distance,
    satisfies_alpha_k_anonymity,
    satisfies_entropy_l_diversity,
    satisfies_recursive_cl_diversity,
    satisfies_t_closeness,
)

__all__ = [
    "AttackReport",
    "DiversityReport",
    "adversary_confidence",
    "diversity_report",
    "max_t_closeness_distance",
    "satisfies_alpha_k_anonymity",
    "satisfies_entropy_l_diversity",
    "satisfies_recursive_cl_diversity",
    "satisfies_t_closeness",
    "simulate_linking_attack",
    "verify_k_anonymity",
    "verify_l_diversity",
]
