"""Privacy verification and attack simulation.

* :mod:`repro.privacy.checks` — verify that published tables satisfy
  l-diversity / k-anonymity and quantify the worst-case adversary confidence;
* :mod:`repro.privacy.attack` — simulate the linking and homogeneity attacks
  of Section 1 against a published table, given an adversary who knows every
  individual's QI values;
* :mod:`repro.privacy.principles` — checkers for the related SA-aware
  principles surveyed in Section 2 (entropy / recursive l-diversity,
  (alpha, k)-anonymity, t-closeness);
* :mod:`repro.privacy.spec` — the first-class :class:`PrivacySpec` hierarchy
  and registry those principles are requested/enforced/served through.
"""

from repro.privacy.attack import AttackReport, simulate_linking_attack
from repro.privacy.checks import (
    DiversityReport,
    adversary_confidence,
    diversity_report,
    verify_k_anonymity,
    verify_l_diversity,
)
from repro.privacy.principles import (
    max_t_closeness_distance,
    satisfies_alpha_k_anonymity,
    satisfies_entropy_l_diversity,
    satisfies_recursive_cl_diversity,
    satisfies_t_closeness,
)
from repro.privacy.spec import (
    AlphaKAnonymity,
    EntropyLDiversity,
    FrequencyLDiversity,
    KAnonymity,
    PrivacyModelInfo,
    PrivacyRegistry,
    PrivacySpec,
    RecursiveCLDiversity,
    TCloseness,
    enforce_spec,
    privacy_from_dict,
    privacy_registry,
    resolve_privacy,
)

__all__ = [
    "AlphaKAnonymity",
    "AttackReport",
    "DiversityReport",
    "EntropyLDiversity",
    "FrequencyLDiversity",
    "KAnonymity",
    "PrivacyModelInfo",
    "PrivacyRegistry",
    "PrivacySpec",
    "RecursiveCLDiversity",
    "TCloseness",
    "adversary_confidence",
    "diversity_report",
    "enforce_spec",
    "max_t_closeness_distance",
    "privacy_from_dict",
    "privacy_registry",
    "resolve_privacy",
    "satisfies_alpha_k_anonymity",
    "satisfies_entropy_l_diversity",
    "satisfies_recursive_cl_diversity",
    "satisfies_t_closeness",
    "simulate_linking_attack",
    "verify_k_anonymity",
    "verify_l_diversity",
]
