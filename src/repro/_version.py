"""Single source of truth for the package version.

``setup.py`` exec's this file (it must stay importable without the package's
dependencies installed), ``repro.__init__`` re-exports it, the CLI's
``--version`` flag prints it, and the HTTP server reports it in
``GET /v1/health``.
"""

__version__ = "1.0.0"
