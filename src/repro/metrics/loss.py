"""Auxiliary information-loss measures (extension experiments).

These metrics are not part of the paper's figures but are standard in the
anonymization literature and useful when comparing suppression against the
generalization baselines on equal footing:

* NCP / GCP — (global) certainty penalty: how much of each attribute's domain
  a generalized cell spans;
* discernibility — the classic ``sum over groups of |G|^2`` penalty;
* average group size.

NCP and discernibility run as group-level reductions over the generalized
table's shared per-group caches (star flags and sizes seeded by
``from_partition``, the bincount of the group-id vector otherwise); the
``*_unfused`` variants retain the historical full-table reductions as the
measured-against baselines for the scale-smoke regression guard, and the
``*_reference`` variants retain the pure-Python loops as oracles for the
property tests.
"""

from __future__ import annotations

import numpy as np

from repro.backend import vectorized_enabled
from repro.dataset.generalized import GeneralizedTable, cell_size

__all__ = [
    "ncp",
    "ncp_reference",
    "ncp_unfused",
    "gcp",
    "discernibility",
    "discernibility_reference",
    "discernibility_unfused",
    "average_group_size",
]


def ncp(generalized: GeneralizedTable) -> float:
    """Normalized Certainty Penalty summed over all QI cells.

    A cell spanning ``w`` of the ``|dom|`` values of its attribute costs
    ``(w - 1) / (|dom| - 1)`` (0 for exact cells, 1 for stars); single-valued
    domains cost nothing.

    Suppression tables carry per-group star flags, so the penalty collapses
    to (stars among multi-valued attributes per group) x (group size) — a
    reduction over ``s`` groups instead of ``n`` rows.  Every cell penalty
    is 0.0 or 1.0 and the partial sums are exact integers, so the group
    path is bit-identical to the row-level ``width_matrix`` reduction.
    """
    if not vectorized_enabled():
        return ncp_reference(generalized)
    if len(generalized) == 0 or generalized.dimension == 0:
        return 0.0
    star = generalized.group_star_flags()
    if star is not None:
        sizes = generalized.group_sizes_array()
        if sizes.shape[0] == star.shape[0]:
            multi = np.asarray(
                [attribute.size > 1 for attribute in generalized.schema.qi], dtype=bool
            )
            if not multi.any():
                return 0.0
            per_group = star[:, multi].sum(axis=1).astype(np.int64)
            return float((per_group * sizes).sum())
    return ncp_unfused(generalized)


def ncp_unfused(generalized: GeneralizedTable) -> float:
    """The historical full-table reduction over the ``(n, d)`` width matrix.

    The generic path for tables without per-group star flags (sub-domain
    baselines), and the measured-against baseline for the fused-metrics
    regression guard.
    """
    if not vectorized_enabled():
        return ncp_reference(generalized)
    if len(generalized) == 0 or generalized.dimension == 0:
        return 0.0
    sizes = np.asarray([attribute.size for attribute in generalized.schema.qi], dtype=np.float64)
    widths = generalized.width_matrix()
    multi = sizes > 1
    if not multi.any():
        return 0.0
    penalties = (widths[:, multi] - 1.0) / (sizes[multi] - 1.0)
    return float(penalties.sum())


def ncp_reference(generalized: GeneralizedTable) -> float:
    """Pure-Python NCP (the oracle for the vectorized path)."""
    total = 0.0
    sizes = [attribute.size for attribute in generalized.schema.qi]
    for row in range(len(generalized)):
        cells = generalized.row_cells(row)
        for position, size in enumerate(sizes):
            if size <= 1:
                continue
            width = cell_size(cells[position], size)
            total += (width - 1) / (size - 1)
    return total


def gcp(generalized: GeneralizedTable) -> float:
    """Global Certainty Penalty: NCP normalized to [0, 1] by ``n * d``."""
    cells = len(generalized) * generalized.dimension
    if cells == 0:
        return 0.0
    return ncp(generalized) / cells


def discernibility(generalized: GeneralizedTable) -> int:
    """The discernibility metric: ``sum over QI-groups of |G|^2``.

    Reads the cached per-group size array (a bincount shared with the other
    metrics and the privacy checks) instead of running its own full-table
    ``np.unique`` pass.
    """
    if not vectorized_enabled():
        return discernibility_reference(generalized)
    if len(generalized) == 0:
        return 0
    gids = generalized.group_ids_array()
    if int(gids.min()) < 0:  # non-dense explicit ids: bincount inapplicable
        return discernibility_unfused(generalized)
    sizes = generalized.group_sizes_array().astype(np.int64)
    return int((sizes**2).sum())


def discernibility_unfused(generalized: GeneralizedTable) -> int:
    """The historical standalone ``np.unique`` pass over the group ids.

    Kept as the measured-against baseline for the fused-metrics regression
    guard, and the fallback for explicitly constructed tables with negative
    group ids.
    """
    if not vectorized_enabled():
        return discernibility_reference(generalized)
    if len(generalized) == 0:
        return 0
    _ids, counts = np.unique(np.asarray(generalized.group_ids), return_counts=True)
    return int((counts.astype(np.int64) ** 2).sum())


def discernibility_reference(generalized: GeneralizedTable) -> int:
    """Pure-Python discernibility (the oracle for the vectorized path)."""
    return sum(len(rows) ** 2 for rows in generalized.groups().values())


def average_group_size(generalized: GeneralizedTable) -> float:
    """Average QI-group size of the anonymized table."""
    if vectorized_enabled() and len(generalized):
        gids = generalized.group_ids_array()
        if int(gids.min()) >= 0:
            sizes = generalized.group_sizes_array()
            occupied = int(np.count_nonzero(sizes))
            return len(generalized) / occupied
    groups = generalized.groups()
    if not groups:
        return 0.0
    return len(generalized) / len(groups)
