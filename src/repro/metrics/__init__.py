"""Information-loss and utility metrics.

* :mod:`repro.metrics.stars` — star counts and suppressed-tuple counts, the
  objectives of Problems 1 and 2;
* :mod:`repro.metrics.kl` — the KL-divergence utility metric of Section 6.2
  (Equation 2), applicable to suppression, single-dimensional and
  multi-dimensional generalizations alike;
* :mod:`repro.metrics.loss` — auxiliary information-loss measures used for
  the extension experiments (NCP/GCP, discernibility, group sizes);
* :mod:`repro.metrics.fused` — the fused one-pass sweep emitting the whole
  standard metric set from the shared grouping structure, plus the
  historical standalone passes (``unfused_metrics``) the scale-smoke
  regression guard measures against.
"""

from repro.metrics.fused import FUSED_METRIC_NAMES, fused_metrics, unfused_metrics
from repro.metrics.kl import kl_divergence
from repro.metrics.loss import average_group_size, discernibility, gcp, ncp
from repro.metrics.stars import (
    star_count,
    star_count_by_attribute,
    suppressed_tuple_count,
    suppression_ratio,
)

__all__ = [
    "FUSED_METRIC_NAMES",
    "average_group_size",
    "discernibility",
    "fused_metrics",
    "gcp",
    "kl_divergence",
    "ncp",
    "star_count",
    "star_count_by_attribute",
    "suppressed_tuple_count",
    "suppression_ratio",
    "unfused_metrics",
]
