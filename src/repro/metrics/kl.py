"""KL-divergence between the microdata and an anonymized table (Section 6.2).

Equation 2 of the paper: view every row as a point in the
``(d + 1)``-dimensional space spanned by the QI attributes and the SA.  The
microdata ``T`` induces the empirical distribution ``f``; a generalization
``T*`` induces ``f*`` by treating each generalized cell as a uniform
distribution over the values it may stand for (the full domain for a star, a
sub-domain for single-/multi-dimensional generalization, a single value for
an exact cell), while sensitive values stay exact.  The utility loss is
``KL(f, f*) = sum_p f(p) ln(f(p) / f*(p))``.

``f*(p)`` is never zero at an observed point ``p`` because the generalization
of the very row that produced ``p`` always covers ``p``.

The computation is vectorized per sensitive value: the distinct observed
points are read straight off the table's shared run encoding
(:meth:`~repro.dataset.table.Table.grouping` — the runs of the one
``(QI, SA)`` sort *are* the distinct points, with the run lengths as
counts), distinct generalized cell-vectors (deduplicated by tuple identity —
rows of a QI-group share one tuple) become per-attribute membership matrices,
and the mixture is evaluated with a couple of matrix products.  This keeps
the metric fast enough to run inside the figure-7/8 benchmarks.
:func:`kl_divergence_unfused` retains the historical standalone
``np.unique`` construction (used by the scale-smoke regression guard), and
:func:`kl_divergence_reference` retains a direct pure-Python evaluation of
Equation 2 as the oracle for the property tests.  All three are
bit-identical: re-sorting the runs stably by SA keeps QI vectors ascending
within each SA bucket — exactly the ``np.unique`` lexicographic order — so
the summation order never changes.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.backend import vectorized_enabled
from repro.dataset.generalized import STAR, GeneralizedTable
from repro.dataset.table import Table

__all__ = ["kl_divergence", "kl_divergence_reference", "kl_divergence_unfused"]


def kl_divergence(table: Table, generalized: GeneralizedTable) -> float:
    """``KL(f, f*)`` between ``table`` and its generalization (Equation 2).

    The distinct-point side comes from the table's shared grouping context:
    every maximal ``(QI, SA)`` run of the one cached sort is one distinct
    point with its count, so no second full-table ``np.unique`` pass runs.
    """
    if len(table) != len(generalized):
        raise ValueError("table and generalization must have the same number of rows")
    if not vectorized_enabled():
        return kl_divergence_reference(table, generalized)
    n = len(table)
    if n == 0:
        return 0.0

    # Distinct original points, bucketed by SA.  The run encoding already
    # enumerates the distinct (QI, SA) points in (QI, SA) order; a stable
    # argsort over the run SA codes regroups them into contiguous SA buckets
    # while keeping QI ascending within each bucket — the exact lexicographic
    # (SA, QI..) order the historical np.unique construction produced.
    context = table.grouping()
    by_sa = np.argsort(context.run_values, kind="stable")
    sa_column = context.run_values[by_sa]
    qi_points = context.group_keys[context.run_group_ids[by_sa]]
    all_counts = context.run_lengths[by_sa]
    run_starts = np.concatenate(
        ([0], np.flatnonzero(sa_column[1:] != sa_column[:-1]) + 1, [len(sa_column)])
    )
    return _kl_from_points(
        table, generalized, sa_column, qi_points, all_counts, run_starts
    )


def kl_divergence_unfused(table: Table, generalized: GeneralizedTable) -> float:
    """The historical standalone construction: one full-table ``np.unique``.

    Kept as the measured-against baseline for the fused-metrics regression
    guard (``scripts/scale_smoke.py``); bit-identical to
    :func:`kl_divergence`.
    """
    if len(table) != len(generalized):
        raise ValueError("table and generalization must have the same number of rows")
    if not vectorized_enabled():
        return kl_divergence_reference(table, generalized)
    n = len(table)
    if n == 0:
        return 0.0
    stacked = np.column_stack((table.sa_array, table.qi_columns))
    unique_points, point_counts = np.unique(stacked, axis=0, return_counts=True)
    sa_column = unique_points[:, 0]
    run_starts = np.concatenate(
        ([0], np.flatnonzero(sa_column[1:] != sa_column[:-1]) + 1, [len(sa_column)])
    )
    return _kl_from_points(
        table, generalized, sa_column, unique_points[:, 1:], point_counts, run_starts
    )


def _suppression_fstar(
    combo_sa: np.ndarray,
    unique_cells: list,
    combo_cell_index: np.ndarray,
    combo_weights: np.ndarray,
    sa_column: np.ndarray,
    qi_points: np.ndarray,
    domain_sizes: list[int],
    sa_size: int,
) -> np.ndarray | None:
    """Sparse mixture evaluation for suppression-only combos, all SA at once.

    When every combo cell is either an exact code or ``STAR`` (the only two
    shapes the suppression pipeline publishes), a combo covers a point iff
    the point matches its exact positions, and contributes a constant
    ``prod(1/size)`` over its starred positions.  Grouping combos by star
    mask turns the dense ``O(combos x points)`` membership product into a
    hash join: per mask, one composite integer key over ``(SA, exact
    positions)`` for combos and points, matched with a single
    ``searchsorted`` across *all* distinct points — ``O((combos + points)
    log)`` per mask, and the number of distinct masks is the number of
    distinct per-group star sets (dozens, not thousands).

    Deterministic by construction: masks are visited in ascending bit order,
    per-key weight sums are exact small integers, and the fused and
    standalone KL paths feed the same combo list — so the two stay
    bit-identical to each other.

    Returns the unnormalized mixture ``sum_c w_c P(point | combo c)`` per
    distinct point, or ``None`` when a combo holds a sub-domain
    (``frozenset``) cell or a composite key overflows 62 bits — the caller
    falls back to the dense membership-matrix evaluation.
    """
    dimension = len(domain_sizes)
    matrix = np.empty((len(unique_cells), dimension), dtype=np.int64)
    for row, cells in enumerate(unique_cells):
        for position, cell in enumerate(cells):
            if cell is STAR:
                matrix[row, position] = -1
            elif isinstance(cell, frozenset):
                return None
            else:
                matrix[row, position] = cell

    bits = np.int64(1) << np.arange(dimension, dtype=np.int64)
    cell_masks = (matrix < 0).astype(np.int64) @ bits
    combo_masks = cell_masks[combo_cell_index]
    combo_matrix = matrix[combo_cell_index]
    sa_points = sa_column.astype(np.int64, copy=False)
    qi_points = qi_points.astype(np.int64, copy=False)

    fstar = np.zeros(sa_points.shape[0], dtype=float)
    for mask in np.unique(combo_masks):
        selected = np.flatnonzero(combo_masks == mask)
        factor = 1.0
        exact: list[int] = []
        radix = int(sa_size)
        for position in range(dimension):
            if int(mask) >> position & 1:
                factor *= 1.0 / domain_sizes[position]
            else:
                exact.append(position)
                radix *= int(domain_sizes[position])
        if radix > 1 << 62:
            return None
        combo_keys = combo_sa[selected].astype(np.int64, copy=True)
        point_keys = sa_points.copy()
        for position in exact:
            size = np.int64(domain_sizes[position])
            combo_keys *= size
            combo_keys += combo_matrix[selected, position]
            point_keys *= size
            point_keys += qi_points[:, position]
        unique_keys, inverse = np.unique(combo_keys, return_inverse=True)
        # bincount over integer weights is exact in float64 (weights < 2^53).
        weight_sums = np.bincount(inverse, weights=combo_weights[selected])
        slots = np.minimum(
            np.searchsorted(unique_keys, point_keys), len(unique_keys) - 1
        )
        matched = unique_keys[slots] == point_keys
        fstar += np.where(matched, weight_sums[slots], 0.0) * factor
    return fstar


def _kl_from_points(
    table: Table,
    generalized: GeneralizedTable,
    sa_column: np.ndarray,
    qi_points: np.ndarray,
    point_counts: np.ndarray,
    run_starts: np.ndarray,
) -> float:
    """Evaluate Equation 2 given the distinct observed points per SA bucket."""
    n = len(table)
    dimension = table.dimension
    domain_sizes = [attribute.size for attribute in table.schema.qi]

    # Distinct generalized rows, bucketed by SA.  Rows of a QI-group share one
    # cells tuple, so deduplicating by (SA, tuple identity) costs O(n) cheap
    # dict lookups with no per-row tuple-content hashing; the tuples are
    # pinned alive by the generalized table itself.  Content-equal tuples
    # from different groups stay separate combos, which leaves the mixture
    # ``f*`` unchanged (it is linear in the combo weights).
    generalized_sa = generalized.sa_values
    weights_by_key: dict[tuple[int, int], int] = {}
    cells_by_key: dict[tuple[int, int], tuple[object, ...]] = {}
    for row, cells in enumerate(generalized.cell_rows):
        key = (generalized_sa[row], id(cells))
        if key in weights_by_key:
            weights_by_key[key] += 1
        else:
            weights_by_key[key] = 1
            cells_by_key[key] = cells

    combo_sa_list: list[int] = []
    combo_weight_list: list[int] = []
    combo_cell_index_list: list[int] = []
    unique_cells: list[tuple[object, ...]] = []
    row_of_marker: dict[int, int] = {}
    for (sa, marker), weight in weights_by_key.items():
        combo_sa_list.append(sa)
        combo_weight_list.append(weight)
        cell_row = row_of_marker.get(marker)
        if cell_row is None:
            cell_row = row_of_marker[marker] = len(unique_cells)
            unique_cells.append(cells_by_key[(sa, marker)])
        combo_cell_index_list.append(cell_row)

    # Suppression-only generalizations take one global sparse star-mask join
    # over every SA bucket at once; any sub-domain (frozenset) cell falls
    # back to the per-bucket dense membership-matrix product below.
    fstar_all = _suppression_fstar(
        np.asarray(combo_sa_list, dtype=np.int64),
        unique_cells,
        np.asarray(combo_cell_index_list, dtype=np.intp),
        np.asarray(combo_weight_list, dtype=float),
        sa_column,
        qi_points,
        domain_sizes,
        table.schema.sensitive.size,
    )
    combos: dict[int, tuple[list[tuple[object, ...]], list[int]]] = {}
    if fstar_all is None:
        for (sa, marker), weight in weights_by_key.items():
            bucket = combos.setdefault(sa, ([], []))
            bucket[0].append(cells_by_key[(sa, marker)])
            bucket[1].append(weight)

    divergence = 0.0
    for start, end in zip(run_starts[:-1], run_starts[1:]):
        sa = int(sa_column[start])
        points = qi_points[start:end]
        counts = point_counts[start:end].astype(np.float64)

        if fstar_all is not None:
            fstar = fstar_all[start:end] / n
        else:
            combo_cells, weight_list = combos.get(sa, ([], []))
            combo_weights = np.asarray(weight_list, dtype=float)
            if combo_cells:
                # membership[combo, code] = P(code | combo cell on attribute a)
                product = np.ones((len(combo_cells), points.shape[0]), dtype=float)
                for position in range(dimension):
                    size = domain_sizes[position]
                    membership = np.zeros((len(combo_cells), size), dtype=float)
                    for combo_index, cells in enumerate(combo_cells):
                        cell = cells[position]
                        if cell is STAR:
                            membership[combo_index, :] = 1.0 / size
                        elif isinstance(cell, frozenset):
                            weight = 1.0 / len(cell)
                            for code in cell:
                                membership[combo_index, code] = weight
                        else:
                            membership[combo_index, cell] = 1.0
                    product *= membership[:, points[:, position]]
                fstar = (combo_weights @ product) / n
            else:  # pragma: no cover - every SA in T is present in T*
                fstar = np.zeros(points.shape[0])

        f = counts / n
        with np.errstate(divide="ignore"):
            ratio = np.where(fstar > 0, f / np.maximum(fstar, 1e-300), np.inf)
        contribution = f * np.log(ratio)
        if not np.all(np.isfinite(contribution)):
            return math.inf
        divergence += float(contribution.sum())
    # Numerical noise can push a perfect reconstruction epsilon-negative.
    return max(divergence, 0.0)


def kl_divergence_reference(table: Table, generalized: GeneralizedTable) -> float:
    """Pure-Python evaluation of Equation 2 (the oracle for the vectorized path)."""
    if len(table) != len(generalized):
        raise ValueError("table and generalization must have the same number of rows")
    n = len(table)
    if n == 0:
        return 0.0
    dimension = table.dimension
    domain_sizes = [attribute.size for attribute in table.schema.qi]

    points: Counter[tuple[int, tuple[int, ...]]] = Counter(
        (table.sa_value(row), table.qi_row(row)) for row in range(n)
    )
    combos: Counter[tuple[int, tuple[object, ...]]] = Counter(
        (generalized.sa_value(row), generalized.row_cells(row)) for row in range(n)
    )

    divergence = 0.0
    for (sa, point), count in points.items():
        fstar = 0.0
        for (combo_sa, cells), weight in combos.items():
            if combo_sa != sa:
                continue
            probability = 1.0
            for position in range(dimension):
                cell = cells[position]
                if cell is STAR:
                    probability *= 1.0 / domain_sizes[position]
                elif isinstance(cell, frozenset):
                    if point[position] in cell:
                        probability *= 1.0 / len(cell)
                    else:
                        probability = 0.0
                        break
                elif cell != point[position]:
                    probability = 0.0
                    break
            fstar += weight * probability
        fstar /= n
        f = count / n
        if fstar <= 0.0:
            return math.inf
        divergence += f * math.log(f / fstar)
    return max(divergence, 0.0)
