"""KL-divergence between the microdata and an anonymized table (Section 6.2).

Equation 2 of the paper: view every row as a point in the
``(d + 1)``-dimensional space spanned by the QI attributes and the SA.  The
microdata ``T`` induces the empirical distribution ``f``; a generalization
``T*`` induces ``f*`` by treating each generalized cell as a uniform
distribution over the values it may stand for (the full domain for a star, a
sub-domain for single-/multi-dimensional generalization, a single value for
an exact cell), while sensitive values stay exact.  The utility loss is
``KL(f, f*) = sum_p f(p) ln(f(p) / f*(p))``.

``f*(p)`` is never zero at an observed point ``p`` because the generalization
of the very row that produced ``p`` always covers ``p``.

The computation is vectorized per sensitive value: the distinct observed
points come out of one ``np.unique`` over the columnar ``(SA, QI...)`` code
matrix, distinct generalized cell-vectors (deduplicated by tuple identity —
rows of a QI-group share one tuple) become per-attribute membership matrices,
and the mixture is evaluated with a couple of matrix products.  This keeps
the metric fast enough to run inside the figure-7/8 benchmarks.
:func:`kl_divergence_reference` retains a direct pure-Python evaluation of
Equation 2 as the oracle for the property tests.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.backend import vectorized_enabled
from repro.dataset.generalized import STAR, GeneralizedTable
from repro.dataset.table import Table

__all__ = ["kl_divergence", "kl_divergence_reference"]


def kl_divergence(table: Table, generalized: GeneralizedTable) -> float:
    """``KL(f, f*)`` between ``table`` and its generalization (Equation 2)."""
    if len(table) != len(generalized):
        raise ValueError("table and generalization must have the same number of rows")
    if not vectorized_enabled():
        return kl_divergence_reference(table, generalized)
    n = len(table)
    if n == 0:
        return 0.0
    dimension = table.dimension
    domain_sizes = [attribute.size for attribute in table.schema.qi]

    # Distinct original points, bucketed by SA: one lexicographic unique over
    # the columnar (SA, QI..) code matrix.  np.unique sorts, so the SA column
    # comes out grouped into contiguous runs.
    stacked = np.column_stack((table.sa_array, table.qi_columns))
    unique_points, point_counts = np.unique(stacked, axis=0, return_counts=True)
    sa_column = unique_points[:, 0]
    run_starts = np.concatenate(
        ([0], np.flatnonzero(sa_column[1:] != sa_column[:-1]) + 1, [len(sa_column)])
    )

    # Distinct generalized rows, bucketed by SA.  Rows of a QI-group share one
    # cells tuple, so deduplicating by (SA, tuple identity) costs O(n) cheap
    # dict lookups with no per-row tuple-content hashing; the tuples are
    # pinned alive by the generalized table itself.  Content-equal tuples
    # from different groups stay separate combos, which leaves the mixture
    # ``f*`` unchanged (it is linear in the combo weights).
    generalized_sa = generalized.sa_values
    weights_by_key: dict[tuple[int, int], int] = {}
    cells_by_key: dict[tuple[int, int], tuple[object, ...]] = {}
    for row, cells in enumerate(generalized.cell_rows):
        key = (generalized_sa[row], id(cells))
        if key in weights_by_key:
            weights_by_key[key] += 1
        else:
            weights_by_key[key] = 1
            cells_by_key[key] = cells
    combos: dict[int, tuple[list[tuple[object, ...]], list[int]]] = {}
    for (sa, _marker), weight in weights_by_key.items():
        bucket = combos.setdefault(sa, ([], []))
        bucket[0].append(cells_by_key[(sa, _marker)])
        bucket[1].append(weight)

    divergence = 0.0
    for start, end in zip(run_starts[:-1], run_starts[1:]):
        sa = int(sa_column[start])
        points = unique_points[start:end, 1:]
        counts = point_counts[start:end].astype(np.float64)
        combo_cells, weight_list = combos.get(sa, ([], []))
        combo_weights = np.asarray(weight_list, dtype=float)

        if combo_cells:
            # membership[combo, code] = P(code | combo cell on attribute a)
            product = np.ones((len(combo_cells), points.shape[0]), dtype=float)
            for position in range(dimension):
                size = domain_sizes[position]
                membership = np.zeros((len(combo_cells), size), dtype=float)
                for combo_index, cells in enumerate(combo_cells):
                    cell = cells[position]
                    if cell is STAR:
                        membership[combo_index, :] = 1.0 / size
                    elif isinstance(cell, frozenset):
                        weight = 1.0 / len(cell)
                        for code in cell:
                            membership[combo_index, code] = weight
                    else:
                        membership[combo_index, cell] = 1.0
                product *= membership[:, points[:, position]]
            fstar = (combo_weights @ product) / n
        else:  # pragma: no cover - every SA value present in T is present in T*
            fstar = np.zeros(points.shape[0])

        f = counts / n
        with np.errstate(divide="ignore"):
            ratio = np.where(fstar > 0, f / np.maximum(fstar, 1e-300), np.inf)
        contribution = f * np.log(ratio)
        if not np.all(np.isfinite(contribution)):
            return math.inf
        divergence += float(contribution.sum())
    # Numerical noise can push a perfect reconstruction epsilon-negative.
    return max(divergence, 0.0)


def kl_divergence_reference(table: Table, generalized: GeneralizedTable) -> float:
    """Pure-Python evaluation of Equation 2 (the oracle for the vectorized path)."""
    if len(table) != len(generalized):
        raise ValueError("table and generalization must have the same number of rows")
    n = len(table)
    if n == 0:
        return 0.0
    dimension = table.dimension
    domain_sizes = [attribute.size for attribute in table.schema.qi]

    points: Counter[tuple[int, tuple[int, ...]]] = Counter(
        (table.sa_value(row), table.qi_row(row)) for row in range(n)
    )
    combos: Counter[tuple[int, tuple[object, ...]]] = Counter(
        (generalized.sa_value(row), generalized.row_cells(row)) for row in range(n)
    )

    divergence = 0.0
    for (sa, point), count in points.items():
        fstar = 0.0
        for (combo_sa, cells), weight in combos.items():
            if combo_sa != sa:
                continue
            probability = 1.0
            for position in range(dimension):
                cell = cells[position]
                if cell is STAR:
                    probability *= 1.0 / domain_sizes[position]
                elif isinstance(cell, frozenset):
                    if point[position] in cell:
                        probability *= 1.0 / len(cell)
                    else:
                        probability = 0.0
                        break
                elif cell != point[position]:
                    probability = 0.0
                    break
            fstar += weight * probability
        fstar /= n
        f = count / n
        if fstar <= 0.0:
            return math.inf
        divergence += f * math.log(f / fstar)
    return max(divergence, 0.0)
