"""KL-divergence between the microdata and an anonymized table (Section 6.2).

Equation 2 of the paper: view every row as a point in the
``(d + 1)``-dimensional space spanned by the QI attributes and the SA.  The
microdata ``T`` induces the empirical distribution ``f``; a generalization
``T*`` induces ``f*`` by treating each generalized cell as a uniform
distribution over the values it may stand for (the full domain for a star, a
sub-domain for single-/multi-dimensional generalization, a single value for
an exact cell), while sensitive values stay exact.  The utility loss is
``KL(f, f*) = sum_p f(p) ln(f(p) / f*(p))``.

``f*(p)`` is never zero at an observed point ``p`` because the generalization
of the very row that produced ``p`` always covers ``p``.

The computation is vectorized per sensitive value: rows are bucketed by SA,
distinct generalized cell-vectors become per-attribute membership matrices,
and the mixture is evaluated with a couple of matrix products.  This keeps
the metric fast enough to run inside the figure-7/8 benchmarks.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.dataset.generalized import STAR, GeneralizedTable
from repro.dataset.table import Table

__all__ = ["kl_divergence"]


def kl_divergence(table: Table, generalized: GeneralizedTable) -> float:
    """``KL(f, f*)`` between ``table`` and its generalization (Equation 2)."""
    if len(table) != len(generalized):
        raise ValueError("table and generalization must have the same number of rows")
    n = len(table)
    if n == 0:
        return 0.0
    dimension = table.dimension
    domain_sizes = [attribute.size for attribute in table.schema.qi]

    # Distinct original points and distinct generalized rows, bucketed by SA.
    original: dict[int, Counter[tuple[int, ...]]] = {}
    combos: dict[int, Counter[tuple[object, ...]]] = {}
    for row in range(n):
        sa = table.sa_value(row)
        original.setdefault(sa, Counter())[table.qi_row(row)] += 1
        combos.setdefault(generalized.sa_value(row), Counter())[generalized.row_cells(row)] += 1

    divergence = 0.0
    for sa, point_counter in original.items():
        combo_counter = combos.get(sa, Counter())
        points = list(point_counter.keys())
        point_counts = np.array([point_counter[point] for point in points], dtype=float)
        combo_cells = list(combo_counter.keys())
        combo_weights = np.array([combo_counter[cells] for cells in combo_cells], dtype=float)

        if combo_cells:
            # membership[a][combo, code] = P(code | combo cell on attribute a)
            product = np.ones((len(combo_cells), len(points)), dtype=float)
            for position in range(dimension):
                size = domain_sizes[position]
                membership = np.zeros((len(combo_cells), size), dtype=float)
                for combo_index, cells in enumerate(combo_cells):
                    cell = cells[position]
                    if cell is STAR:
                        membership[combo_index, :] = 1.0 / size
                    elif isinstance(cell, frozenset):
                        weight = 1.0 / len(cell)
                        for code in cell:
                            membership[combo_index, code] = weight
                    else:
                        membership[combo_index, cell] = 1.0
                point_codes = np.array([point[position] for point in points], dtype=int)
                product *= membership[:, point_codes]
            fstar = (combo_weights @ product) / n
        else:  # pragma: no cover - every SA value present in T is present in T*
            fstar = np.zeros(len(points))

        f = point_counts / n
        with np.errstate(divide="ignore"):
            ratio = np.where(fstar > 0, f / np.maximum(fstar, 1e-300), np.inf)
        contribution = f * np.log(ratio)
        if not np.all(np.isfinite(contribution)):
            return math.inf
        divergence += float(contribution.sum())
    # Numerical noise can push a perfect reconstruction epsilon-negative.
    return max(divergence, 0.0)
