"""Star-based information loss (the objectives of Problems 1 and 2).

Counts are computed from the cached boolean star mask of the generalized
table (one vectorized reduction each); the pure-Python ``*_reference``
variants are retained as oracles for the property tests.
"""

from __future__ import annotations

from repro.backend import vectorized_enabled
from repro.dataset.generalized import STAR, GeneralizedTable

__all__ = [
    "star_count",
    "star_count_by_attribute",
    "star_count_by_attribute_reference",
    "suppressed_tuple_count",
    "suppression_ratio",
]


def star_count(generalized: GeneralizedTable) -> int:
    """Total number of suppressed QI cells (Problem 1 objective)."""
    return generalized.star_count()


def star_count_by_attribute(generalized: GeneralizedTable) -> dict[str, int]:
    """Number of stars per QI attribute (useful for diagnosing which attributes hurt)."""
    if not vectorized_enabled():
        return star_count_by_attribute_reference(generalized)
    names = generalized.schema.qi_names
    per_column = generalized.star_mask().sum(axis=0)
    return {name: int(count) for name, count in zip(names, per_column)}


def star_count_by_attribute_reference(generalized: GeneralizedTable) -> dict[str, int]:
    """Pure-Python per-attribute star count (the oracle for the vectorized path)."""
    names = generalized.schema.qi_names
    counts = dict.fromkeys(names, 0)
    for row in range(len(generalized)):
        cells = generalized.row_cells(row)
        for position, name in enumerate(names):
            if cells[position] is STAR:
                counts[name] += 1
    return counts


def suppressed_tuple_count(generalized: GeneralizedTable) -> int:
    """Number of rows carrying at least one star (Problem 2 objective)."""
    return generalized.suppressed_tuple_count()


def suppression_ratio(generalized: GeneralizedTable) -> float:
    """Fraction of QI cells that are stars (0 for an untouched table)."""
    total = len(generalized) * generalized.dimension
    if total == 0:
        return 0.0
    return generalized.star_count() / total
