"""The fused one-pass metrics sweep over the shared grouping structure.

PR 7's profiling showed the metrics stage re-deriving the same grouped view
of the published table once per metric: KL ran its own full-table
``np.unique``, discernibility another, NCP a row-level width reduction, and
the verify pass filled a Python ``Counter`` per QI-group.  With the shared
:class:`~repro.core.grouping.GroupingContext` on the source table and the
per-group caches on the :class:`~repro.dataset.generalized.GeneralizedTable`
(sizes, star flags, sparse per-(group, SA) counts), every registered metric
now reads the same boundaries — :func:`fused_metrics` emits the whole
standard set from that one grouped sweep.

:func:`unfused_metrics` runs the historical standalone implementations
(``*_unfused``) on the same inputs; the scale-smoke CI guard asserts the
fused sweep beats the summed standalone passes.  Values are identical:
integer metrics bit-equal by construction, float metrics bit-equal because
the fused reductions preserve the exact summation order of the standalone
ones (see the per-metric docstrings).
"""

from __future__ import annotations

from repro.dataset.generalized import GeneralizedTable
from repro.dataset.table import Table
from repro.metrics.kl import kl_divergence, kl_divergence_unfused
from repro.metrics.loss import (
    average_group_size,
    discernibility,
    discernibility_unfused,
    gcp,
    ncp,
    ncp_unfused,
)
from repro.metrics.stars import (
    star_count,
    suppressed_tuple_count,
    suppression_ratio,
)

__all__ = ["FUSED_METRIC_NAMES", "fused_metrics", "unfused_metrics"]

#: Registry names the fused sweep can emit, keyed exactly as
#: :mod:`repro.engine.metrics` registers them.
FUSED_METRIC_NAMES = (
    "stars",
    "suppressed",
    "suppression_ratio",
    "ncp",
    "gcp",
    "discernibility",
    "average_group_size",
    "kl",
)


def fused_metrics(
    table: Table, generalized: GeneralizedTable
) -> dict[str, float | int]:
    """Every standard metric from one sweep over the shared grouped caches.

    The first read materializes each shared intermediate exactly once — the
    grouping context on ``table`` (KL's distinct points), the group-size
    bincount (discernibility, average group size), the per-group star flags
    (stars, suppressed, NCP) — and every subsequent metric reuses it, so the
    whole dict costs one grouped pass instead of a full-table pass per
    metric.
    """
    stars = star_count(generalized)
    return {
        "stars": stars,
        "suppressed": suppressed_tuple_count(generalized),
        "suppression_ratio": suppression_ratio(generalized),
        "ncp": ncp(generalized),
        "gcp": gcp(generalized),
        "discernibility": discernibility(generalized),
        "average_group_size": average_group_size(generalized),
        "kl": kl_divergence(table, generalized),
    }


def unfused_metrics(
    table: Table, generalized: GeneralizedTable
) -> dict[str, float | int]:
    """The same metric set via the historical standalone passes.

    Each value re-derives its own grouped view (full-table ``np.unique`` for
    KL and discernibility, the ``(n, d)`` width reduction for NCP) — the
    measured-against baseline of the scale-smoke regression guard.  Star
    counts have no standalone variant (they were always cached reductions),
    so they are shared with :func:`fused_metrics`.
    """
    ncp_value = ncp_unfused(generalized)
    cells = len(generalized) * generalized.dimension
    return {
        "stars": star_count(generalized),
        "suppressed": suppressed_tuple_count(generalized),
        "suppression_ratio": suppression_ratio(generalized),
        "ncp": ncp_value,
        "gcp": ncp_value / cells if cells else 0.0,
        "discernibility": discernibility_unfused(generalized),
        "average_group_size": len(generalized) / len(generalized.groups())
        if len(generalized)
        else 0.0,
        "kl": kl_divergence_unfused(table, generalized),
    }
