"""The job service: submit anonymization runs, persist their records.

``ldiversity jobs submit`` executes a run through the engine — with the
workspace's persistent :class:`~repro.service.store.RunStore` backing the
result cache — and appends a :class:`JobRecord` to the workspace's
``jobs.jsonl`` ledger.  ``jobs list`` / ``jobs show`` read the ledger back,
so a sweep of CLI invocations leaves an auditable history of what ran, how
it was planned, how long it took, and whether it was served from a cache
tier instead of recomputed.

The ledger shares the run store's durability model: append-only JSONL, one
record per line, corrupt lines skipped on read.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.engine.cache import ResultCache
from repro.engine.core import Engine, RunPlan, RunReport
from repro.engine.sinks import CsvSink
from repro.service.workspace import Workspace

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.planner import ExecutionPlanner

__all__ = ["JobRecord", "JobService"]


@dataclass(frozen=True)
class JobRecord:
    """One submitted job, as persisted in the workspace ledger."""

    id: str
    created: float
    status: str  # "done" | "failed"
    label: str
    algorithm: str
    l: int
    n: int = 0
    d: int = 0
    shards: int = 1
    workers: int = 1
    backend: str = ""
    stars: int = 0
    suppressed_tuples: int = 0
    groups: int = 0
    seconds: float = 0.0
    cache_hit: bool = False
    store_hit: bool = False
    output: str = ""
    error: str = ""
    metric_values: dict = field(default_factory=dict)

    def summary_row(self) -> tuple[str, ...]:
        """The fixed-width row rendered by ``ldiversity jobs list``."""
        served = "store" if self.store_hit else ("memory" if self.cache_hit else "-")
        return (
            self.id,
            self.status,
            self.algorithm,
            str(self.l),
            str(self.n),
            str(self.stars),
            f"{self.seconds:.3f}",
            served,
            self.label,
        )


class JobService:
    """Submits runs through the engine and persists their job records."""

    def __init__(
        self,
        workspace: Workspace | None = None,
        engine: Engine | None = None,
        planner: "ExecutionPlanner | None" = None,
    ) -> None:
        self.workspace = workspace if workspace is not None else Workspace()
        self.store = self.workspace.run_store()
        if engine is None:
            engine = Engine(cache=ResultCache(store=self.store), planner=planner)
        self.engine = engine

    # ----------------------------------------------------------------- ledger

    def list(self) -> list[JobRecord]:
        """All jobs in the ledger, oldest first (corrupt lines skipped)."""
        path = self.workspace.jobs_path
        if not path.exists():
            return []
        records: list[JobRecord] = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    records.append(JobRecord(**payload))
                except (json.JSONDecodeError, TypeError):
                    continue
        return records

    def get(self, job_id: str) -> JobRecord:
        for record in self.list():
            if record.id == job_id:
                return record
        raise KeyError(f"no job {job_id!r} in workspace {self.workspace.root}")

    def _append(self, record: JobRecord) -> None:
        with open(self.workspace.jobs_path, "a") as handle:
            handle.write(json.dumps(asdict(record), separators=(",", ":")) + "\n")

    def _next_id(self) -> str:
        """Next sequential id, from a line count of the ledger.

        Ids are per-workspace sequence numbers; two *simultaneous* submits
        against one workspace can race to the same number (the ledger keeps
        both lines, ``get`` returns the first).  Interactive CLI use — the
        intended writer model — submits one job at a time.
        """
        path = self.workspace.jobs_path
        if not path.exists():
            return "job-0001"
        with open(path) as handle:
            count = sum(1 for line in handle if line.strip())
        return f"job-{count + 1:04d}"

    # ----------------------------------------------------------------- submit

    def submit(
        self, plan: RunPlan, output: str | None = None
    ) -> tuple[JobRecord, RunReport | None]:
        """Run one plan, optionally export the published table, record the job."""
        job_id = self._next_id()
        created = time.time()
        try:
            report = self.engine.run(plan)
        except Exception as error:
            record = JobRecord(
                id=job_id,
                created=created,
                status="failed",
                label=plan.source.label,
                algorithm=plan.algorithm,
                l=plan.l,
                error=f"{type(error).__name__}: {error}",
            )
            self._append(record)
            raise
        if output:
            with CsvSink(output) as sink:
                sink.write_table(report.generalized)
        decision = report.decision
        record = JobRecord(
            id=job_id,
            created=created,
            status="done",
            label=report.label,
            algorithm=plan.algorithm,
            l=plan.l,
            n=report.n,
            d=report.d,
            shards=decision.shards if decision else 1,
            workers=decision.workers if decision else 1,
            backend=decision.backend if decision else "",
            stars=report.generalized.star_count(),
            suppressed_tuples=report.generalized.suppressed_tuple_count(),
            groups=len(report.generalized.groups()),
            seconds=report.timings.total_seconds,
            cache_hit=report.cache_hit,
            store_hit=report.store_hit,
            output=output or "",
            metric_values=dict(report.metric_values),
        )
        self._append(record)
        return record, report
