"""The job service: submit anonymization runs, persist their lifecycle.

``ldiversity jobs submit`` executes a run through the engine — with the
workspace's persistent :class:`~repro.service.store.RunStore` backing the
result cache — and records it in the workspace's ``jobs.jsonl`` ledger.
``jobs list`` / ``jobs show`` read the ledger back, so a sweep of CLI
invocations (or a server's worker pool) leaves an auditable history of what
ran, how it was planned, how long it took, and whether it was served from a
cache tier instead of recomputed.

Jobs move through a real state machine persisted as ledger transitions::

    queued -> running -> done | failed
              running -> retrying -> running   (worker death / job timeout)
    queued | running | retrying -> cancelled

``retrying`` is the at-least-once half of the durability contract: an
attempt that died with its worker (or outlived the per-job timeout) is
re-enqueued with backoff rather than failed, with :attr:`JobRecord.attempts`
counting attempt starts and :attr:`JobRecord.last_error` holding the latest
attempt's failure.  A job that exhausts :attr:`JobRecord.max_attempts` is
**quarantined**: it lands in the terminal ``failed`` state with
``quarantined=True``, so poison jobs (ones that reliably kill their worker)
cannot crash-loop the pool forever.

Each transition *appends* a full record for the job id; readers replay the
file and the **last record per id wins**, so the ledger doubles as a
transition history (:meth:`JobLedger.history`) while :meth:`JobLedger.list`
still shows one row per job.  :meth:`JobLedger.compact` rewrites the file to
just those latest records (the server runs it at boot, mirroring the run
store's compaction).  The HTTP server (:mod:`repro.server`) drives the full
lifecycle asynchronously — including replaying every non-terminal record it
finds at boot, which is why the submitted job *spec* is persisted on server
records; the synchronous CLI path writes the same transitions back to back.

Durability discipline matches :class:`~repro.service.store.RunStore`:
append-only JSONL, one record per line, malformed or torn lines skipped on
read (and surfaced via :attr:`JobLedger.recovered`).  Unlike the run store,
writes are guarded by an advisory file lock (``fcntl.flock`` where
available) so concurrent submitters — e.g. the server's pool plus a CLI
``jobs submit`` against the same workspace — cannot race id allocation or
interleave a read-modify-append transition.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.engine.cache import ResultCache
from repro.engine.core import Engine, RunPlan, RunReport
from repro.engine.sinks import CsvSink
from repro.service.workspace import Workspace

try:  # pragma: no cover - platform dependent
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: best-effort appends
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.planner import ExecutionPlanner

__all__ = ["JobLedger", "JobRecord", "JobService", "JobStateError"]

#: Every status a job can hold, in lifecycle order.
JOB_STATUSES = ("queued", "running", "retrying", "done", "failed", "cancelled")
#: Statuses a job never leaves.
TERMINAL_STATUSES = ("done", "failed", "cancelled")
#: Legal state transitions (from -> allowed targets).
_TRANSITIONS = {
    "queued": ("running", "failed", "cancelled"),
    "running": ("done", "failed", "cancelled", "retrying"),
    "retrying": ("running", "failed", "cancelled"),
}


class JobStateError(ValueError):
    """Raised on an illegal job state transition (e.g. cancelling a done job)."""


def _ledger_fault_hook() -> None:
    """Chaos-testing gate over ledger appends (no-op unless a plan is active).

    Imported lazily: the service layer must not depend on the server package
    at import time (the server imports *us*), and the hook resolves to
    nothing when no :class:`~repro.server.faults.FaultPlan` is installed.
    """
    try:
        from repro.server.faults import maybe_fail_ledger_append
    except ImportError:  # pragma: no cover - server package unavailable
        return
    maybe_fail_ledger_append()


@dataclass(frozen=True)
class JobRecord:
    """One job's state, as persisted in the workspace ledger."""

    id: str
    created: float
    status: str  # one of JOB_STATUSES
    label: str
    algorithm: str
    l: int
    #: Canonical dict encoding of the resolved privacy spec
    #: (:meth:`~repro.privacy.spec.PrivacySpec.to_dict`); empty on legacy
    #: records written before the PrivacySpec migration, which readers treat
    #: as the default frequency spec at ``l``.
    privacy: dict = field(default_factory=dict)
    #: Wall-clock time of the last transition (0.0 on legacy records).
    updated: float = 0.0
    #: Submitting client identity (server deployments; empty for the CLI).
    client: str = ""
    n: int = 0
    d: int = 0
    shards: int = 1
    workers: int = 1
    backend: str = ""
    stars: int = 0
    suppressed_tuples: int = 0
    groups: int = 0
    seconds: float = 0.0
    cache_hit: bool = False
    store_hit: bool = False
    output: str = ""
    error: str = ""
    metric_values: dict = field(default_factory=dict)
    #: Attempt starts so far (0 before the first ``running`` transition).
    attempts: int = 0
    #: Attempt budget before the job is quarantined (0 on legacy/CLI records,
    #: meaning the writer had no retry machinery).
    max_attempts: int = 0
    #: The most recent *attempt* failure (``error`` stays the terminal one).
    last_error: str = ""
    #: ``True`` on a ``failed`` record whose attempt budget was exhausted by
    #: retryable failures — a poison job parked so it cannot crash-loop.
    quarantined: bool = False
    #: The picklable job spec as queued by the server, persisted so a restart
    #: can re-enqueue every non-terminal job (empty on CLI records, which run
    #: synchronously and are never replayed).
    spec: dict = field(default_factory=dict)
    #: Trace id of the submitting request (``X-Request-Id``) — the join key
    #: across client logs, server logs, spans and the engine's RunReport.
    request_id: str = ""

    def is_terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def summary_row(self) -> tuple[str, ...]:
        """The fixed-width row rendered by ``ldiversity jobs list``."""
        served = "store" if self.store_hit else ("memory" if self.cache_hit else "-")
        return (
            self.id,
            self.status,
            self.algorithm,
            str(self.l),
            str(self.n),
            str(self.stars),
            f"{self.seconds:.3f}",
            served,
            self.label,
        )


_FIELD_NAMES = {f.name for f in dataclasses.fields(JobRecord)}


class JobLedger:
    """Append-only JSONL ledger of job state transitions (last record per id wins)."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        #: Malformed lines skipped so far by this instance's reads.
        self.recovered = 0
        #: Incremental-replay state: latest record per id, and how many bytes
        #: of the file they already account for.  The ledger is append-only,
        #: so replaying just the tail is exact — a server submitting its
        #: 100_000th job must not re-parse the 99_999 before it.
        self._latest: dict[str, JobRecord] = {}
        self._offset = 0
        #: In-process guard over the replay state.  ``fcntl.flock`` only
        #: serializes *processes* (and only the write paths take it): two
        #: threads of one server sharing this instance would otherwise race
        #: ``_latest``/``_offset`` and corrupt the incremental replay.
        self._mutex = threading.Lock()

    @property
    def path(self) -> Path:
        return self._path

    # -------------------------------------------------------------- file I/O

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory exclusive lock over the ledger (no-op where unsupported).

        A sidecar ``.lock`` file is locked instead of the ledger itself so the
        lock's lifetime is independent of the append handle.
        """
        lock_path = self._path.with_suffix(".lock")
        with open(lock_path, "w") as handle:
            if fcntl is not None:
                fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle, fcntl.LOCK_UN)

    @staticmethod
    def _parse(line: str) -> JobRecord | None:
        """Parse one JSONL line; ``None`` for corrupt or malformed records.

        Unknown keys (from a newer writer) are dropped rather than fatal, the
        same forward-compatibility stance as the run store's ``_parse``.
        """
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict):
            return None
        if not isinstance(payload.get("id"), str) or not payload["id"]:
            return None
        if payload.get("status") not in JOB_STATUSES:
            return None
        if not isinstance(payload.get("created"), (int, float)):
            return None
        known = {key: value for key, value in payload.items() if key in _FIELD_NAMES}
        try:
            return JobRecord(**known)
        except TypeError:
            return None

    def _replay(self) -> dict[str, JobRecord]:
        """Latest record per id, in first-appearance order (incremental).

        Only bytes appended since the previous call are parsed.  A trailing
        line without a newline is a concurrent writer's torn append: it is
        left unconsumed and picked up whole on the next read.  A file smaller
        than the consumed offset means the ledger was replaced underneath us;
        the replay restarts from scratch.
        """
        if not self._path.exists():
            self._latest = {}
            self._offset = 0
            return self._latest
        if self._path.stat().st_size < self._offset:
            self._latest = {}
            self._offset = 0
        with open(self._path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        if not data:
            return self._latest
        if not data.endswith(b"\n"):
            complete = data.rfind(b"\n") + 1  # 0 when no full line arrived yet
            data = data[:complete]
        self._offset += len(data)
        for line in data.decode("utf-8", "replace").splitlines():
            line = line.strip()
            if not line:
                continue
            record = self._parse(line)
            if record is None:
                self.recovered += 1
                continue
            self._latest[record.id] = record
        return self._latest

    def _append(self, record: JobRecord) -> None:
        _ledger_fault_hook()
        with open(self._path, "a") as handle:
            handle.write(json.dumps(asdict(record), separators=(",", ":")) + "\n")

    def compact(self) -> int:
        """Rewrite the file to one (latest) record per job; returns the number
        of superseded/corrupt lines reclaimed.

        The ledger appends a full record per transition forever; a long-lived
        workspace pays that history on every cold replay.  Compaction keeps
        exactly the records :meth:`list` would return (atomic replace, under
        the advisory lock), discarding per-job transition history older than
        the compaction point — the same stance as the run store's compaction.
        Run it only when no other *reader* is mid-stream (the server does so
        at boot, before serving): a concurrent incremental replayer would
        resume at a stale byte offset into the rewritten file.
        """
        with self._mutex, self._locked():
            if not self._path.exists():
                return 0
            latest: dict[str, JobRecord] = {}
            lines = 0
            with open(self._path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    lines += 1
                    record = self._parse(line)
                    if record is None:
                        self.recovered += 1
                        continue
                    latest[record.id] = record
            reclaimed = lines - len(latest)
            if reclaimed > 0:
                replacement = self._path.with_suffix(".compacting")
                with open(replacement, "w") as handle:
                    for record in latest.values():
                        handle.write(
                            json.dumps(asdict(record), separators=(",", ":")) + "\n"
                        )
                os.replace(replacement, self._path)
            self._latest = latest
            self._offset = self._path.stat().st_size
            return max(reclaimed, 0)

    # ------------------------------------------------------------------- API

    def list(self) -> list[JobRecord]:
        """One (latest) record per job, oldest job first; corrupt lines skipped."""
        with self._mutex:
            return list(self._replay().values())

    def history(self, job_id: str) -> list[JobRecord]:
        """Every recorded transition of one job since the last compaction,
        oldest first (compaction keeps only each job's latest record)."""
        if not self._path.exists():
            return []
        transitions: list[JobRecord] = []
        with open(self._path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = self._parse(line)
                if record is not None and record.id == job_id:
                    transitions.append(record)
        return transitions

    def get(self, job_id: str) -> JobRecord:
        with self._mutex:
            record = self._replay().get(job_id)
        if record is None:
            raise KeyError(f"no job {job_id!r} in ledger {self._path}")
        return record

    def create(self, **fields) -> JobRecord:
        """Allocate the next id and append a fresh ``queued`` record, atomically."""
        with self._mutex, self._locked():
            numbers = [0]
            for job_id in self._replay():
                prefix, _, suffix = job_id.rpartition("-")
                if prefix == "job" and suffix.isdigit():
                    numbers.append(int(suffix))
            now = time.time()
            record = JobRecord(
                id=f"job-{max(numbers) + 1:04d}",
                created=now,
                updated=now,
                status="queued",
                **fields,
            )
            self._append(record)
        return record

    def transition(self, job_id: str, status: str, **updates) -> JobRecord:
        """Append the next state of one job, enforcing the lifecycle graph."""
        if status not in JOB_STATUSES:
            raise JobStateError(f"unknown job status {status!r}")
        with self._mutex, self._locked():
            current = self._replay().get(job_id)
            if current is None:
                raise KeyError(f"no job {job_id!r} in ledger {self._path}")
            if status not in _TRANSITIONS.get(current.status, ()):
                raise JobStateError(
                    f"job {job_id} is {current.status}; cannot move to {status}"
                )
            record = dataclasses.replace(
                current, status=status, updated=time.time(), **updates
            )
            self._append(record)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job (terminal jobs raise :class:`JobStateError`)."""
        return self.transition(job_id, "cancelled")


class JobService:
    """Submits runs through the engine and persists their job lifecycle."""

    def __init__(
        self,
        workspace: Workspace | None = None,
        engine: Engine | None = None,
        planner: "ExecutionPlanner | None" = None,
    ) -> None:
        self.workspace = workspace if workspace is not None else Workspace()
        self.store = self.workspace.run_store()
        self.ledger = JobLedger(self.workspace.jobs_path)
        if engine is None:
            engine = Engine(cache=ResultCache(store=self.store), planner=planner)
        self.engine = engine

    # ----------------------------------------------------------------- ledger

    def list(self) -> list[JobRecord]:
        """Latest record of every job in the ledger, oldest first."""
        return self.ledger.list()

    def get(self, job_id: str) -> JobRecord:
        try:
            return self.ledger.get(job_id)
        except KeyError:
            raise KeyError(
                f"no job {job_id!r} in workspace {self.workspace.root}"
            ) from None

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued/running job (from e.g. a crashed or serving process)."""
        return self.ledger.cancel(job_id)

    # ----------------------------------------------------------------- submit

    def submit(
        self, plan: RunPlan, output: str | None = None, client: str = ""
    ) -> tuple[JobRecord, RunReport | None]:
        """Run one plan, optionally export the published table, record the job.

        The synchronous path still writes the full transition history
        (``queued -> running -> done|failed``) so ledgers populated by the CLI
        and by the async server are indistinguishable to readers.
        """
        spec = plan.resolved_privacy()
        record = self.ledger.create(
            label=plan.source.label,
            algorithm=plan.algorithm,
            l=plan.l,
            privacy=spec.to_dict(),
            client=client,
        )
        self.ledger.transition(record.id, "running")
        try:
            report = self.engine.run(plan)
        except Exception as error:
            self.ledger.transition(
                record.id, "failed", error=f"{type(error).__name__}: {error}"
            )
            raise
        if output:
            with CsvSink(output) as sink:
                sink.write_table(report.generalized)
        decision = report.decision
        record = self.ledger.transition(
            record.id,
            "done",
            n=report.n,
            d=report.d,
            shards=decision.shards if decision else 1,
            workers=decision.workers if decision else 1,
            backend=decision.backend if decision else "",
            stars=report.generalized.star_count(),
            suppressed_tuples=report.generalized.suppressed_tuple_count(),
            groups=len(report.generalized.groups()),
            seconds=report.timings.total_seconds,
            cache_hit=report.cache_hit,
            store_hit=report.store_hit,
            output=output or "",
            metric_values=dict(report.metric_values),
        )
        return record, report
