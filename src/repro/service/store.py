"""Persistent run store: append-only JSONL memoization of anonymization runs.

The :class:`RunStore` supersedes the purely in-process LRU as the durable
tier of result caching: the engine's :class:`~repro.engine.cache.ResultCache`
reads through it, so figure sweeps and repeated CLI invocations reuse
results **across processes**.  Records are keyed exactly like the in-memory
cache — ``(fingerprint, algorithm, l, shards, backend, seed, privacy)``,
where ``privacy`` is the canonical privacy-spec token — and hold the
*encoded* generalization only.

**Key migration note:** the ``privacy`` component was added when the scalar
``l`` grew into the :class:`~repro.privacy.spec.PrivacySpec` hierarchy.
Two different specs with equal ``l`` previously collided on one record, so
a stricter (e.g. entropy-checked) rerun could replay a frequency-l hit.
Legacy six-element records fail :meth:`RunStore._parse`'s key-shape check,
are counted in :attr:`RunStore.recovered` and are dropped by the next
compaction — a store written before the migration simply recomputes on
first use, it never replays under the wrong spec.

Each record holds:

* one generalized cell row per QI-group (rows of a group share their
  representative by construction), with cells encoded as the integer code,
  ``"*"`` for a star, or ``{"s": [codes]}`` for a sub-domain;
* the per-row group ids, densely renumbered in first-occurrence order;
* the original run's anonymize seconds, shard sizes and phase reached.

Schema and sensitive values are *not* stored: a hit is rehydrated against
the caller's freshly-loaded source table, whose fingerprint already proved
it identical to the one the run was computed on.  That keeps records small
and sidesteps schema round-trip fidelity entirely.

The file format is append-only JSONL: one record per line, last write wins,
safe to append from concurrent processes (a torn trailing line is treated as
corrupt and skipped).  Corrupt or stale lines are counted, survive nothing,
and are dropped by the next compaction; eviction keeps the newest
``max_entries`` records and compacts the file in place.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.dataset.generalized import STAR, GeneralizedTable
from repro.engine.cache import CachedRun, CacheKey
from repro.engine.registry import AlgorithmOutput

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataset.table import Table

__all__ = ["RunStore", "StoreError"]


class StoreError(Exception):
    """Raised when a run cannot be encoded for persistent storage."""


def _encode_cell(cell) -> object:
    if cell is STAR:
        return "*"
    if isinstance(cell, frozenset):
        return {"s": sorted(cell)}
    if isinstance(cell, (int,)):
        return int(cell)
    raise StoreError(f"cannot encode generalized cell {cell!r}")


def _decode_cell(encoded) -> object:
    if encoded == "*":
        return STAR
    if isinstance(encoded, dict):
        return frozenset(encoded["s"])
    return int(encoded)


def _encode_run(key: CacheKey, run: CachedRun) -> dict:
    generalized = run.output.generalized
    group_ids = generalized.group_ids
    dense: dict[int, int] = {}
    group_cells: list[list[object]] = []
    renumbered: list[int] = []
    for row, group_id in enumerate(group_ids):
        index = dense.get(group_id)
        if index is None:
            index = len(group_cells)
            dense[group_id] = index
            group_cells.append([_encode_cell(cell) for cell in generalized.row_cells(row)])
        renumbered.append(index)
    return {
        "key": list(key),
        "n": len(generalized),
        "group_cells": group_cells,
        "group_ids": renumbered,
        "anonymize_seconds": run.anonymize_seconds,
        "shard_sizes": list(run.shard_sizes),
        "phase_reached": run.output.phase_reached,
        "enforcement_merges": run.enforcement_merges,
    }


class RunStore:
    """Append-only JSONL store of memoized anonymization runs."""

    def __init__(self, path: str | Path, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._max_entries = max_entries
        self._records: OrderedDict[CacheKey, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.recovered = 0
        self._load()

    @property
    def path(self) -> Path:
        return self._path

    # --------------------------------------------------------------- file I/O

    def _load(self) -> None:
        if not self._path.exists():
            return
        with open(self._path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = self._parse(line)
                if record is None:
                    self.recovered += 1
                    continue
                key = tuple(record["key"])
                self._records[key] = record
                self._records.move_to_end(key)
        evicted = self._evict()
        if evicted or self.recovered:
            self._compact()

    @staticmethod
    def _parse(line: str) -> dict | None:
        """Parse one JSONL line; ``None`` for corrupt or malformed records."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        key = record.get("key")
        # Exactly the 7-element (fingerprint, algorithm, l, shards, backend,
        # seed, privacy) shape; legacy 6-element pre-PrivacySpec records are
        # dropped here (see the migration note in the module docstring).
        if not isinstance(key, list) or len(key) != 7:
            return None
        group_cells = record.get("group_cells")
        group_ids = record.get("group_ids")
        if not isinstance(group_cells, list) or not isinstance(group_ids, list):
            return None
        if record.get("n") != len(group_ids):
            return None
        if group_ids and (not group_cells or max(group_ids) >= len(group_cells)):
            return None
        if not isinstance(record.get("anonymize_seconds"), (int, float)):
            return None
        if not isinstance(record.get("shard_sizes"), list):
            return None
        if not (record.get("phase_reached") is None or isinstance(record["phase_reached"], int)):
            return None
        merges = record.get("enforcement_merges", 0)
        if not isinstance(merges, int) or isinstance(merges, bool):
            return None
        return record

    def _evict(self) -> int:
        evicted = 0
        while len(self._records) > self._max_entries:
            self._records.popitem(last=False)
            evicted += 1
        return evicted

    def _compact(self) -> None:
        """Rewrite the file to the live records (atomic replace).

        Another process may have appended records since this instance loaded
        the file; they are re-read and kept — treated as older than our
        in-memory entries, which win for keys both hold — so compaction never
        erases a concurrent writer's work.
        """
        merged: OrderedDict[CacheKey, dict] = OrderedDict()
        if self._path.exists():
            with open(self._path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = self._parse(line)
                    if record is None:
                        continue
                    key = tuple(record["key"])
                    if key not in self._records:
                        merged[key] = record
                        merged.move_to_end(key)
        for key, record in self._records.items():
            merged[key] = record
        while len(merged) > self._max_entries:
            merged.popitem(last=False)
        self._records = merged
        temporary = self._path.with_suffix(".jsonl.tmp")
        with open(temporary, "w") as handle:
            for record in self._records.values():
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        temporary.replace(self._path)

    # ------------------------------------------------------------------- API

    def get(self, key: CacheKey, table: "Table") -> CachedRun | None:
        """Rehydrate a stored run against its (fingerprint-identical) table."""
        record = self._records.get(key)
        if record is None:
            self.misses += 1
            return None
        try:
            if record["n"] != len(table):
                raise ValueError("row count mismatch (stale or colliding record)")
            decoded_groups = [
                tuple(_decode_cell(cell) for cell in row) for row in record["group_cells"]
            ]
            if any(len(row) != table.dimension for row in decoded_groups):
                raise ValueError("cell row width does not match the table dimension")
            cells = [decoded_groups[group_id] for group_id in record["group_ids"]]
            run = CachedRun(
                output=AlgorithmOutput(
                    GeneralizedTable._from_trusted(
                        table.schema, cells, table.sa_values, list(record["group_ids"])
                    ),
                    phase_reached=record["phase_reached"],
                ),
                anonymize_seconds=record["anonymize_seconds"],
                shard_sizes=tuple(record["shard_sizes"]),
                enforcement_merges=record.get("enforcement_merges", 0),
            )
        except (KeyError, ValueError, TypeError, IndexError):
            # A record that passed the line-level checks but cannot be
            # decoded is corrupt: drop it rather than crash the lookup.
            del self._records[key]
            self.recovered += 1
            self.misses += 1
            return None
        self._records.move_to_end(key)
        self.hits += 1
        return run

    def put(self, key: CacheKey, run: CachedRun) -> None:
        """Persist one run (append; eviction compacts when the cap is hit)."""
        try:
            record = _encode_run(key, run)
        except StoreError:
            return  # non-encodable outputs simply stay memory-only
        self._records[key] = record
        self._records.move_to_end(key)
        if self._evict():
            self._compact()
        else:
            with open(self._path, "a") as handle:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")

    def clear(self) -> None:
        self._records.clear()
        self.hits = 0
        self.misses = 0
        self.recovered = 0
        if self._path.exists():
            self._path.unlink()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: object) -> bool:
        return key in self._records

    def keys(self) -> list[CacheKey]:
        return list(self._records)

    def stats(self) -> dict[str, object]:
        return {
            "entries": len(self._records),
            "hits": self.hits,
            "misses": self.misses,
            "recovered": self.recovered,
            "path": str(self._path),
        }
