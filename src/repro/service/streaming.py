"""End-to-end streaming anonymization: CSV in, CSV out, bounded memory.

``ldiversity anonymize big.csv --stream --output anon.csv`` must work at
``n`` far beyond memory.  The in-memory engine path materializes the full
table before sharding; this module instead drives the whole pipeline off
:meth:`~repro.engine.sources.CsvSource.iter_chunks` in three passes, never
holding more than one chunk plus one shard:

1. **Scan** — stream the file once, accumulating per-QI-key row counts and
   sensitive-value histograms (memory is O(distinct QI keys), not O(n));
   check global l-eligibility from the aggregate histogram.
2. **Partition + spill** — pack the sorted QI keys into contiguous
   QI-prefix shards by the same quota/eligibility-repair rules as
   :func:`repro.engine.sharding.qi_prefix_shards` (computed from the
   histograms alone), then stream the file again, routing each row's
   *encoded codes* to its shard's spill file on disk.
3. **Anonymize + emit** — load one spill at a time, run the algorithm,
   verify the shard l-diverse and append its published rows to the
   :class:`~repro.engine.sinks.CsvSink`.

Each shard is a union of complete QI-groups and is enforced/verified against
the requested privacy spec before it is emitted, so the concatenation of the
shard outputs satisfies every group-local spec by construction (the same
argument as the in-memory merge).  Unlike the in-memory path, rows are
emitted in **QI-sorted shard order**, not original file order — the price of
never holding the table.  :func:`verify_csv_satisfies` re-checks the
published file against any registered privacy model by streaming it
(:func:`verify_csv_l_diverse` is the frequency-l shorthand), which the CI
smoke uses as an independent oracle.
"""

from __future__ import annotations

import tempfile
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import backend as _backend
from repro.dataset.table import Table
from repro.engine.core import run_with_spec
from repro.engine.registry import algorithm_registry
from repro.engine.sharding import partition_group_keys
from repro.engine.sinks import CsvSink
from repro.engine.sources import CsvSource
from repro.errors import IneligibleTableError, VerificationError
from repro.privacy.spec import (
    PrivacySpec,
    enforce_spec,
    privacy_registry,
    resolve_privacy,
)

__all__ = [
    "StreamReport",
    "stream_anonymize",
    "verify_csv_l_diverse",
    "verify_csv_satisfies",
]

#: Default number of CSV rows decoded per chunk during the scan/spill passes.
DEFAULT_CHUNK_ROWS = 50_000


@dataclass(frozen=True)
class StreamReport:
    """Outcome of one streaming anonymization run."""

    label: str
    output_path: str
    algorithm: str
    l: int
    #: Canonical token of the privacy spec the run enforced.
    privacy: str
    n: int
    d: int
    shard_sizes: tuple[int, ...]
    stars: int
    suppressed_tuples: int
    groups: int
    seconds: float
    verified: bool

    def format(self) -> str:
        return (
            f"streamed {self.n} rows ({self.d} QI) through "
            f"{len(self.shard_sizes)} shard(s) with {self.algorithm} under "
            f"{self.privacy}: "
            f"{self.stars} stars, {self.suppressed_tuples} suppressed tuples, "
            f"{self.groups} groups in {self.seconds:.2f}s -> {self.output_path}"
        )


def _scan(source: CsvSource, chunk_rows: int) -> tuple[dict[tuple, Counter], int]:
    """Pass 1: per-QI-key sensitive-value histograms, streamed.

    On the vectorized backend each chunk is reduced with one run-length
    encoding pass (:meth:`~repro.dataset.table.Table.qi_sa_runs_arrays`):
    every ``(QI key, sensitive value)`` run contributes a single Counter
    update weighted by its length, so the Python-level work is O(distinct
    runs) instead of O(rows).  The histograms are identical to the per-tuple
    :func:`_scan_reference` (the regression test asserts this) because a
    histogram is order-insensitive.
    """
    key_histograms: dict[tuple, Counter] = {}
    n = 0
    for chunk in source.iter_chunks(chunk_rows):
        if _backend.vectorized_enabled() and len(chunk):
            group_keys, group_run_bounds, run_bounds, run_values, _ = (
                chunk.qi_sa_runs_arrays()
            )
            run_lengths = np.diff(run_bounds).tolist()
            values = run_values.tolist()
            bounds = group_run_bounds.tolist()
            for group_id, key in enumerate(map(tuple, group_keys.tolist())):
                histogram = key_histograms.setdefault(key, Counter())
                for run in range(bounds[group_id], bounds[group_id + 1]):
                    histogram[values[run]] += run_lengths[run]
        else:
            _scan_chunk_reference(chunk, key_histograms)
        n += len(chunk)
    return key_histograms, n


def _scan_chunk_reference(chunk: Table, key_histograms: dict[tuple, Counter]) -> None:
    """Per-tuple Counter accumulation — the oracle the fast scan is tested against."""
    sa_values = chunk.sa_values
    for key, rows in chunk.group_by_qi().items():
        histogram = key_histograms.setdefault(key, Counter())
        for row in rows:
            histogram[sa_values[row]] += 1


def _scan_reference(source: CsvSource, chunk_rows: int) -> tuple[dict[tuple, Counter], int]:
    """The pre-vectorization scan, kept as the regression oracle for :func:`_scan`."""
    key_histograms: dict[tuple, Counter] = {}
    n = 0
    for chunk in source.iter_chunks(chunk_rows):
        _scan_chunk_reference(chunk, key_histograms)
        n += len(chunk)
    return key_histograms, n


# Shard boundaries are computed by the same quota/eligibility-repair code
# as the in-memory path — repro.engine.sharding.partition_group_keys — fed
# with the scan pass's histograms, so the two pipelines can never drift.


def _spill_chunk(chunk: Table, shard_of: dict, spills: list, d: int) -> None:
    """Pass 2 inner loop: route one chunk's encoded rows to the shard spills.

    Rows are written as raw ``(d + 1)`` int32 blocks.  The vectorized path
    must land rows in each spill in exactly the order the per-group loop
    produces — QI keys ascending, original row index ascending within a key —
    because the spill's row order is the shard table's row order and hence
    observable in the published bytes.  A QI-only stable lexsort delivers
    precisely that order (it is the same sort ``group_by_qi`` uses), after
    which one boolean mask per shard appends every row in a single write.
    """
    columns = chunk.qi_columns
    sa = chunk.sa_array
    if _backend.vectorized_enabled() and len(chunk):
        order = np.lexsort(columns.T[::-1])
        block = np.empty((len(chunk), d + 1), dtype=np.int32)
        block[:, :d] = columns[order]
        block[:, d] = sa[order]
        starts = np.empty(len(chunk), dtype=bool)
        starts[0] = True
        np.any(block[1:, :d] != block[:-1, :d], axis=1, out=starts[1:])
        start_rows = np.flatnonzero(starts)
        group_shards = np.asarray(
            [shard_of[key] for key in map(tuple, block[start_rows, :d].tolist())],
            dtype=np.intp,
        )
        sizes = np.diff(np.append(start_rows, len(chunk)))
        row_shards = np.repeat(group_shards, sizes)
        for index, spill in enumerate(spills):
            mask = row_shards == index
            if mask.any():
                spill.write(block[mask].tobytes())
    else:
        for key, rows in chunk.group_by_qi().items():
            block = np.empty((len(rows), d + 1), dtype=np.int32)
            block[:, :d] = columns[rows]
            block[:, d] = sa[rows]
            spills[shard_of[key]].write(block.tobytes())


def stream_anonymize(
    source: CsvSource,
    output_path: str | Path,
    algorithm: str = "TP+",
    l: int = 2,
    shards: int | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    planner=None,
    spill_dir: str | Path | None = None,
    backend: str | None = None,
    privacy: "PrivacySpec | dict | None" = None,
) -> StreamReport:
    """Anonymize a CSV source into a CSV file without materializing the table.

    ``privacy`` selects the privacy model (``None`` keeps the ``l=`` sugar
    for frequency l-diversity); each shard goes through the spec enforcement
    pass before it is emitted, so group-local specs hold for the whole
    published file.  ``shards`` of ``None`` asks the cost-based planner;
    streaming always processes shards sequentially (one shard resident at a
    time is the whole point), so the planner's worker choice is ignored
    here.  ``backend`` of ``None`` keeps the process data-plane backend,
    ``"auto"`` picks the planner's calibrated choice, and a concrete name
    pins it for this run.
    """
    started = time.perf_counter()
    info = algorithm_registry.get(algorithm)
    spec = resolve_privacy(privacy, l)
    if not privacy_registry.get(spec.kind).enforceable:
        raise ValueError(
            f"privacy model {spec.kind!r} is check-only and cannot be "
            "requested as an anonymization target"
        )
    if shards is not None and shards > 1 and not info.supports_sharding:
        raise ValueError(f"algorithm {info.name!r} does not support sharded execution")
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")

    schema = source.resolved_schema()
    bounded_source = CsvSource(
        source.path, source.qi_names, source.sa_name, schema=schema,
        delimiter=source.delimiter,
    )

    key_histograms, n = _scan(bounded_source, chunk_rows)
    if n == 0:
        raise IneligibleTableError(f"{source.path}: no data rows to anonymize")
    total: Counter = Counter()
    for histogram in key_histograms.values():
        total.update(histogram)
    if not spec.eligible(total, n):
        raise IneligibleTableError(
            f"table is not eligible for {spec.describe()}; "
            "no satisfying generalization exists"
        )

    if shards is None or backend == "auto":
        if planner is None:
            from repro.service.planner import default_planner

            planner = default_planner()
        decision = planner.decide(
            info, n=n, d=schema.dimension, l=l, shards=shards, backend=backend,
            privacy=spec,
        )
        shards = decision.shards
        backend = decision.backend
    elif backend is None:
        backend = _backend.current_backend()
    key_shards = partition_group_keys(
        sorted(key_histograms), key_histograms, shards, spec, n
    )
    shard_of = {key: index for index, keys in enumerate(key_shards) for key in keys}

    d = schema.dimension
    stars = 0
    suppressed = 0
    groups = 0
    shard_sizes: list[int] = []
    with _backend.use_backend(backend), tempfile.TemporaryDirectory(
        dir=None if spill_dir is None else str(spill_dir)
    ) as tmp:
        # Spill files are raw little-endian int32 row blocks of width d + 1
        # (QI codes then the SA code): they are written with ndarray.tobytes()
        # and read back with one np.fromfile + reshape — no text round-trip.
        spills = [
            open(Path(tmp) / f"shard-{index}.codes", "wb")
            for index in range(len(key_shards))
        ]
        try:
            for chunk in bounded_source.iter_chunks(chunk_rows):
                _spill_chunk(chunk, shard_of, spills, d)
        finally:
            for spill in spills:
                spill.close()

        with CsvSink(str(output_path), delimiter=source.delimiter) as sink:
            sink.open(schema)
            for index in range(len(key_shards)):
                spill_path = Path(tmp) / f"shard-{index}.codes"
                codes = np.fromfile(spill_path, dtype=np.int32).reshape(-1, d + 1)
                spill_path.unlink()
                # The codes round-tripped through our own encoder, so skip
                # the domain re-scan.
                shard = Table.from_arrays(
                    schema, codes[:, :d], codes[:, d], validate=False
                )
                output = run_with_spec(info.runner, shard, spec)
                # Per-shard enforcement: group-local specs compose across
                # shards, so repairing each shard repairs the whole file.
                # Only specs the frequency guarantee does not imply are
                # repaired — for the rest a violation is an algorithm bug
                # and must fail the check below, not be merged away.
                enforced = output.generalized
                if not spec.implied_by_frequency():
                    enforced, _merges = enforce_spec(shard, enforced, spec)
                if not spec.check_generalized(enforced):
                    raise VerificationError(
                        f"shard {index} output violates {spec.describe()}"
                    )
                sink.write_table(enforced)
                shard_sizes.append(len(shard))
                stars += enforced.star_count()
                suppressed += enforced.suppressed_tuple_count()
                groups += len(enforced.groups())

    return StreamReport(
        label=source.label,
        output_path=str(output_path),
        algorithm=algorithm,
        l=l,
        privacy=spec.token(),
        n=n,
        d=d,
        shard_sizes=tuple(shard_sizes),
        stars=stars,
        suppressed_tuples=suppressed,
        groups=groups,
        seconds=time.perf_counter() - started,
        verified=True,
    )


def verify_csv_satisfies(
    path: str | Path,
    qi_names: tuple[str, ...] | list[str],
    sa_name: str,
    privacy: "PrivacySpec | dict | int",
    delimiter: str = ",",
) -> bool:
    """Streaming privacy check of a *published* CSV file against any spec.

    Groups rows by their rendered generalized QI vector and checks the
    spec's per-group condition (``check``), passing the table-wide SA
    histogram for globally-defined models (t-closeness).  Two true
    QI-groups that render identically are checked as their union — the
    granularity an adversary reading the file actually observes (and for
    frequency l-diversity provably sound: the union of l-eligible multisets
    is l-eligible).  Check-only models are accepted here: this is an audit,
    not an anonymization.  Memory is O(distinct published QI vectors).
    """
    import csv as _csv

    spec = resolve_privacy(privacy)
    histograms: dict[tuple, Counter] = {}
    total: Counter = Counter()
    with open(path, newline="") as handle:
        reader = _csv.DictReader(handle, delimiter=delimiter)
        for row in reader:
            key = tuple(row[name] for name in qi_names)
            histograms.setdefault(key, Counter())[row[sa_name]] += 1
            total[row[sa_name]] += 1
    if not histograms:
        return False
    return all(spec.check(histogram, total) for histogram in histograms.values())


def verify_csv_l_diverse(
    path: str | Path,
    qi_names: tuple[str, ...] | list[str],
    sa_name: str,
    l: int,
    delimiter: str = ",",
) -> bool:
    """Streaming frequency l-diversity check (shorthand for
    :func:`verify_csv_satisfies` with ``FrequencyLDiversity(l)``)."""
    return verify_csv_satisfies(path, qi_names, sa_name, int(l), delimiter=delimiter)
