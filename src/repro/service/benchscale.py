"""The BENCH_scale trajectory: raw-speed measurements at 10^5..10^7 rows.

Where ``BENCH_fig6.json`` tracks the paper's figure sweep at smoke scale,
``BENCH_scale.json`` records the *million-row* behaviour of the pipeline:
one synthetic table per cardinality is converted to an on-disk
:class:`~repro.engine.columnstore.ColumnStore` and anonymized through the
memory-mapped engine path with stage profiling enabled, once per backend.
Each point carries the full per-stage attribution (``load`` / ``encode`` /
``state-init`` / ``phase1``..``phase3`` / ``publish`` / ``metrics``), so a
future regression is pinned on a stage, not a rerun.  The committed file
also feeds the execution planner's cost model
(:func:`repro.service.planner.load_scale_rates`).

Run via ``ldiversity bench`` or ``scripts/bench_scale.py``.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro import profiling
from repro.dataset.synthetic import CensusConfig
from repro.engine import ColumnStore, ColumnStoreSource, Engine, RunPlan
from repro.engine.cache import ResultCache

__all__ = ["BenchScaleConfig", "run_bench_scale", "write_bench_scale"]

#: Stages every point reports, even when a stage took no measurable time.
STAGES = (
    "encode",
    "state-init",
    "phase1",
    "phase2",
    "phase3",
    "publish",
    "merge",
    "metrics",
)


@dataclass(frozen=True)
class BenchScaleConfig:
    """What the scale trajectory measures."""

    sizes: tuple[int, ...] = (100_000, 1_000_000, 10_000_000)
    dataset: str = "SAL"
    algorithm: str = "TP+"
    l: int = 6
    seed: int = 7
    #: QI-domain scale factor restoring the paper's rows-per-group regime.
    qi_scale: float = 0.24
    #: Best-of-``repeats`` seconds are kept per point.  Points above
    #: :data:`repeat_max_n` rows are always measured once — at 10^7 rows a
    #: second pass doubles minutes of wall clock for no extra signal.
    repeats: int = 1
    repeat_max_n: int = 1_000_000
    #: The pure-Python reference backend is only timed up to this ``n``
    #: (it is the *comparison* baseline, not the thing being optimized,
    #: and at 10^7 rows it would run for an hour).
    reference_max_n: int = 1_000_000

    def census_config(self) -> CensusConfig:
        return CensusConfig.scaled(self.qi_scale)


def _measure_point(
    store_dir: Path, n: int, backend_name: str, config: BenchScaleConfig
) -> dict:
    """Best-of-repeats stage-attributed timing of one (n, backend) run."""
    best: dict | None = None
    repeats = max(config.repeats, 1) if n <= config.repeat_max_n else 1
    for _ in range(repeats):
        profiling.set_enabled(True)
        profiling.reset()
        try:
            report = Engine(cache=ResultCache()).run(
                RunPlan(
                    source=ColumnStoreSource(str(store_dir)),
                    algorithm=config.algorithm,
                    l=config.l,
                    shards=1,
                    backend=backend_name,
                    use_cache=False,
                )
            )
        finally:
            profiling.set_enabled(False)
        stages = report.profile or {}
        seconds = {
            "total": report.timings.total_seconds,
            "load": report.timings.load_seconds,
            "anonymize": report.timings.anonymize_seconds,
        }
        for stage in STAGES:
            seconds[stage] = stages.get(stage, 0.0)
        point = {
            "n": n,
            "backend": backend_name,
            "seconds": seconds,
            "stars": report.generalized.star_count(),
            "suppressed_tuples": report.generalized.suppressed_tuple_count(),
            "groups": len(report.generalized.groups()),
            "phase_reached": report.phase_reached,
        }
        if best is None or point["seconds"]["total"] < best["seconds"]["total"]:
            best = point
    assert best is not None
    return best


def run_bench_scale(
    config: BenchScaleConfig = BenchScaleConfig(), echo=print
) -> dict:
    """Measure the trajectory and return the BENCH_scale payload."""
    from repro.dataset.synthetic import make_occ, make_sal

    maker = make_sal if config.dataset.upper() == "SAL" else make_occ
    points: list[dict] = []
    speedup: dict[str, float | None] = {}
    speedup_notes: dict[str, str] = {}
    for n in config.sizes:
        echo(f"[bench_scale] n={n}: generating {config.dataset} table")
        table = maker(n, seed=config.seed, config=config.census_config())
        with tempfile.TemporaryDirectory() as tmp:
            store_dir = Path(tmp) / "store"
            started = time.perf_counter()
            ColumnStore.from_table(table).save(store_dir)
            echo(
                f"[bench_scale] n={n}: column store written in "
                f"{time.perf_counter() - started:.2f}s"
            )
            del table  # the engine must run off the mmap, not this copy

            numpy_point = _measure_point(store_dir, n, "numpy", config)
            points.append(numpy_point)
            echo(
                f"[bench_scale] n={n} numpy: total "
                f"{numpy_point['seconds']['total']:.3f}s "
                f"(anonymize {numpy_point['seconds']['anonymize']:.3f}s, "
                f"stars {numpy_point['stars']})"
            )
            if n <= config.reference_max_n:
                reference_point = _measure_point(store_dir, n, "reference", config)
                points.append(reference_point)
                ratio = (
                    reference_point["seconds"]["total"]
                    / numpy_point["seconds"]["total"]
                )
                speedup[str(n)] = ratio
                echo(
                    f"[bench_scale] n={n} reference: total "
                    f"{reference_point['seconds']['total']:.3f}s "
                    f"-> speedup {ratio:.2f}x"
                )
                if reference_point["stars"] != numpy_point["stars"]:
                    raise RuntimeError(
                        f"backend outputs diverge at n={n}: "
                        f"{numpy_point['stars']} vs {reference_point['stars']} stars"
                    )
            else:
                # Record the hole explicitly: a silently absent key reads as
                # "never measured" while null + note says "deliberately
                # skipped".  Consumers (load_scale_rates, the README table)
                # ignore null entries.
                speedup[str(n)] = None
                speedup_notes[str(n)] = "reference_skipped"
                echo(
                    f"[bench_scale] n={n} reference: skipped "
                    f"(> reference_max_n={config.reference_max_n}); "
                    "speedup recorded as null"
                )
    return {
        "benchmark": "bench_scale",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "config": {
            "dataset": config.dataset,
            "algorithm": config.algorithm,
            "l": config.l,
            "seed": config.seed,
            "qi_scale": config.qi_scale,
            "shards": 1,
            "repeats": config.repeats,
            "source": "columnstore-mmap",
        },
        "points": points,
        "speedup": speedup,
        "speedup_notes": speedup_notes,
    }


def write_bench_scale(
    output: str | Path, config: BenchScaleConfig = BenchScaleConfig(), echo=print
) -> dict:
    """Run the trajectory and write ``output`` (the BENCH_scale.json file)."""
    payload = run_bench_scale(config, echo=echo)
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    echo(f"[bench_scale] trajectory written to {output}")
    return payload
