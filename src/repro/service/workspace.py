"""Workspace directories: where the service layer keeps persistent state.

A :class:`Workspace` is a directory holding everything the job layer
persists between processes:

* ``runs.jsonl`` — the :class:`~repro.service.store.RunStore` of memoized
  anonymization runs (read through by the engine's result cache);
* ``jobs.jsonl`` — the :class:`~repro.service.jobs.JobService` ledger of
  submitted jobs;
* ``tmp/`` — spill space for the streaming pipeline's per-shard buffers;
* ``results/`` — per-job published-output artifacts
  (:class:`~repro.engine.columnstore.ResultArtifact` directories) the
  server streams ``/result`` responses from.

Resolution order for the root directory: an explicit path, then the
``REPRO_WORKSPACE`` environment variable, then ``~/.cache/ldiversity``.
The directory is created on first use.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.service.store import RunStore

__all__ = ["Workspace", "default_workspace_root"]

_ENV_VAR = "REPRO_WORKSPACE"
_DEFAULT_ROOT = "~/.cache/ldiversity"


def default_workspace_root() -> Path:
    """The workspace root used when none is given explicitly."""
    return Path(os.environ.get(_ENV_VAR, _DEFAULT_ROOT)).expanduser()


class Workspace:
    """A directory tree holding the service layer's persistent state."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_workspace_root()
        self.root.mkdir(parents=True, exist_ok=True)

    @property
    def runs_path(self) -> Path:
        return self.root / "runs.jsonl"

    @property
    def jobs_path(self) -> Path:
        return self.root / "jobs.jsonl"

    @property
    def tmp_dir(self) -> Path:
        path = self.root / "tmp"
        path.mkdir(parents=True, exist_ok=True)
        return path

    @property
    def results_dir(self) -> Path:
        path = self.root / "results"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def run_store(self, max_entries: int = 256) -> RunStore:
        """Open (creating if needed) the workspace's persistent run store."""
        return RunStore(self.runs_path, max_entries=max_entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workspace({str(self.root)!r})"
