"""Cost-based execution planning: pick shards / workers / backend from table stats.

Hand-tuning ``--shards`` and ``--workers`` per invocation does not survive
contact with a figure sweep that spans three orders of magnitude in ``n``.
The :class:`ExecutionPlanner` replaces those hand-passed defaults with a
small cost model calibrated against the committed ``BENCH_fig6.json``
baseline:

* **per-algorithm run cost** — the benchmark's measured seconds at its
  largest cardinality give a rate per ``n log2 n`` unit (every registered
  algorithm is ``O(d n log n)``-ish); algorithms absent from the benchmark
  fall back to the mean benched rate;
* **sharding** — ``s`` QI-prefix shards of ``n/s`` rows run in
  ``ceil(s / w)`` waves on ``w`` workers, at the price of per-shard setup,
  per-worker process spawn, and an O(n) merge pass;
* **backend** — whichever backend the calibration says is faster for the
  algorithm at hand (NumPy, on every committed baseline).

The planner enumerates a small candidate grid, estimates each
configuration's wall-clock seconds, and returns the argmin as an
:class:`ExecutionDecision` — including the full candidate table so
``ldiversity plan`` can *explain* the choice.  Caller-supplied values always
win: a decision only fills in the dimensions the caller left as ``None``.

Capability metadata matters: algorithms registered with
``supports_sharding=False`` are never sharded, and the decision degrades to
a single sequential run when the table is too small for sharding to pay for
its overhead (the empirically dominant case at benchmark scale).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import backend as _backend
from repro.engine.registry import AlgorithmInfo
from repro.privacy.spec import PrivacySpec

__all__ = [
    "ExecutionDecision",
    "ExecutionPlanner",
    "PlannerCalibration",
    "default_planner",
    "load_bench_calibration",
    "load_scale_rates",
    "per_job_worker_budget",
]

#: Estimated seconds to spawn one process-pool worker (pool startup, imports).
WORKER_SPAWN_SECONDS = 0.05
#: Estimated fixed seconds per shard (split, subset build, dispatch).
SHARD_SETUP_SECONDS = 0.01
#: Estimated seconds per row of the shard-output merge pass.
MERGE_SECONDS_PER_ROW = 2.5e-7
#: A shard below this many rows is all overhead; never split finer.
MIN_SHARD_ROWS = 2_000
#: Shard counts the planner considers.
SHARD_CANDIDATES = (1, 2, 4, 8, 16, 32)
#: Fallback per-``n log2 n`` rates when no benchmark file is available.
DEFAULT_RATES = {"numpy": 1.0e-7, "reference": 4.0e-7}


def _nlogn(n: int | float) -> float:
    return float(n) * math.log2(max(float(n), 2.0))


def per_job_worker_budget(pool_workers: int, cpu_count: int | None = None) -> int:
    """Engine workers one pool job may use without oversubscribing the host.

    The serving pool runs up to ``pool_workers`` jobs concurrently; giving
    each job the whole machine would multiply load by the pool width, while
    the historical ``workers=1`` pin wastes every idle core on a lightly
    loaded pool.  The budget splits the cores evenly across the possible
    concurrent jobs — ``max(1, cpus // pool_workers)`` — so a single-worker
    pool hands one big job all the cores, a pool as wide as the machine
    keeps the old pin, and the product never exceeds the core count.
    """
    if pool_workers < 1:
        raise ValueError(f"pool_workers must be >= 1, got {pool_workers}")
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, int(cpus) // int(pool_workers))


@dataclass(frozen=True)
class PlannerCalibration:
    """Per-backend, per-algorithm cost rates (seconds per ``n log2 n`` unit)."""

    #: backend -> algorithm -> rate.
    rates: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Where the rates came from ("BENCH_fig6.json" or "defaults").
    source: str = "defaults"

    def rate(self, algorithm: str, backend: str) -> float:
        per_algorithm = self.rates.get(backend, {})
        if algorithm in per_algorithm:
            return per_algorithm[algorithm]
        if per_algorithm:
            return sum(per_algorithm.values()) / len(per_algorithm)
        return DEFAULT_RATES.get(backend, DEFAULT_RATES["numpy"])

    def backends(self) -> tuple[str, ...]:
        return tuple(sorted(self.rates)) or tuple(sorted(DEFAULT_RATES))


def load_scale_rates(
    path: str | Path | None = None,
) -> tuple[dict[str, dict[str, float]], str]:
    """Per-(backend, algorithm) rates from a ``BENCH_scale.json`` trajectory.

    The scale benchmark (``scripts/bench_scale.py``) records per-stage
    seconds at 10^5..10^7 rows; its ``anonymize`` seconds at the largest
    measured ``n`` per backend give a far better rate estimate than the
    small-``n`` figure-6 sweep, so these rates *override* the figure-6 ones
    for the benched algorithm.  Returns ``({}, "")`` when no readable file
    exists — callers fall through to the figure-6 / default calibration.
    """
    candidates: list[Path] = []
    if path is not None:
        candidates.append(Path(path))
    else:
        candidates.append(Path.cwd() / "BENCH_scale.json")
        candidates.append(Path(__file__).resolve().parents[3] / "BENCH_scale.json")
    for candidate in candidates:
        try:
            with open(candidate) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        algorithm = payload.get("config", {}).get("algorithm")
        if not algorithm:
            continue
        best: dict[str, tuple[int, float]] = {}
        for point in payload.get("points", []):
            backend_name = point.get("backend")
            n = int(point.get("n", 0))
            raw_seconds = point.get("seconds", {}).get("anonymize")
            if raw_seconds is None:
                # Explicit null: the point was recorded but not measured
                # (e.g. a skipped reference run) — ignore, don't crash.
                continue
            seconds = float(raw_seconds)
            if not backend_name or n < 2 or seconds <= 0:
                continue
            if backend_name not in best or n > best[backend_name][0]:
                best[backend_name] = (n, seconds)
        rates = {
            backend_name: {algorithm: seconds / _nlogn(n)}
            for backend_name, (n, seconds) in best.items()
        }
        if rates:
            return rates, str(candidate)
    return {}, ""


def load_bench_calibration(
    path: str | Path | None = None,
    scale_path: str | Path | None = None,
) -> PlannerCalibration:
    """Calibrate rates from the committed benchmark baselines.

    ``BENCH_fig6.json`` provides broad per-algorithm coverage at figure
    scale; when a ``BENCH_scale.json`` trajectory is also present, its
    large-``n`` rates override the figure-6 ones for the algorithm it
    benched (:func:`load_scale_rates`).  When ``path`` is ``None`` the
    repository-root baselines are looked up relative to this file and the
    working directory; missing or unreadable files yield the built-in
    default rates, so planning always works.  An explicit ``path`` keeps
    the calibration isolated: the ambient scale trajectory is only searched
    for when neither file is pinned (callers pinning ``path`` can still opt
    in with ``scale_path``).
    """
    candidates: list[Path] = []
    if path is not None:
        candidates.append(Path(path))
    else:
        candidates.append(Path.cwd() / "BENCH_fig6.json")
        candidates.append(Path(__file__).resolve().parents[3] / "BENCH_fig6.json")
    rates: dict[str, dict[str, float]] = {}
    source = "defaults"
    for candidate in candidates:
        try:
            with open(candidate) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        for backend_name, algorithms in payload.get("seconds", {}).items():
            for algorithm, by_n in algorithms.items():
                points = sorted(
                    (int(n), float(seconds)) for n, seconds in by_n.items() if float(seconds) > 0
                )
                if not points:
                    continue
                n_ref, t_ref = points[-1]
                rates.setdefault(backend_name, {})[algorithm] = t_ref / _nlogn(n_ref)
        if rates:
            source = str(candidate)
            break
    if scale_path is not None or path is None:
        scale_rates, scale_source = load_scale_rates(scale_path)
    else:
        scale_rates, scale_source = {}, ""
    if scale_rates:
        for backend_name, per_algorithm in scale_rates.items():
            rates.setdefault(backend_name, {}).update(per_algorithm)
        source = f"{source} + {scale_source}" if rates else scale_source
    if rates:
        return PlannerCalibration(rates=rates, source=source)
    return PlannerCalibration(source="defaults")


@dataclass(frozen=True)
class ExecutionDecision:
    """The planner's resolved configuration for one run."""

    shards: int
    workers: int
    backend: str
    estimated_seconds: float
    #: Every (shards, workers, estimated seconds) configuration considered.
    candidates: tuple[tuple[int, int, float], ...] = ()
    reasons: tuple[str, ...] = ()
    #: Canonical token of the privacy spec the decision was made for
    #: (empty when the caller planned with a bare ``l``).
    privacy: str = ""

    def explain(self) -> str:
        """Human-readable account of the decision (``ldiversity plan``)."""
        lines = [
            f"chosen: shards={self.shards} workers={self.workers} "
            f"backend={self.backend} (estimated {self.estimated_seconds:.4f}s)"
        ]
        if self.privacy:
            lines.append(f"  privacy: {self.privacy}")
        lines.extend(f"  - {reason}" for reason in self.reasons)
        if self.candidates:
            lines.append("  candidates (shards, workers -> estimated seconds):")
            for shards, workers, seconds in self.candidates:
                marker = " *" if (shards, workers) == (self.shards, self.workers) else ""
                lines.append(f"    s={shards:<3} w={workers:<3} {seconds:.4f}s{marker}")
        return "\n".join(lines)


class ExecutionPlanner:
    """Chooses shards/workers/backend for a run from (n, d, l) table stats."""

    def __init__(
        self,
        calibration: PlannerCalibration | None = None,
        cpu_count: int | None = None,
        bench_path: str | Path | None = None,
    ) -> None:
        self.calibration = (
            calibration if calibration is not None else load_bench_calibration(bench_path)
        )
        self.cpu_count = cpu_count if cpu_count is not None else (os.cpu_count() or 1)

    # ------------------------------------------------------------- cost model

    def estimate_run_seconds(self, algorithm: str, n: int, backend: str) -> float:
        """Estimated anonymize seconds of one unsharded run."""
        return self.calibration.rate(algorithm, backend) * _nlogn(n)

    def _estimate(self, rate: float, n: int, shards: int, workers: int) -> float:
        per_shard = rate * _nlogn(n / shards)
        waves = math.ceil(shards / workers)
        seconds = waves * per_shard
        if workers > 1:
            seconds += WORKER_SPAWN_SECONDS * workers
        if shards > 1:
            seconds += SHARD_SETUP_SECONDS * shards + MERGE_SECONDS_PER_ROW * n
        return seconds

    # --------------------------------------------------------------- planning

    def decide(
        self,
        info: AlgorithmInfo,
        n: int,
        d: int,
        l: int,
        shards: int | None = None,
        workers: int | None = None,
        backend: str | None = None,
        privacy: "PrivacySpec | None" = None,
    ) -> ExecutionDecision:
        """Resolve a run configuration, honouring caller-fixed dimensions.

        ``shards``/``workers``/``backend`` left as ``None`` are chosen by the
        cost model; ``backend`` may also be ``"auto"`` to request the
        calibrated choice explicitly (``None`` keeps the process backend).
        ``privacy`` keys the decision on the requested spec: its group floor
        bounds how finely the table may be sharded, and the decision echoes
        the spec so ``ldiversity plan`` output is spec-aware.
        """
        del d  # current cost model depends on n (and the spec's floor) only
        reasons: list[str] = [f"calibration: {self.calibration.source}"]
        floor = privacy.group_floor() if privacy is not None else max(int(l), 1)
        if privacy is not None:
            reasons.append(
                f"privacy: {privacy.describe()} (group floor {floor})"
            )

        chosen_backend = self._decide_backend(info.name, backend, reasons)
        rate = self.calibration.rate(info.name, chosen_backend)

        shard_candidates = self._shard_candidates(info, n, shards, reasons, floor)
        candidates: list[tuple[int, int, float]] = []
        for shard_count in shard_candidates:
            for worker_count in self._worker_candidates(shard_count, workers):
                candidates.append(
                    (shard_count, worker_count, self._estimate(rate, max(n, 1), shard_count, worker_count))
                )
        best_shards, best_workers, best_seconds = min(
            candidates, key=lambda entry: (entry[2], entry[0], entry[1])
        )
        reasons.append(
            f"cost model over n={n}: {len(candidates)} candidate configurations, "
            f"unsharded estimate {self._estimate(rate, max(n, 1), 1, 1):.4f}s"
        )
        return ExecutionDecision(
            shards=best_shards,
            workers=best_workers,
            backend=chosen_backend,
            estimated_seconds=best_seconds,
            candidates=tuple(candidates),
            reasons=tuple(reasons),
            privacy=privacy.token() if privacy is not None else "",
        )

    def _decide_backend(
        self, algorithm: str, requested: str | None, reasons: list[str]
    ) -> str:
        if requested is not None and requested != "auto":
            reasons.append(f"backend fixed by caller: {requested}")
            return requested
        if requested is None:
            current = _backend.current_backend()
            reasons.append(f"backend: keeping process backend {current!r}")
            return current
        best = min(
            self.calibration.backends(),
            key=lambda name: self.calibration.rate(algorithm, name),
        )
        reasons.append(
            f"backend: {best!r} has the lowest calibrated rate for {algorithm!r}"
        )
        return best

    def _shard_candidates(
        self,
        info: AlgorithmInfo,
        n: int,
        requested: int | None,
        reasons: list[str],
        floor: int = 1,
    ) -> tuple[int, ...]:
        if requested is not None:
            if requested > 1 and not info.supports_sharding:
                raise ValueError(
                    f"algorithm {info.name!r} does not support sharded execution"
                )
            reasons.append(f"shards fixed by caller: {requested}")
            return (requested,)
        if not info.supports_sharding:
            reasons.append(f"{info.name!r} declares supports_sharding=False: never sharded")
            return (1,)
        # A shard needs room for several complete groups of the spec's floor
        # or the eligibility repair pass will just merge it away again; the
        # fixed MIN_SHARD_ROWS dominates except at extreme floors.
        min_rows = max(MIN_SHARD_ROWS, 8 * max(floor, 1))
        viable = tuple(
            count for count in SHARD_CANDIDATES if count == 1 or count * min_rows <= n
        )
        if viable == (1,):
            reasons.append(
                f"n={n} below {2 * min_rows} rows: sharding cannot amortize its overhead"
            )
        return viable

    def _worker_candidates(self, shards: int, requested: int | None) -> tuple[int, ...]:
        if requested is not None:
            return (min(requested, max(shards, 1)) if requested > 0 else 1,)
        ceiling = min(shards, self.cpu_count)
        candidates = {1}
        width = 2
        while width <= ceiling:
            candidates.add(width)
            width *= 2
        candidates.add(ceiling)
        return tuple(sorted(candidates))

    # ------------------------------------------------------------ suite width

    def suite_workers(self, jobs: int, estimated_total_seconds: float) -> int:
        """Process-pool width for a batch of independent harness runs.

        Fan-out only pays once the sequential estimate dwarfs pool startup;
        tiny (smoke-scale) suites always run sequentially.
        """
        if jobs < 2 or self.cpu_count < 2:
            return 1
        width = min(self.cpu_count, jobs)
        if estimated_total_seconds < 2.0 * WORKER_SPAWN_SECONDS * width:
            return 1
        return width


_default_planner: ExecutionPlanner | None = None


def default_planner() -> ExecutionPlanner:
    """A process-global planner with the repository-root calibration."""
    global _default_planner
    if _default_planner is None:
        _default_planner = ExecutionPlanner()
    return _default_planner
