"""The job service layer: persistence, planning and streaming over the engine.

``repro.service`` sits on top of :mod:`repro.engine` and provides what a
long-lived deployment needs beyond a single in-process run:

* :mod:`repro.service.store` — the persistent :class:`RunStore` (append-only
  JSONL under a workspace directory) that the engine's result cache reads
  through, so repeated CLI invocations and figure sweeps reuse results
  **across processes**;
* :mod:`repro.service.planner` — the cost-based :class:`ExecutionPlanner`
  that picks shards / workers / backend from table statistics, calibrated
  against the committed ``BENCH_fig6.json`` baseline (and the large-``n``
  ``BENCH_scale.json`` trajectory when present);
* :mod:`repro.service.benchscale` — the ``BENCH_scale.json`` driver: the
  memory-mapped engine path timed at 10^5..10^7 rows with per-stage
  attribution (``ldiversity bench``);
* :mod:`repro.service.streaming` — CSV-to-CSV anonymization in bounded
  memory (scan, spill to QI-prefix shards, anonymize shard-by-shard into a
  :class:`~repro.engine.sinks.CsvSink`);
* :mod:`repro.service.jobs` — the :class:`JobService` behind
  ``ldiversity jobs submit/list/show``;
* :mod:`repro.service.workspace` — where all of the above keeps its state.

Quickstart::

    from repro.engine import CsvSource, RunPlan
    from repro.service import JobService, Workspace

    service = JobService(Workspace("/tmp/ws"))
    record, report = service.submit(
        RunPlan(source=CsvSource("big.csv", ("Age", "Zip"), "Disease"), l=4)
    )
    assert record.status == "done"   # planner chose shards/workers; store filled
"""

from repro.service.store import RunStore, StoreError
from repro.service.benchscale import (
    BenchScaleConfig,
    run_bench_scale,
    write_bench_scale,
)
from repro.service.planner import (
    ExecutionDecision,
    ExecutionPlanner,
    PlannerCalibration,
    default_planner,
    load_bench_calibration,
    load_scale_rates,
)
from repro.service.workspace import Workspace, default_workspace_root
from repro.service.streaming import (
    StreamReport,
    stream_anonymize,
    verify_csv_l_diverse,
    verify_csv_satisfies,
)
from repro.service.jobs import JobLedger, JobRecord, JobService, JobStateError

__all__ = [
    "BenchScaleConfig",
    "ExecutionDecision",
    "ExecutionPlanner",
    "JobLedger",
    "JobRecord",
    "JobService",
    "JobStateError",
    "PlannerCalibration",
    "RunStore",
    "StoreError",
    "StreamReport",
    "Workspace",
    "default_planner",
    "default_workspace_root",
    "load_bench_calibration",
    "load_scale_rates",
    "run_bench_scale",
    "stream_anonymize",
    "write_bench_scale",
    "verify_csv_l_diverse",
    "verify_csv_satisfies",
]
