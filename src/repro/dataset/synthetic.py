"""Synthetic census-like microdata (substitute for the paper's SAL / OCC).

The paper's evaluation uses two 600k-row extracts of the American Community
Survey obtained through IPUMS [37]: SAL (sensitive attribute *Income*) and
OCC (sensitive attribute *Occupation*), both with the seven QI attributes
Age, Gender, Race, Marital Status, Birth Place, Education and Work Class.
Those extracts are not redistributable, so this module generates seeded
synthetic tables with

* exactly the schema and domain sizes reported in Table 6 of the paper
  (Age 79, Gender 2, Race 9, Marital Status 6, Birth Place 56, Education 17,
  Work Class 9, Income 50, Occupation 50), and
* realistic marginal skew and inter-attribute correlation (education depends
  on age, marital status on age, income/occupation on education and age,
  work class on education), because the relative behaviour of the algorithms
  is driven by QI-value diversity and SA skew rather than by exact ACS
  frequencies.

The sensitive-value distributions are built so that the most frequent value
stays below 10% of the data, hence every generated table is l-eligible for
all the ``l`` values (2..10) used in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataset.table import Attribute, Schema, Table

__all__ = ["CensusConfig", "make_census", "make_sal", "make_occ", "CENSUS_DOMAIN_SIZES"]

#: Domain sizes of Table 6 in the paper.
CENSUS_DOMAIN_SIZES: dict[str, int] = {
    "Age": 79,
    "Gender": 2,
    "Race": 9,
    "Marital Status": 6,
    "Birth Place": 56,
    "Education": 17,
    "Work Class": 9,
    "Income": 50,
    "Occupation": 50,
}

#: The seven quasi-identifier attributes shared by SAL and OCC.
CENSUS_QI_NAMES: tuple[str, ...] = (
    "Age",
    "Gender",
    "Race",
    "Marital Status",
    "Birth Place",
    "Education",
    "Work Class",
)


@dataclass(frozen=True)
class CensusConfig:
    """Configuration of the synthetic census generator.

    ``domain_sizes`` defaults to the paper's Table 6 and should normally be
    left alone; it is exposed so that tests can shrink domains for speed.
    """

    domain_sizes: dict[str, int] = field(default_factory=lambda: dict(CENSUS_DOMAIN_SIZES))
    #: Zipf exponent for the skewed categorical marginals (Race, Birth Place, Work Class).
    zipf_exponent: float = 1.1
    #: Zipf exponent for the sensitive attributes; kept small so that the most
    #: frequent sensitive value stays well below ``n / 10``.
    sensitive_exponent: float = 0.6

    def domain(self, name: str) -> int:
        return self.domain_sizes[name]

    @classmethod
    def scaled(cls, qi_scale: float, **overrides) -> "CensusConfig":
        """A config whose *QI* domains are scaled down by ``qi_scale``.

        The paper's experiments use 600k rows; at laptop scale the ratio of
        rows to distinct QI combinations — the quantity that actually drives
        the relative behaviour of TP and the baselines — would collapse if the
        Table 6 domains were kept verbatim.  Scaling every QI domain by
        ``qi_scale`` (minimum size 2) restores the paper's rows-per-QI-group
        regime while keeping the schema, the skew and the sensitive domains
        (and hence the feasible range of ``l``) untouched.
        """
        if not 0 < qi_scale <= 1:
            raise ValueError(f"qi_scale must be in (0, 1], got {qi_scale}")
        sizes = dict(CENSUS_DOMAIN_SIZES)
        for name in CENSUS_QI_NAMES:
            sizes[name] = max(2, round(sizes[name] * qi_scale))
        return cls(domain_sizes=sizes, **overrides)


def _zipf_probabilities(size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _shifted(probabilities: np.ndarray, shift: int) -> np.ndarray:
    return np.roll(probabilities, shift)


def _discrete_normal(size: int, mean_fraction: float, std_fraction: float) -> np.ndarray:
    """A discretized, truncated normal over ``size`` bins."""
    centers = (np.arange(size) + 0.5) / size
    density = np.exp(-0.5 * ((centers - mean_fraction) / std_fraction) ** 2)
    return density / density.sum()


def _sample(rng: np.random.Generator, probabilities: np.ndarray, count: int) -> np.ndarray:
    return rng.choice(len(probabilities), size=count, p=probabilities)


def _attribute(name: str, size: int) -> Attribute:
    """A categorical attribute whose values are labelled integers.

    Raw labels are strings like ``"Age#12"`` so that example scripts print
    something readable; the algorithms only ever see the integer codes.
    """
    return Attribute(name, tuple(f"{name}#{value}" for value in range(size)))


def _generate_columns(
    n: int, seed: int, config: CensusConfig
) -> dict[str, np.ndarray]:
    """Generate all nine census columns as integer code arrays."""
    rng = np.random.default_rng(seed)
    sizes = {name: config.domain(name) for name in CENSUS_DOMAIN_SIZES}

    # Age: adult population, skewed towards younger working ages.
    age_probabilities = _discrete_normal(sizes["Age"], mean_fraction=0.35, std_fraction=0.28)
    age = _sample(rng, age_probabilities, n)
    age_fraction = age / max(sizes["Age"] - 1, 1)

    # Gender: essentially balanced.
    gender = _sample(rng, np.array([0.508, 0.492]), n)

    # Race, Birth Place, Work Class: heavily skewed categorical marginals.
    race = _sample(rng, _zipf_probabilities(sizes["Race"], config.zipf_exponent), n)
    birth_place = _sample(
        rng, _zipf_probabilities(sizes["Birth Place"], config.zipf_exponent), n
    )

    # Marital Status: young adults mostly "never married" (code 0), older
    # adults spread over the remaining codes.
    marital_size = sizes["Marital Status"]
    marital = np.empty(n, dtype=np.int64)
    young = age_fraction < 0.2
    marital[young] = _sample(
        rng,
        _shifted(_zipf_probabilities(marital_size, 1.5), 0),
        int(young.sum()),
    )
    marital[~young] = _sample(
        rng,
        _shifted(_zipf_probabilities(marital_size, 0.8), marital_size // 2),
        int((~young).sum()),
    )

    # Education: correlated with age (older respondents skew to lower codes of
    # the education scale in the ACS coding).
    education_size = sizes["Education"]
    education = np.empty(n, dtype=np.int64)
    for band, (low, high) in enumerate(((0.0, 0.25), (0.25, 0.55), (0.55, 1.01))):
        mask = (age_fraction >= low) & (age_fraction < high)
        mean = 0.65 - 0.15 * band
        probabilities = _discrete_normal(education_size, mean_fraction=mean, std_fraction=0.22)
        education[mask] = _sample(rng, probabilities, int(mask.sum()))

    # Work Class: correlated with education (higher education → shifted mix).
    work_size = sizes["Work Class"]
    work_class = np.empty(n, dtype=np.int64)
    high_education = education >= education_size // 2
    work_class[high_education] = _sample(
        rng, _shifted(_zipf_probabilities(work_size, config.zipf_exponent), 2),
        int(high_education.sum()),
    )
    work_class[~high_education] = _sample(
        rng, _zipf_probabilities(work_size, config.zipf_exponent),
        int((~high_education).sum()),
    )

    # Sensitive attributes.  Per-education-band distributions are cyclic
    # shifts of a mildly skewed Zipf vector: correlation with education is
    # preserved while the global marginal stays flat enough that the table is
    # l-eligible for every l used in the experiments.
    income_size = sizes["Income"]
    income_base = _zipf_probabilities(income_size, config.sensitive_exponent)
    income = np.empty(n, dtype=np.int64)
    occupation_size = sizes["Occupation"]
    occupation_base = _zipf_probabilities(occupation_size, config.sensitive_exponent)
    occupation = np.empty(n, dtype=np.int64)
    bands = np.minimum(education * 4 // max(education_size, 1), 3)
    for band in range(4):
        mask = bands == band
        count = int(mask.sum())
        if count == 0:
            continue
        income[mask] = _sample(rng, _shifted(income_base, band * 7), count)
        occupation[mask] = _sample(rng, _shifted(occupation_base, band * 11), count)

    return {
        "Age": age,
        "Gender": gender,
        "Race": race,
        "Marital Status": marital,
        "Birth Place": birth_place,
        "Education": education,
        "Work Class": work_class,
        "Income": income,
        "Occupation": occupation,
    }


def make_census(
    n: int,
    seed: int = 0,
    sensitive: str = "Income",
    config: CensusConfig | None = None,
) -> Table:
    """Generate an ``n``-row census-like table with the given sensitive attribute.

    Parameters
    ----------
    n:
        Number of rows.
    seed:
        Seed of the underlying :class:`numpy.random.Generator`; identical
        parameters always produce the identical table.
    sensitive:
        Either ``"Income"`` (SAL) or ``"Occupation"`` (OCC).
    config:
        Optional :class:`CensusConfig` overriding domain sizes or skew.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if sensitive not in ("Income", "Occupation"):
        raise ValueError(f"sensitive must be 'Income' or 'Occupation', got {sensitive!r}")
    config = config or CensusConfig()
    columns = _generate_columns(n, seed, config)

    qi_attributes = tuple(
        _attribute(name, config.domain(name)) for name in CENSUS_QI_NAMES
    )
    sensitive_attribute = _attribute(sensitive, config.domain(sensitive))
    schema = Schema(qi=qi_attributes, sensitive=sensitive_attribute)

    qi_matrix = np.column_stack([columns[name] for name in CENSUS_QI_NAMES])
    # Hand the generator's code arrays straight to the columnar backend; the
    # row-tuple representation is materialized only if an algorithm asks.
    return Table.from_arrays(schema, qi_matrix, columns[sensitive])


def make_sal(n: int, seed: int = 0, config: CensusConfig | None = None) -> Table:
    """The SAL-like dataset: seven census QI attributes, sensitive attribute Income."""
    return make_census(n, seed=seed, sensitive="Income", config=config)


def make_occ(n: int, seed: int = 0, config: CensusConfig | None = None) -> Table:
    """The OCC-like dataset: seven census QI attributes, sensitive attribute Occupation."""
    return make_census(n, seed=seed, sensitive="Occupation", config=config)
