"""Workload construction: SAL-d / OCC-d projection families and samples.

Section 6.1 of the paper builds, for each ``d`` in 1..7, the family SAL-d of
all ``C(7, d)`` projections of SAL onto ``d`` QI attributes (and likewise
OCC-d), and reports per-family averages.  For the cardinality experiment
(Figure 6) it additionally draws samples of varying size from each base
table.  This module reproduces both constructions.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.dataset.table import Table

__all__ = ["ProjectedTable", "projection_family", "cardinality_samples"]


@dataclass(frozen=True)
class ProjectedTable:
    """A projection of a base table onto a subset of its QI attributes."""

    qi_names: tuple[str, ...]
    table: Table

    @property
    def label(self) -> str:
        return "+".join(self.qi_names)


def projection_family(
    table: Table,
    d: int,
    max_tables: int | None = None,
) -> list[ProjectedTable]:
    """All ``C(|QI|, d)`` projections of ``table`` onto ``d`` QI attributes.

    Parameters
    ----------
    table:
        The base table (e.g. the full 7-QI SAL table).
    d:
        Number of QI attributes to keep.
    max_tables:
        Optional cap on the number of projections returned (the first
        ``max_tables`` in lexicographic attribute order).  The paper averages
        over the full family; the cap exists so that the benchmark harness can
        trade fidelity for run time on small machines.
    """
    names = table.schema.qi_names
    if not 1 <= d <= len(names):
        raise ValueError(f"d must be in [1, {len(names)}], got {d}")
    combinations = itertools.combinations(names, d)
    if max_tables is not None:
        combinations = itertools.islice(combinations, max_tables)
    return [
        ProjectedTable(qi_names=tuple(subset), table=table.project(subset))
        for subset in combinations
    ]


def cardinality_samples(
    table: Table,
    sizes: Sequence[int],
    seed: int = 0,
) -> list[Table]:
    """Uniform samples of ``table`` with the requested cardinalities.

    Reproduces the Figure 6 workload, where each SAL-4 / OCC-4 table is
    sampled at 100k..600k rows; the sizes here are arbitrary so the harness
    can scale the experiment down.
    """
    samples = []
    for offset, size in enumerate(sizes):
        if size > len(table):
            raise ValueError(
                f"requested sample of {size} rows from a table of {len(table)}"
            )
        samples.append(table.sample(size, seed=seed + offset))
    return samples
