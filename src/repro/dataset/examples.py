"""Small built-in datasets: the paper's running examples and test builders.

Contents:

* :func:`hospital_microdata` — Table 1 of the paper (10 patients, QI
  attributes Age/Gender/Education, SA Disease);
* :func:`table_from_group_counts` — build a microdata table whose initial
  QI-groups have prescribed SA-value multiplicities.  This mirrors the vector
  notation used in the worked examples of Sections 5.3 and 5.4 (e.g.
  ``Q1 = (3, 1, 1, 2, 3)``) and is the workhorse of the algorithm unit tests;
* :func:`phase_two_example` and :func:`phase_three_example` — the exact
  configurations walked through in the paper's Sections 5.3 and 5.4.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dataset.table import Attribute, Schema, Table

__all__ = [
    "hospital_microdata",
    "table_from_group_counts",
    "phase_two_example",
    "phase_three_example",
]

_HOSPITAL_RECORDS = [
    # (Name)        Age        Gender  Education      Disease
    ("Adam", "<30", "M", "Master", "HIV"),
    ("Bob", "<30", "M", "Master", "HIV"),
    ("Calvin", "<30", "M", "Bachelor", "pneumonia"),
    ("Danny", "[30,50)", "M", "Bachelor", "bronchitis"),
    ("Eva", "[30,50)", "F", "Bachelor", "pneumonia"),
    ("Fiona", "[30,50)", "F", "Bachelor", "bronchitis"),
    ("Ginny", "[30,50)", "F", "Bachelor", "bronchitis"),
    ("Helen", "[30,50)", "F", "Bachelor", "pneumonia"),
    ("Ivy", ">=50", "F", "High Sch.", "dyspepsia"),
    ("Jane", ">=50", "F", "High Sch.", "pneumonia"),
]


def hospital_microdata() -> Table:
    """The microdata of Table 1 in the paper.

    Ten patient records with QI attributes ``Age``, ``Gender`` and
    ``Education`` and sensitive attribute ``Disease``.  The ``Name`` column of
    the paper is not part of the table (it only aids referencing), so it is
    dropped here as well.
    """
    records = [
        {"Age": age, "Gender": gender, "Education": education, "Disease": disease}
        for _name, age, gender, education, disease in _HOSPITAL_RECORDS
    ]
    schema = Schema(
        qi=(
            Attribute("Age", ("<30", "[30,50)", ">=50")),
            Attribute("Gender", ("M", "F")),
            Attribute("Education", ("High Sch.", "Bachelor", "Master")),
        ),
        sensitive=Attribute(
            "Disease", ("HIV", "pneumonia", "bronchitis", "dyspepsia")
        ),
    )
    return Table.from_records(records, ("Age", "Gender", "Education"), "Disease", schema=schema)


def hospital_patient_names() -> tuple[str, ...]:
    """The patient names of Table 1 in row order (for display in examples)."""
    return tuple(name for name, *_ in _HOSPITAL_RECORDS)


def table_from_group_counts(
    group_counts: Sequence[Sequence[int]],
    dimension: int = 1,
) -> Table:
    """Build a table whose QI-groups have prescribed SA multiplicities.

    Parameters
    ----------
    group_counts:
        ``group_counts[g][v]`` is the number of tuples in QI-group ``g`` with
        sensitive code ``v`` — exactly the vector notation of Section 5.3
        (e.g. ``(3, 1, 1, 2, 3)``).  All vectors must have equal length, which
        becomes the SA domain size ``m``.
    dimension:
        Number of QI attributes.  Every tuple in group ``g`` carries the QI
        vector ``(g, g, ..., g)`` so distinct groups never collide and no
        group costs stars before anonymization.
    """
    if not group_counts:
        raise ValueError("group_counts must contain at least one group")
    m = len(group_counts[0])
    if any(len(vector) != m for vector in group_counts):
        raise ValueError("all group count vectors must have the same length")
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    s = len(group_counts)
    qi_attributes = tuple(
        Attribute(f"Q{position + 1}", tuple(range(s))) for position in range(dimension)
    )
    sensitive = Attribute("S", tuple(range(m)))
    schema = Schema(qi=qi_attributes, sensitive=sensitive)

    qi_rows: list[tuple[int, ...]] = []
    sa_values: list[int] = []
    for group_id, vector in enumerate(group_counts):
        qi_vector = (group_id,) * dimension
        for sa_code, count in enumerate(vector):
            if count < 0:
                raise ValueError("group counts must be non-negative")
            qi_rows.extend([qi_vector] * count)
            sa_values.extend([sa_code] * count)
    return Table(schema, qi_rows, sa_values)


def phase_two_example() -> Table:
    """The Section 5.3 worked example.

    ``m = 5`` SA values, ``s = 3`` QI-groups, ``l = 3`` and initial groups
    ``Q1 = (3, 1, 1, 2, 3)``, ``Q2 = (0, 2, 2, 4, 4)``, ``Q3 = (4, 4, 0, 0, 0)``.
    """
    return table_from_group_counts(
        [
            (3, 1, 1, 2, 3),
            (0, 2, 2, 4, 4),
            (4, 4, 0, 0, 0),
        ]
    )


def phase_three_example() -> Table:
    """The Section 5.4 worked example *after* phase two.

    ``m = 5``, ``s = 2``, ``l = 4`` and (post-phase-two) groups
    ``Q1 = (3, 1, 2, 3, 3)``, ``Q2 = (1, 3, 2, 3, 3)`` with residue
    ``R = (4, 4, 4, 0, 0)``.  For testing the full pipeline we return the
    *union* as a microdata table: the residue tuples are given pairwise
    distinct QI vectors so that phase one reproduces (a superset of) the
    residue, while the two groups keep their own QI vectors.
    """
    groups = [
        (3, 1, 2, 3, 3),
        (1, 3, 2, 3, 3),
    ]
    residue = (4, 4, 4, 0, 0)
    # Give every residue tuple its own QI value so phase one must suppress it.
    residue_groups = []
    for sa_code, count in enumerate(residue):
        for _ in range(count):
            vector = [0, 0, 0, 0, 0]
            vector[sa_code] = 1
            residue_groups.append(tuple(vector))
    return table_from_group_counts(list(groups) + residue_groups)
