"""Categorical microdata tables.

The paper (Section 3) models the microdata ``T`` as a table with ``d``
categorical quasi-identifier (QI) attributes ``A_1..A_d`` and one categorical
sensitive attribute (SA) ``B``.  This module provides that substrate:

* :class:`Attribute` — a named categorical attribute with an ordered domain,
  responsible for encoding raw values to small integer codes;
* :class:`Schema` — the QI attributes plus the sensitive attribute;
* :class:`Table` — an encoded microdata table with the operations the
  algorithms and experiments need (projection, sampling, grouping by QI
  vector, eligibility checks).

Rows have two interchangeable physical representations, materialized lazily
from one another and kept in sync by construction (tables are immutable):

* **row tuples** — ``qi_rows`` holds tuples of QI codes; this is what the
  three-phase algorithm's per-tuple bookkeeping consumes;
* **columnar code arrays** — a single ``(n, d)`` ``numpy.int32`` matrix plus
  an ``(n,)`` sensitive-value array; this is what the vectorized data plane
  (QI-grouping, suppression, Hilbert keys, metrics) consumes.

Encoding once up front keeps the anonymization algorithms allocation-free and
makes equality checks cheap, which matters because the three-phase algorithm
and the baselines repeatedly group and compare rows.
"""

from __future__ import annotations

import csv
import random
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import profiling
from repro.backend import vectorized_enabled

__all__ = ["Attribute", "Schema", "Table"]


class DomainError(ValueError):
    """Raised when a value does not belong to an attribute's domain."""


@dataclass(frozen=True)
class Attribute:
    """A categorical attribute with an ordered, finite domain.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"Age"``.
    values:
        The ordered domain.  Order matters for the Hilbert baseline (locality
        on the curve) and for building generalization hierarchies, so callers
        should pass values in their natural order when one exists.
    """

    name: str
    values: tuple[Any, ...]
    _index: dict[Any, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"attribute {self.name!r} has an empty domain")
        index = {value: code for code, value in enumerate(self.values)}
        if len(index) != len(self.values):
            raise ValueError(f"attribute {self.name!r} has duplicate domain values")
        object.__setattr__(self, "_index", index)

    @property
    def size(self) -> int:
        """Number of values in the domain (``|dom(A)|``)."""
        return len(self.values)

    def encode(self, value: Any) -> int:
        """Return the integer code of ``value``.

        Raises
        ------
        DomainError
            If ``value`` is not in the domain.
        """
        try:
            return self._index[value]
        except KeyError:
            raise DomainError(
                f"value {value!r} is not in the domain of attribute {self.name!r}"
            ) from None

    def decode(self, code: int) -> Any:
        """Return the raw value for an integer ``code``."""
        return self.values[code]

    def __contains__(self, value: Any) -> bool:
        return value in self._index

    @classmethod
    def from_values(cls, name: str, observed: Iterable[Any]) -> "Attribute":
        """Build an attribute whose domain is the sorted set of ``observed`` values."""
        seen = set(observed)
        try:
            ordered = tuple(sorted(seen))
        except TypeError:  # mixed, unorderable types: fall back to string order
            ordered = tuple(sorted(seen, key=repr))
        return cls(name, ordered)


@dataclass(frozen=True)
class Schema:
    """The shape of a microdata table: QI attributes plus the sensitive attribute."""

    qi: tuple[Attribute, ...]
    sensitive: Attribute

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.qi] + [self.sensitive.name]
        if len(set(names)) != len(names):
            raise ValueError(f"schema has duplicate attribute names: {names}")

    @property
    def dimension(self) -> int:
        """The number ``d`` of QI attributes."""
        return len(self.qi)

    @property
    def qi_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.qi)

    def qi_attribute(self, name: str) -> Attribute:
        """Return the QI attribute called ``name``."""
        for attribute in self.qi:
            if attribute.name == name:
                return attribute
        raise KeyError(f"no QI attribute named {name!r}")

    def qi_position(self, name: str) -> int:
        """Return the index of the QI attribute called ``name``."""
        for position, attribute in enumerate(self.qi):
            if attribute.name == name:
                return position
        raise KeyError(f"no QI attribute named {name!r}")

    def project(self, qi_names: Sequence[str]) -> "Schema":
        """Return a schema keeping only the named QI attributes (SA unchanged)."""
        return Schema(
            qi=tuple(self.qi_attribute(name) for name in qi_names),
            sensitive=self.sensitive,
        )

    @property
    def domain_sizes(self) -> dict[str, int]:
        """Mapping of attribute name to domain size, including the SA."""
        sizes = {attribute.name: attribute.size for attribute in self.qi}
        sizes[self.sensitive.name] = self.sensitive.size
        return sizes


class Table:
    """An encoded categorical microdata table.

    Rows are stored as two parallel sequences: ``qi_rows`` holds tuples of QI
    codes and ``sa_values`` the sensitive-attribute codes.  A columnar NumPy
    mirror (``qi_columns`` / ``sa_array``) is materialized lazily; either
    representation can be the one supplied at construction time
    (:meth:`from_arrays` builds a table directly from code arrays, and the
    row tuples are only realized if something asks for them).  The class is
    intentionally immutable from the outside; anonymization algorithms build
    partitions of row indices rather than mutating the table.
    """

    def __init__(
        self,
        schema: Schema,
        qi_rows: Sequence[tuple[int, ...]],
        sa_values: Sequence[int],
    ) -> None:
        if len(qi_rows) != len(sa_values):
            raise ValueError(
                f"qi_rows has {len(qi_rows)} rows but sa_values has {len(sa_values)}"
            )
        dimension = schema.dimension
        for row in qi_rows:
            if len(row) != dimension:
                raise ValueError(
                    f"QI row {row!r} has {len(row)} values, expected {dimension}"
                )
        self._schema = schema
        self._qi_rows: list[tuple[int, ...]] | None = [tuple(row) for row in qi_rows]
        self._sa_values: list[int] | None = list(sa_values)
        self._n = len(self._qi_rows)
        self._columns: np.ndarray | None = None
        self._sa_array: np.ndarray | None = None
        self._qi_groups: dict[tuple[int, ...], list[int]] | None = None
        self._qi_sa_runs: tuple | None = None
        self._grouping = None
        self._order_cache = None
        self._sa_counts: dict[int, int] | None = None
        self._fingerprint: str | None = None
        self._validate_codes()

    @classmethod
    def from_arrays(
        cls,
        schema: Schema,
        qi_columns: np.ndarray,
        sa_array: np.ndarray,
        validate: bool = True,
    ) -> "Table":
        """Build a table directly from columnar code arrays.

        ``qi_columns`` must be an ``(n, d)`` integer matrix and ``sa_array``
        an ``(n,)`` integer vector.  Codes are validated with vectorized
        bounds checks unless ``validate=False`` — the trusted path for
        arrays whose provenance already guarantees in-domain codes (a saved
        :class:`~repro.engine.columnstore.ColumnStore`, chunk encoders, or
        slices of an already-validated table), where the min/max scan would
        fault an entire memory-mapped file in for nothing.  The row-tuple
        representation is materialized lazily, so tables that only ever
        travel through the vectorized data plane never pay for it.
        """
        columns = np.ascontiguousarray(qi_columns, dtype=np.int32)
        sa = np.ascontiguousarray(sa_array, dtype=np.int32)
        if columns.ndim != 2 or columns.shape[1] != schema.dimension:
            raise ValueError(
                f"qi_columns must have shape (n, {schema.dimension}), got {columns.shape}"
            )
        if sa.ndim != 1 or sa.shape[0] != columns.shape[0]:
            raise ValueError(
                f"sa_array has {sa.shape} entries but qi_columns has {columns.shape[0]} rows"
            )
        table = cls.__new__(cls)
        table._schema = schema
        table._qi_rows = None
        table._sa_values = None
        table._n = columns.shape[0]
        table._columns = columns
        table._sa_array = sa
        table._qi_groups = None
        table._qi_sa_runs = None
        table._grouping = None
        table._order_cache = None
        table._sa_counts = None
        table._fingerprint = None
        if table._n and validate:
            for position, attribute in enumerate(schema.qi):
                column = columns[:, position]
                low = int(column.min())
                high = int(column.max())
                if low < 0 or high >= attribute.size:
                    code = low if low < 0 else high
                    raise DomainError(
                        f"code {code} out of range for attribute {attribute.name!r}"
                    )
            low = int(sa.min())
            high = int(sa.max())
            if low < 0 or high >= schema.sensitive.size:
                code = low if low < 0 else high
                raise DomainError(
                    f"code {code} out of range for sensitive attribute "
                    f"{schema.sensitive.name!r}"
                )
        return table

    def _validate_codes(self) -> None:
        for position, attribute in enumerate(self._schema.qi):
            limit = attribute.size
            for row in self._qi_rows:
                code = row[position]
                if not 0 <= code < limit:
                    raise DomainError(
                        f"code {code} out of range for attribute {attribute.name!r}"
                    )
        sa_limit = self._schema.sensitive.size
        for code in self._sa_values:
            if not 0 <= code < sa_limit:
                raise DomainError(
                    f"code {code} out of range for sensitive attribute "
                    f"{self._schema.sensitive.name!r}"
                )

    # --------------------------------------------------------------- pickling

    def __getstate__(self) -> dict:
        # Ship only the compact columnar form; derived caches (row tuples,
        # QI-group index) are rebuilt on demand in the receiving process.
        return {
            "schema": self._schema,
            "columns": self.qi_columns,
            "sa": self.sa_array,
        }

    def __setstate__(self, state: dict) -> None:
        restored = Table.from_arrays(state["schema"], state["columns"], state["sa"])
        self.__dict__.update(restored.__dict__)

    # ------------------------------------------------------------------ basics

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def dimension(self) -> int:
        """The number ``d`` of QI attributes."""
        return self._schema.dimension

    def __len__(self) -> int:
        return self._n

    @property
    def cardinality(self) -> int:
        """The number ``n`` of rows."""
        return self._n

    def qi_row(self, index: int) -> tuple[int, ...]:
        """Return the encoded QI vector of row ``index``."""
        return self.qi_rows[index]

    def sa_value(self, index: int) -> int:
        """Return the encoded SA value of row ``index``."""
        return self.sa_values[index]

    @property
    def qi_rows(self) -> list[tuple[int, ...]]:
        """All encoded QI vectors (a copy is *not* made; treat as read-only)."""
        if self._qi_rows is None:
            self._qi_rows = [tuple(row) for row in self._columns.tolist()]
        return self._qi_rows

    @property
    def sa_values(self) -> list[int]:
        """All encoded SA values (treat as read-only)."""
        if self._sa_values is None:
            self._sa_values = self._sa_array.tolist()
        return self._sa_values

    @property
    def qi_columns(self) -> np.ndarray:
        """The QI codes as an ``(n, d)`` ``int32`` matrix (treat as read-only).

        This is the columnar mirror of :attr:`qi_rows`, materialized lazily
        and cached; the vectorized grouping, generalization and metric paths
        all operate on it.
        """
        if self._columns is None:
            self._columns = np.asarray(self._qi_rows, dtype=np.int32).reshape(
                self._n, self._schema.dimension
            )
        return self._columns

    @property
    def sa_array(self) -> np.ndarray:
        """The SA codes as an ``(n,)`` ``int32`` array (treat as read-only)."""
        if self._sa_array is None:
            self._sa_array = np.asarray(self._sa_values, dtype=np.int32).reshape(self._n)
        return self._sa_array

    def rows(self) -> Iterable[tuple[tuple[int, ...], int]]:
        """Iterate over ``(qi_codes, sa_code)`` pairs."""
        return zip(self.qi_rows, self.sa_values)

    def fingerprint(self) -> str:
        """Content hash identifying the table (schema, QI codes, SA codes).

        Two tables with equal schemas and equal row contents (in the same
        order) have equal fingerprints, regardless of which physical
        representation they were built from.  The engine's result cache keys
        runs by ``(fingerprint, algorithm, l)``; the hash is computed once and
        cached (tables are immutable).
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            for attribute in (*self._schema.qi, self._schema.sensitive):
                digest.update(attribute.name.encode())
                digest.update(repr(attribute.values).encode())
                digest.update(b"\x00")
            digest.update(str(self._n).encode())
            digest.update(np.ascontiguousarray(self.qi_columns).tobytes())
            digest.update(np.ascontiguousarray(self.sa_array).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def decoded_record(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a ``{attribute name: raw value}`` mapping."""
        record = {
            attribute.name: attribute.decode(code)
            for attribute, code in zip(self._schema.qi, self.qi_rows[index])
        }
        record[self._schema.sensitive.name] = self._schema.sensitive.decode(
            self.sa_values[index]
        )
        return record

    def decoded_records(self) -> list[dict[str, Any]]:
        """Return all rows as raw-value mappings (for display / export)."""
        return [self.decoded_record(index) for index in range(len(self))]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Table(n={len(self)}, d={self.dimension}, "
            f"qi={list(self._schema.qi_names)}, sa={self._schema.sensitive.name!r})"
        )

    # ------------------------------------------------------- sensitive values

    def sa_counts(self) -> Counter[int]:
        """Histogram of SA codes (``h(T, v)`` for every ``v``)."""
        if self._sa_counts is None:
            if self._sa_values is None and self._n:
                counts = np.bincount(self._sa_array)
                self._sa_counts = {
                    int(value): int(count) for value, count in enumerate(counts) if count
                }
            else:
                self._sa_counts = dict(Counter(self.sa_values))
        return Counter(self._sa_counts)

    @property
    def distinct_sa_count(self) -> int:
        """The number ``m`` of distinct sensitive values present in the table."""
        return len(self.sa_counts())

    def is_l_eligible(self, l: int) -> bool:
        """Whether the whole table is l-eligible (Definition 2 applied to T).

        By Lemma 1 (monotonicity) this is exactly the condition under which an
        l-diverse generalization of the table exists.
        """
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        if len(self) == 0:
            return True
        counts = self.sa_counts()
        return max(counts.values()) * l <= len(self)

    @property
    def max_l(self) -> int:
        """The largest ``l`` for which the table is l-eligible (0 for empty tables)."""
        if len(self) == 0:
            return 0
        return len(self) // max(self.sa_counts().values())

    # ------------------------------------------------------------ derivations

    def project(self, qi_names: Sequence[str]) -> "Table":
        """Project onto a subset of QI attributes, keeping the SA.

        This is the operation used to build the SAL-d / OCC-d workloads of
        Section 6 from the 7-attribute base tables.
        """
        positions = [self._schema.qi_position(name) for name in qi_names]
        schema = self._schema.project(qi_names)
        if vectorized_enabled():
            return Table.from_arrays(schema, self.qi_columns[:, positions], self.sa_array)
        qi_rows = [tuple(row[position] for position in positions) for row in self.qi_rows]
        return Table(schema, qi_rows, list(self.sa_values))

    def sample(self, size: int, seed: int = 0) -> "Table":
        """Return a uniform random sample of ``size`` rows (without replacement)."""
        if size > len(self):
            raise ValueError(f"cannot sample {size} rows from a table of {len(self)}")
        rng = random.Random(seed)
        indices = rng.sample(range(len(self)), size)
        return self.subset(indices)

    def subset(self, indices: Sequence[int]) -> "Table":
        """Return a table containing exactly the given rows (in the given order)."""
        if vectorized_enabled():
            index_array = np.asarray(list(indices), dtype=np.intp)
            return Table.from_arrays(
                self._schema, self.qi_columns[index_array], self.sa_array[index_array]
            )
        qi_rows = [self.qi_rows[index] for index in indices]
        sa_values = [self.sa_values[index] for index in indices]
        return Table(self._schema, qi_rows, sa_values)

    def group_by_qi(self) -> dict[tuple[int, ...], list[int]]:
        """Group row indices by identical QI vector.

        These are the initial QI-groups ``Q_1..Q_s`` of Section 5.1: tuples in
        the same group agree on every QI attribute, so generalizing a group
        that was never touched costs zero stars.

        Within each group, row indices are ascending.  The result is cached
        (the table is immutable, so the grouping can never change) and must
        be treated as read-only by callers.
        """
        if self._qi_groups is None:
            if vectorized_enabled():
                # The shared grouping context holds the one (QI, SA) sort of
                # the table; deriving the QI grouping from it kills the
                # historical second lexsort.  grouping() times itself under
                # the ``encode`` stage; the derivation is attributed there too.
                context = self.grouping()
                with profiling.profile_stage("encode"):
                    self._qi_groups = context.group_by_qi()
            else:
                with profiling.profile_stage("encode"):
                    self._qi_groups = self.group_by_qi_reference()
        return self._qi_groups

    def attach_order_cache(self, cache) -> None:
        """Attach a persistent sort-permutation cache (duck-typed hook).

        ``cache.load(table)`` may return a previously persisted ``(QI, SA)``
        permutation (or ``None``); ``cache.store(table, order)`` persists a
        freshly computed one.  A :class:`~repro.engine.columnstore.
        ColumnStoreSource` attaches its ``order.npy`` sidecar here so repeat
        runs on the same store skip the sort entirely.  Must be called
        before the first grouping read; later calls are ignored once the
        context exists.
        """
        if self._grouping is None:
            self._order_cache = cache

    def grouping(self):
        """The shared :class:`~repro.core.grouping.GroupingContext` (cached).

        One ``(QI vector, SA code)`` sort per table, consumed by state-init,
        ``group_by_qi``, the KL metric and the fused metric sweep.  The
        computation is attributed to the ``encode`` profiling stage (with a
        nested ``sort`` sub-stage only when an actual sort ran — a
        persisted permutation from :meth:`attach_order_cache` skips it).
        """
        if self._grouping is None:
            from repro.core.grouping import GroupingContext

            with profiling.profile_stage("encode"):
                order = None
                cache = self._order_cache
                if cache is not None and self._n:
                    order = cache.load(self)
                context = GroupingContext.build(
                    self.qi_columns,
                    self.sa_array,
                    [attribute.size for attribute in self._schema.qi],
                    self._schema.sensitive.size,
                    order=order,
                )
                if order is None and cache is not None and self._n:
                    cache.store(self, context.order)
                self._grouping = context
        return self._grouping

    def qi_sa_runs_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Array form of :meth:`qi_sa_runs` — the zero-copy run encoding.

        Returns ``(group_keys, group_run_bounds, run_bounds, run_values,
        order)`` as NumPy arrays: an ``(s, d)`` ``int32`` matrix of distinct
        QI vectors in ascending order, the ``(s + 1,)`` boundaries of each
        group's runs, the ``(r + 1,)`` row boundaries of the maximal constant
        ``(QI, SA)`` runs, the ``(r,)`` SA code per run, and the ``(n,)``
        permutation sorting rows by ``(QI vector, SA code)`` (stable, so row
        indices ascend within ties).

        This is the whole l-independent preprocessing of the three-phase
        algorithm (Section 5.1); since PR 8 the arrays live on the shared
        :meth:`grouping` context, so the fused phase kernels, the lazy
        :class:`~repro.core.state.AlgorithmState` and the metrics all read
        the same sort.  Treat all five arrays as read-only.
        """
        return self.grouping().arrays()

    def qi_sa_runs(
        self,
    ) -> tuple[list[tuple[int, ...]], list[int], list[int], list[int], list[int]]:
        """Run-length encoding of the rows sorted by ``(QI vector, SA code)``.

        The Python-list view of :meth:`qi_sa_runs_arrays` (which holds the
        cached sort): ``group_keys`` becomes a list of tuples and the bounds
        and values become plain ``int`` lists, for consumers that do
        per-element Python work.  All five lists are shared and cached;
        treat them as read-only.
        """
        if self._qi_sa_runs is None:
            group_keys, group_run_bounds, run_bounds, run_values, order = (
                self.qi_sa_runs_arrays()
            )
            self._qi_sa_runs = (
                [tuple(key) for key in group_keys.tolist()],
                group_run_bounds.tolist(),
                run_bounds.tolist(),
                run_values.tolist(),
                order.tolist(),
            )
        return self._qi_sa_runs

    def group_by_qi_reference(self) -> dict[tuple[int, ...], list[int]]:
        """Pure-Python QI-grouping (the oracle for the vectorized path)."""
        groups: dict[tuple[int, ...], list[int]] = {}
        for index, row in enumerate(self.qi_rows):
            groups.setdefault(row, []).append(index)
        return groups

    @property
    def distinct_qi_count(self) -> int:
        """The number ``s`` of distinct QI vectors."""
        return len(self.group_by_qi())

    # --------------------------------------------------------------- builders

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, Any]],
        qi_names: Sequence[str],
        sa_name: str,
        schema: Schema | None = None,
    ) -> "Table":
        """Build a table from raw records.

        Parameters
        ----------
        records:
            A sequence of mappings, each holding at least the QI attributes
            and the sensitive attribute.
        qi_names:
            Names (and order) of the quasi-identifier attributes.
        sa_name:
            Name of the sensitive attribute.
        schema:
            Optional pre-built schema.  When omitted, attribute domains are
            inferred as the sorted sets of observed values.
        """
        if schema is None:
            qi_attributes = tuple(
                Attribute.from_values(name, (record[name] for record in records))
                for name in qi_names
            )
            sensitive = Attribute.from_values(sa_name, (record[sa_name] for record in records))
            schema = Schema(qi=qi_attributes, sensitive=sensitive)
        qi_rows = [
            tuple(
                schema.qi_attribute(name).encode(record[name]) for name in schema.qi_names
            )
            for record in records
        ]
        sa_values = [schema.sensitive.encode(record[sa_name]) for record in records]
        return cls(schema, qi_rows, sa_values)

    @classmethod
    def from_csv(
        cls,
        path: str,
        qi_names: Sequence[str],
        sa_name: str,
        schema: Schema | None = None,
        delimiter: str = ",",
    ) -> "Table":
        """Load a table from a CSV file with a header row."""
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            records = [dict(row) for row in reader]
        return cls.from_records(records, qi_names, sa_name, schema=schema)

    def to_csv(self, path: str, delimiter: str = ",") -> None:
        """Write the decoded table to a CSV file with a header row."""
        names = list(self._schema.qi_names) + [self._schema.sensitive.name]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=names, delimiter=delimiter)
            writer.writeheader()
            for record in self.decoded_records():
                writer.writerow(record)
