"""Categorical microdata tables.

The paper (Section 3) models the microdata ``T`` as a table with ``d``
categorical quasi-identifier (QI) attributes ``A_1..A_d`` and one categorical
sensitive attribute (SA) ``B``.  This module provides that substrate:

* :class:`Attribute` — a named categorical attribute with an ordered domain,
  responsible for encoding raw values to small integer codes;
* :class:`Schema` — the QI attributes plus the sensitive attribute;
* :class:`Table` — an encoded microdata table with the operations the
  algorithms and experiments need (projection, sampling, grouping by QI
  vector, eligibility checks).

All rows are stored as tuples of integer codes.  Encoding once up front keeps
the anonymization algorithms allocation-free and makes equality checks cheap,
which matters because the three-phase algorithm and the baselines repeatedly
group and compare rows.
"""

from __future__ import annotations

import csv
import random
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Attribute", "Schema", "Table"]


class DomainError(ValueError):
    """Raised when a value does not belong to an attribute's domain."""


@dataclass(frozen=True)
class Attribute:
    """A categorical attribute with an ordered, finite domain.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"Age"``.
    values:
        The ordered domain.  Order matters for the Hilbert baseline (locality
        on the curve) and for building generalization hierarchies, so callers
        should pass values in their natural order when one exists.
    """

    name: str
    values: tuple[Any, ...]
    _index: dict[Any, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"attribute {self.name!r} has an empty domain")
        index = {value: code for code, value in enumerate(self.values)}
        if len(index) != len(self.values):
            raise ValueError(f"attribute {self.name!r} has duplicate domain values")
        object.__setattr__(self, "_index", index)

    @property
    def size(self) -> int:
        """Number of values in the domain (``|dom(A)|``)."""
        return len(self.values)

    def encode(self, value: Any) -> int:
        """Return the integer code of ``value``.

        Raises
        ------
        DomainError
            If ``value`` is not in the domain.
        """
        try:
            return self._index[value]
        except KeyError:
            raise DomainError(
                f"value {value!r} is not in the domain of attribute {self.name!r}"
            ) from None

    def decode(self, code: int) -> Any:
        """Return the raw value for an integer ``code``."""
        return self.values[code]

    def __contains__(self, value: Any) -> bool:
        return value in self._index

    @classmethod
    def from_values(cls, name: str, observed: Iterable[Any]) -> "Attribute":
        """Build an attribute whose domain is the sorted set of ``observed`` values."""
        seen = set(observed)
        try:
            ordered = tuple(sorted(seen))
        except TypeError:  # mixed, unorderable types: fall back to string order
            ordered = tuple(sorted(seen, key=repr))
        return cls(name, ordered)


@dataclass(frozen=True)
class Schema:
    """The shape of a microdata table: QI attributes plus the sensitive attribute."""

    qi: tuple[Attribute, ...]
    sensitive: Attribute

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.qi] + [self.sensitive.name]
        if len(set(names)) != len(names):
            raise ValueError(f"schema has duplicate attribute names: {names}")

    @property
    def dimension(self) -> int:
        """The number ``d`` of QI attributes."""
        return len(self.qi)

    @property
    def qi_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.qi)

    def qi_attribute(self, name: str) -> Attribute:
        """Return the QI attribute called ``name``."""
        for attribute in self.qi:
            if attribute.name == name:
                return attribute
        raise KeyError(f"no QI attribute named {name!r}")

    def qi_position(self, name: str) -> int:
        """Return the index of the QI attribute called ``name``."""
        for position, attribute in enumerate(self.qi):
            if attribute.name == name:
                return position
        raise KeyError(f"no QI attribute named {name!r}")

    def project(self, qi_names: Sequence[str]) -> "Schema":
        """Return a schema keeping only the named QI attributes (SA unchanged)."""
        return Schema(
            qi=tuple(self.qi_attribute(name) for name in qi_names),
            sensitive=self.sensitive,
        )

    @property
    def domain_sizes(self) -> dict[str, int]:
        """Mapping of attribute name to domain size, including the SA."""
        sizes = {attribute.name: attribute.size for attribute in self.qi}
        sizes[self.sensitive.name] = self.sensitive.size
        return sizes


class Table:
    """An encoded categorical microdata table.

    Rows are stored as two parallel sequences: ``qi_rows`` holds tuples of QI
    codes and ``sa_values`` the sensitive-attribute codes.  The class is
    intentionally immutable from the outside; anonymization algorithms build
    partitions of row indices rather than mutating the table.
    """

    def __init__(
        self,
        schema: Schema,
        qi_rows: Sequence[tuple[int, ...]],
        sa_values: Sequence[int],
    ) -> None:
        if len(qi_rows) != len(sa_values):
            raise ValueError(
                f"qi_rows has {len(qi_rows)} rows but sa_values has {len(sa_values)}"
            )
        dimension = schema.dimension
        for row in qi_rows:
            if len(row) != dimension:
                raise ValueError(
                    f"QI row {row!r} has {len(row)} values, expected {dimension}"
                )
        self._schema = schema
        self._qi_rows = [tuple(row) for row in qi_rows]
        self._sa_values = list(sa_values)
        self._validate_codes()

    def _validate_codes(self) -> None:
        for position, attribute in enumerate(self._schema.qi):
            limit = attribute.size
            for row in self._qi_rows:
                code = row[position]
                if not 0 <= code < limit:
                    raise DomainError(
                        f"code {code} out of range for attribute {attribute.name!r}"
                    )
        sa_limit = self._schema.sensitive.size
        for code in self._sa_values:
            if not 0 <= code < sa_limit:
                raise DomainError(
                    f"code {code} out of range for sensitive attribute "
                    f"{self._schema.sensitive.name!r}"
                )

    # ------------------------------------------------------------------ basics

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def dimension(self) -> int:
        """The number ``d`` of QI attributes."""
        return self._schema.dimension

    def __len__(self) -> int:
        return len(self._qi_rows)

    @property
    def cardinality(self) -> int:
        """The number ``n`` of rows."""
        return len(self._qi_rows)

    def qi_row(self, index: int) -> tuple[int, ...]:
        """Return the encoded QI vector of row ``index``."""
        return self._qi_rows[index]

    def sa_value(self, index: int) -> int:
        """Return the encoded SA value of row ``index``."""
        return self._sa_values[index]

    @property
    def qi_rows(self) -> list[tuple[int, ...]]:
        """All encoded QI vectors (a copy is *not* made; treat as read-only)."""
        return self._qi_rows

    @property
    def sa_values(self) -> list[int]:
        """All encoded SA values (treat as read-only)."""
        return self._sa_values

    def rows(self) -> Iterable[tuple[tuple[int, ...], int]]:
        """Iterate over ``(qi_codes, sa_code)`` pairs."""
        return zip(self._qi_rows, self._sa_values)

    def decoded_record(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a ``{attribute name: raw value}`` mapping."""
        record = {
            attribute.name: attribute.decode(code)
            for attribute, code in zip(self._schema.qi, self._qi_rows[index])
        }
        record[self._schema.sensitive.name] = self._schema.sensitive.decode(
            self._sa_values[index]
        )
        return record

    def decoded_records(self) -> list[dict[str, Any]]:
        """Return all rows as raw-value mappings (for display / export)."""
        return [self.decoded_record(index) for index in range(len(self))]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Table(n={len(self)}, d={self.dimension}, "
            f"qi={list(self._schema.qi_names)}, sa={self._schema.sensitive.name!r})"
        )

    # ------------------------------------------------------- sensitive values

    def sa_counts(self) -> Counter[int]:
        """Histogram of SA codes (``h(T, v)`` for every ``v``)."""
        return Counter(self._sa_values)

    @property
    def distinct_sa_count(self) -> int:
        """The number ``m`` of distinct sensitive values present in the table."""
        return len(set(self._sa_values))

    def is_l_eligible(self, l: int) -> bool:
        """Whether the whole table is l-eligible (Definition 2 applied to T).

        By Lemma 1 (monotonicity) this is exactly the condition under which an
        l-diverse generalization of the table exists.
        """
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        if len(self) == 0:
            return True
        counts = self.sa_counts()
        return max(counts.values()) * l <= len(self)

    @property
    def max_l(self) -> int:
        """The largest ``l`` for which the table is l-eligible (0 for empty tables)."""
        if len(self) == 0:
            return 0
        return len(self) // max(self.sa_counts().values())

    # ------------------------------------------------------------ derivations

    def project(self, qi_names: Sequence[str]) -> "Table":
        """Project onto a subset of QI attributes, keeping the SA.

        This is the operation used to build the SAL-d / OCC-d workloads of
        Section 6 from the 7-attribute base tables.
        """
        positions = [self._schema.qi_position(name) for name in qi_names]
        schema = self._schema.project(qi_names)
        qi_rows = [tuple(row[position] for position in positions) for row in self._qi_rows]
        return Table(schema, qi_rows, list(self._sa_values))

    def sample(self, size: int, seed: int = 0) -> "Table":
        """Return a uniform random sample of ``size`` rows (without replacement)."""
        if size > len(self):
            raise ValueError(f"cannot sample {size} rows from a table of {len(self)}")
        rng = random.Random(seed)
        indices = rng.sample(range(len(self)), size)
        return self.subset(indices)

    def subset(self, indices: Sequence[int]) -> "Table":
        """Return a table containing exactly the given rows (in the given order)."""
        qi_rows = [self._qi_rows[index] for index in indices]
        sa_values = [self._sa_values[index] for index in indices]
        return Table(self._schema, qi_rows, sa_values)

    def group_by_qi(self) -> dict[tuple[int, ...], list[int]]:
        """Group row indices by identical QI vector.

        These are the initial QI-groups ``Q_1..Q_s`` of Section 5.1: tuples in
        the same group agree on every QI attribute, so generalizing a group
        that was never touched costs zero stars.
        """
        groups: dict[tuple[int, ...], list[int]] = {}
        for index, row in enumerate(self._qi_rows):
            groups.setdefault(row, []).append(index)
        return groups

    @property
    def distinct_qi_count(self) -> int:
        """The number ``s`` of distinct QI vectors."""
        return len(set(self._qi_rows))

    # --------------------------------------------------------------- builders

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, Any]],
        qi_names: Sequence[str],
        sa_name: str,
        schema: Schema | None = None,
    ) -> "Table":
        """Build a table from raw records.

        Parameters
        ----------
        records:
            A sequence of mappings, each holding at least the QI attributes
            and the sensitive attribute.
        qi_names:
            Names (and order) of the quasi-identifier attributes.
        sa_name:
            Name of the sensitive attribute.
        schema:
            Optional pre-built schema.  When omitted, attribute domains are
            inferred as the sorted sets of observed values.
        """
        if schema is None:
            qi_attributes = tuple(
                Attribute.from_values(name, (record[name] for record in records))
                for name in qi_names
            )
            sensitive = Attribute.from_values(sa_name, (record[sa_name] for record in records))
            schema = Schema(qi=qi_attributes, sensitive=sensitive)
        qi_rows = [
            tuple(
                schema.qi_attribute(name).encode(record[name]) for name in schema.qi_names
            )
            for record in records
        ]
        sa_values = [schema.sensitive.encode(record[sa_name]) for record in records]
        return cls(schema, qi_rows, sa_values)

    @classmethod
    def from_csv(
        cls,
        path: str,
        qi_names: Sequence[str],
        sa_name: str,
        schema: Schema | None = None,
        delimiter: str = ",",
    ) -> "Table":
        """Load a table from a CSV file with a header row."""
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            records = [dict(row) for row in reader]
        return cls.from_records(records, qi_names, sa_name, schema=schema)

    def to_csv(self, path: str, delimiter: str = ",") -> None:
        """Write the decoded table to a CSV file with a header row."""
        names = list(self._schema.qi_names) + [self._schema.sensitive.name]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=names, delimiter=delimiter)
            writer.writeheader()
            for record in self.decoded_records():
                writer.writerow(record)
