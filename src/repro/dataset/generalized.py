"""Generalized (anonymized) tables, partitions and suppression.

Definition 1 of the paper: a partition of the microdata into QI-groups
defines a generalization in which, within each group, an attribute keeps its
value if every tuple of the group agrees on it and is replaced by a star
otherwise.  Sensitive values are always retained.

This module provides:

* :data:`STAR` — the sentinel for a suppressed cell;
* :class:`Partition` — a validated partition of row indices into QI-groups;
* :class:`GeneralizedTable` — the anonymized output, supporting both
  suppression cells (stars) and sub-domain cells (sets of codes) so that the
  single-dimensional baseline (TDS) and the multi-dimensional baseline
  (Mondrian) can share the same metrics code.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Any

from repro.dataset.table import Schema, Table

__all__ = ["STAR", "GeneralizedTable", "Partition", "cell_size", "cell_contains"]


class _Star:
    """Singleton sentinel representing a suppressed QI value."""

    _instance: "_Star | None" = None

    def __new__(cls) -> "_Star":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __reduce__(self):  # keep the singleton across pickling
        return (_Star, ())


STAR = _Star()

#: A generalized cell is either an exact integer code, the :data:`STAR`
#: sentinel, or a frozenset of codes (a sub-domain, produced by the
#: single/multi-dimensional generalization baselines).
Cell = Any


def cell_size(cell: Cell, domain_size: int) -> int:
    """Number of domain values a generalized cell may stand for."""
    if cell is STAR:
        return domain_size
    if isinstance(cell, frozenset):
        return len(cell)
    return 1


def cell_contains(cell: Cell, code: int, domain_size: int) -> bool:
    """Whether ``code`` is consistent with the generalized ``cell``."""
    if cell is STAR:
        return 0 <= code < domain_size
    if isinstance(cell, frozenset):
        return code in cell
    return cell == code


class Partition:
    """A partition of the rows of a table into QI-groups.

    Groups are lists of row indices.  Empty groups are dropped.  The partition
    is validated: every row index must appear in exactly one group.
    """

    def __init__(self, groups: Iterable[Sequence[int]], n_rows: int) -> None:
        cleaned = [list(group) for group in groups if len(group) > 0]
        seen: set[int] = set()
        total = 0
        for group in cleaned:
            for index in group:
                if not 0 <= index < n_rows:
                    raise ValueError(f"row index {index} out of range for n={n_rows}")
                if index in seen:
                    raise ValueError(f"row index {index} appears in more than one group")
                seen.add(index)
            total += len(group)
        if total != n_rows:
            missing = n_rows - total
            raise ValueError(f"partition covers {total} of {n_rows} rows ({missing} missing)")
        self._groups = cleaned
        self._n_rows = n_rows

    @property
    def groups(self) -> list[list[int]]:
        return self._groups

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self):
        return iter(self._groups)

    def __getitem__(self, index: int) -> list[int]:
        return self._groups[index]

    def group_of(self) -> list[int]:
        """Return a list mapping each row index to its group id."""
        assignment = [-1] * self._n_rows
        for group_id, group in enumerate(self._groups):
            for index in group:
                assignment[index] = group_id
        return assignment

    def group_sizes(self) -> list[int]:
        return [len(group) for group in self._groups]

    @classmethod
    def single_group(cls, n_rows: int) -> "Partition":
        """The trivial partition with all rows in one QI-group."""
        return cls([list(range(n_rows))], n_rows)

    @classmethod
    def by_qi(cls, table: Table) -> "Partition":
        """The finest zero-star partition: group rows by identical QI vector."""
        return cls(list(table.group_by_qi().values()), len(table))

    def is_l_diverse(self, table: Table, l: int) -> bool:
        """Whether every group of the partition is l-eligible w.r.t. ``table``."""
        for group in self._groups:
            counts = Counter(table.sa_value(index) for index in group)
            if max(counts.values()) * l > len(group):
                return False
        return True


class GeneralizedTable:
    """An anonymized table: generalized QI cells plus retained SA values.

    Instances are normally produced via :meth:`from_partition` (suppression,
    Definition 1) or by the generalization baselines, which supply sub-domain
    cells directly.
    """

    def __init__(
        self,
        schema: Schema,
        cells: Sequence[Sequence[Cell]],
        sa_values: Sequence[int],
        group_ids: Sequence[int],
    ) -> None:
        if not (len(cells) == len(sa_values) == len(group_ids)):
            raise ValueError("cells, sa_values and group_ids must have equal length")
        dimension = schema.dimension
        for row in cells:
            if len(row) != dimension:
                raise ValueError(f"generalized row {row!r} does not have {dimension} cells")
        self._schema = schema
        self._cells = [tuple(row) for row in cells]
        self._sa_values = list(sa_values)
        self._group_ids = list(group_ids)

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_partition(cls, table: Table, partition: Partition) -> "GeneralizedTable":
        """Apply suppression (Definition 1) to ``table`` under ``partition``.

        Within each QI-group, attribute ``A_i`` keeps its value when all
        tuples of the group agree on it, and becomes :data:`STAR` otherwise.
        """
        if partition.n_rows != len(table):
            raise ValueError("partition size does not match table size")
        dimension = table.dimension
        cells: list[tuple[Cell, ...] | None] = [None] * len(table)
        group_ids = [0] * len(table)
        for group_id, group in enumerate(partition.groups):
            representative: list[Cell] = list(table.qi_row(group[0]))
            for index in group[1:]:
                row = table.qi_row(index)
                for position in range(dimension):
                    if representative[position] is not STAR and representative[position] != row[position]:
                        representative[position] = STAR
            generalized = tuple(representative)
            for index in group:
                cells[index] = generalized
                group_ids[index] = group_id
        return cls(table.schema, cells, list(table.sa_values), group_ids)

    # ----------------------------------------------------------------- basics

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def dimension(self) -> int:
        return self._schema.dimension

    def cell(self, row: int, position: int) -> Cell:
        return self._cells[row][position]

    def row_cells(self, row: int) -> tuple[Cell, ...]:
        return self._cells[row]

    def sa_value(self, row: int) -> int:
        return self._sa_values[row]

    @property
    def sa_values(self) -> list[int]:
        return self._sa_values

    @property
    def group_ids(self) -> list[int]:
        return self._group_ids

    def groups(self) -> dict[int, list[int]]:
        """Mapping of group id to the list of row indices in that group."""
        result: dict[int, list[int]] = {}
        for index, group_id in enumerate(self._group_ids):
            result.setdefault(group_id, []).append(index)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeneralizedTable(n={len(self)}, d={self.dimension}, "
            f"groups={len(set(self._group_ids))}, stars={self.star_count()})"
        )

    # ------------------------------------------------------------ information

    def star_count(self) -> int:
        """Total number of suppressed QI cells (the Problem 1 objective)."""
        return sum(1 for row in self._cells for cell in row if cell is STAR)

    def suppressed_tuple_count(self) -> int:
        """Number of rows with at least one star (the Problem 2 objective)."""
        return sum(1 for row in self._cells if any(cell is STAR for cell in row))

    def generalized_cell_count(self) -> int:
        """Number of QI cells that are not exact values (stars or sub-domains)."""
        return sum(
            1 for row in self._cells for cell in row if cell is STAR or isinstance(cell, frozenset)
        )

    # --------------------------------------------------------------- privacy

    def is_l_diverse(self, l: int) -> bool:
        """Whether every QI-group satisfies l-diversity (Definition 2)."""
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        for rows in self.groups().values():
            counts = Counter(self._sa_values[index] for index in rows)
            if max(counts.values()) * l > len(rows):
                return False
        return True

    def is_k_anonymous(self, k: int) -> bool:
        """Whether every QI-group has at least ``k`` rows."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return all(len(rows) >= k for rows in self.groups().values())

    # ---------------------------------------------------------------- display

    def decoded_record(self, row: int) -> dict[str, Any]:
        """Return a row with raw values; stars render as ``'*'`` and sub-domains as sorted tuples."""
        record: dict[str, Any] = {}
        for position, attribute in enumerate(self._schema.qi):
            cell = self._cells[row][position]
            if cell is STAR:
                record[attribute.name] = "*"
            elif isinstance(cell, frozenset):
                record[attribute.name] = tuple(sorted(attribute.decode(code) for code in cell))
            else:
                record[attribute.name] = attribute.decode(cell)
        record[self._schema.sensitive.name] = self._schema.sensitive.decode(self._sa_values[row])
        return record

    def decoded_records(self) -> list[dict[str, Any]]:
        return [self.decoded_record(row) for row in range(len(self))]
